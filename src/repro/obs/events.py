"""Structured event journal: schema'd, append-only JSONL telemetry.

Where metrics answer "how much" and spans answer "how long", the
journal answers "what happened, in what order": every emitting site
appends one self-describing JSON line (``repro.obs/events/v1``) with a
per-journal sequence number, a monotonic timestamp, the wall clock,
the run id, the emitting pid, and free-form event fields.  Journals
are the longitudinal counterpart of a ``--profile`` report — they
survive the process, concatenate across runs, and can be followed live
(``repro obs tail --follow``).

Design constraints, in priority order:

1. **Free when closed.**  :func:`repro.obs.emit` is a module-global
   ``None`` check when no journal is open; instrumented code never
   pays for journaling it didn't ask for.
2. **Crash-tolerant.**  Each event is a single ``write()`` of one
   ``\\n``-terminated line to an ``O_APPEND`` handle, so concurrent
   writers (runner workers share the journal path via
   ``REPRO_EVENTS_JSON``) interleave whole lines, and a killed process
   can truncate at most its own final line.  The reader side
   (:func:`iter_events`) therefore treats undecodable lines as data
   loss to be counted and skipped, never as a fatal error.
3. **Self-describing.**  The first event of every journal session is
   ``journal.open`` carrying the schema version, git sha, python/
   package versions and argv, so a bare ``.jsonl`` file found on disk
   months later still identifies what produced it.

Rotation keeps unbounded appenders bounded: when ``max_bytes`` is set
and an append would cross it, the live file is renamed to
``<path>.1`` (shifting older generations up to ``backups``) and a
fresh file is started with a ``journal.rotate`` marker.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import sys
import threading
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

#: Schema tag stamped on every journal line.
EVENT_SCHEMA = "repro.obs/events/v1"

#: Environment variable that opens a journal in spawned worker
#: processes (the runner and the pooled ensemble set it from the
#: parent's journal path).
EVENTS_ENV = "REPRO_EVENTS_JSON"

PathLike = Union[str, os.PathLike]


def new_run_id() -> str:
    """A short random id correlating every event of one run."""
    return "r-" + os.urandom(6).hex()


def git_sha(default: str = "unknown") -> str:
    """The current commit sha, or ``default`` when unknowable.

    Tries ``GITHUB_SHA`` (present in CI even on shallow checkouts)
    before shelling out to git; never raises — provenance stamping
    must not take a run down.
    """
    env = os.environ.get("GITHUB_SHA")
    if env:
        return env
    try:
        import subprocess

        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=pathlib.Path(__file__).parent,
        )
        sha = out.stdout.strip()
        if out.returncode == 0 and sha:
            return sha
    except Exception:
        pass
    return default


class EventJournal:
    """An append-only JSONL event sink bound to one file path.

    Thread-safe; multiple processes may append to the same path (each
    opens its own handle in append mode).  Sequence numbers are
    per-process — order across processes is established by the
    monotonic ``t`` field and the ``pid``.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        run_id: Optional[str] = None,
        max_bytes: Optional[int] = None,
        backups: int = 1,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes!r}")
        if backups < 1:
            raise ValueError(f"backups must be >= 1, got {backups!r}")
        self.path = pathlib.Path(path)
        self.run_id = run_id or new_run_id()
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._seq = 0
        self._pid = os.getpid()
        self._t0 = time.monotonic()
        self._fh: Optional[io.TextIOWrapper] = None

    # -- file plumbing -------------------------------------------------

    def _handle(self) -> io.TextIOWrapper:
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8", newline="\n")
        return self._fh

    def _rotate_locked(self) -> None:
        """Shift ``path -> path.1 -> ... -> path.<backups>`` (drop last)."""
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None
        oldest = self.path.with_name(self.path.name + f".{self.backups}")
        try:
            oldest.unlink()
        except FileNotFoundError:
            pass
        for i in range(self.backups - 1, 0, -1):
            src = self.path.with_name(self.path.name + f".{i}")
            if src.exists():
                os.replace(src, self.path.with_name(self.path.name + f".{i + 1}"))
        if self.path.exists():
            os.replace(self.path, self.path.with_name(self.path.name + ".1"))

    # -- emitting ------------------------------------------------------

    def emit(self, event: str, **fields) -> Dict[str, object]:
        """Append one event line; returns the emitted record.

        ``fields`` must be JSON-serialisable; anything that is not is
        stringified rather than raised on — the journal records what
        happened, it must never *change* what happens.
        """
        record: Dict[str, object] = {
            "schema": EVENT_SCHEMA,
            "event": event,
            "run": self.run_id,
            "pid": self._pid,
        }
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            record["t"] = round(time.monotonic() - self._t0, 9)
            record["wall"] = time.time()
            if fields:
                record["fields"] = fields
            try:
                line = json.dumps(record, separators=(",", ":"))
            except (TypeError, ValueError):
                record["fields"] = {k: repr(v) for k, v in fields.items()}
                line = json.dumps(record, separators=(",", ":"))
            fh = self._handle()
            if self.max_bytes is not None:
                try:
                    if fh.tell() + len(line) + 1 > self.max_bytes:
                        self._rotate_locked()
                        fh = self._handle()
                        rotate = dict(record)
                        rotate["event"] = "journal.rotate"
                        rotate.pop("fields", None)
                        fh.write(
                            json.dumps(rotate, separators=(",", ":")) + "\n"
                        )
                except OSError:
                    pass
            fh.write(line + "\n")
            fh.flush()
        return record

    def emit_open(self, **extra) -> Dict[str, object]:
        """Emit the self-describing ``journal.open`` header event."""
        from repro import __version__ as pkg_version

        return self.emit(
            "journal.open",
            git_sha=git_sha(),
            python=sys.version.split()[0],
            package_version=pkg_version,
            argv=list(sys.argv),
            **extra,
        )

    def close(self) -> None:
        """Flush and close the file handle (the journal can reopen)."""
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# module-level journal management (mirrors the registry/tracer pattern)
# ----------------------------------------------------------------------

_journal: Optional[EventJournal] = None


def journal() -> Optional[EventJournal]:
    """The active journal, or ``None`` when journaling is off."""
    return _journal


def open_journal(
    path: PathLike,
    *,
    run_id: Optional[str] = None,
    max_bytes: Optional[int] = None,
    backups: int = 1,
    header: bool = True,
    **header_fields,
) -> EventJournal:
    """Open (and activate) the process-wide journal at ``path``.

    Emits the ``journal.open`` header unless ``header=False``.  Any
    previously active journal is closed first.
    """
    global _journal
    if _journal is not None:
        _journal.close()
    _journal = EventJournal(
        path, run_id=run_id, max_bytes=max_bytes, backups=backups
    )
    if header:
        _journal.emit_open(**header_fields)
    return _journal


def close_journal() -> None:
    """Close and deactivate the process-wide journal (idempotent)."""
    global _journal
    if _journal is not None:
        _journal.emit("journal.close")
        _journal.close()
        _journal = None


def emit(event: str, **fields) -> None:
    """Emit onto the active journal; a single ``None`` check when off."""
    j = _journal
    if j is not None:
        j.emit(event, **fields)


class _ShareEnv:
    """Context manager exporting the active journal's path via env.

    Worker entry points (runner, pooled ensemble) pick the path up
    with :func:`ensure_journal_from_env`; prior values are restored on
    exit so a library caller's environment is left untouched.  A no-op
    when no journal is active.
    """

    __slots__ = ("_saved",)

    def __enter__(self) -> "_ShareEnv":
        self._saved: Optional[Dict[str, Optional[str]]] = None
        active = _journal
        if active is None:
            return self
        keys = (EVENTS_ENV, EVENTS_ENV + "_RUN")
        self._saved = {key: os.environ.get(key) for key in keys}
        os.environ[EVENTS_ENV] = str(active.path)
        os.environ[EVENTS_ENV + "_RUN"] = active.run_id
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._saved is None:
            return
        for key, value in self._saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def share_env() -> _ShareEnv:
    """See :class:`_ShareEnv` — wrap pool creation in this."""
    return _ShareEnv()


def ensure_journal_from_env() -> Optional[EventJournal]:
    """Open the journal named by ``REPRO_EVENTS_JSON`` if not already.

    Called by worker entry points so spawned processes join the
    parent's journal.  The worker session skips the ``journal.open``
    header (the parent already wrote one) and announces itself with a
    ``worker.online`` heartbeat instead.
    """
    global _journal
    path = os.environ.get(EVENTS_ENV)
    if not path:
        return None
    if _journal is not None and str(_journal.path) == path:
        if _journal._pid == os.getpid():
            return _journal
        # forked child: the inherited journal carries the parent's pid
        # and shares its file descriptor — take over the record but
        # stamp this process and open a handle of our own
        _journal._pid = os.getpid()
        _journal._fh = None
        _journal._lock = threading.Lock()
        return _journal
    run_id = os.environ.get(EVENTS_ENV + "_RUN") or None
    _journal = EventJournal(path, run_id=run_id)
    _journal.emit("worker.online", argv0=sys.argv[0] if sys.argv else "")
    return _journal


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


def parse_events(
    lines: Iterable[str], *, strict: bool = False
) -> Iterator[Dict[str, object]]:
    """Decode journal lines, skipping (or raising on) damaged ones.

    A half-written trailing line — the expected artifact of a killed
    writer — decodes as invalid JSON and is silently dropped unless
    ``strict``; so is an event missing the schema tag.  Damaged-line
    counts are available via :func:`read_journal`.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if strict:
                raise
            continue
        if not isinstance(record, dict) or record.get("schema") != EVENT_SCHEMA:
            if strict:
                raise ValueError(
                    f"not a {EVENT_SCHEMA} event: {line[:120]!r}"
                )
            continue
        yield record


def read_journal(path: PathLike) -> Tuple[List[Dict[str, object]], int]:
    """Read a journal file; returns ``(events, damaged_line_count)``."""
    events: List[Dict[str, object]] = []
    damaged = 0
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped:
                continue
            got = list(parse_events([stripped]))
            if got:
                events.append(got[0])
            else:
                damaged += 1
    return events, damaged


def iter_events(path: PathLike) -> Iterator[Dict[str, object]]:
    """Iterate a journal's valid events (damaged lines skipped)."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        yield from parse_events(fh)


def follow_events(
    path: PathLike,
    *,
    poll_seconds: float = 0.2,
    stop: Optional[Callable] = None,
) -> Iterator[Dict[str, object]]:
    """``tail -f`` for a journal: yield events as they are appended.

    Starts from the beginning of the file, then polls for growth.
    Rotation is handled by detecting the file shrinking or changing
    inode.  ``stop()`` (when given) is consulted between polls so
    callers and tests can terminate the generator.
    """
    position = 0
    ino: Optional[int] = None
    buffer = ""
    while True:
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            stat = None
        if stat is not None:
            if ino is None:
                ino = stat.st_ino
            if stat.st_ino != ino or stat.st_size < position:
                # rotated or truncated under us: restart from the top
                position = 0
                buffer = ""
                ino = stat.st_ino
            if stat.st_size > position:
                with open(path, "r", encoding="utf-8", errors="replace") as fh:
                    fh.seek(position)
                    chunk = fh.read()
                    position = fh.tell()
                buffer += chunk
                *complete, buffer = buffer.split("\n")
                yield from parse_events(complete)
        if stop is not None and stop():
            yield from parse_events([buffer])
            return
        time.sleep(poll_seconds)


def render_event(record: Dict[str, object]) -> str:
    """One journal event as a compact human-readable line."""
    fields = record.get("fields") or {}
    detail = " ".join(f"{k}={_compact(v)}" for k, v in fields.items())
    t = record.get("t", 0.0)
    return (
        f"[{t:10.3f}s] {record.get('run', '?'):>14s} "
        f"pid={record.get('pid', '?')} {record.get('event', '?')}"
        + (f"  {detail}" if detail else "")
    )


def _compact(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, dict)):
        text = json.dumps(value, separators=(",", ":"))
        return text if len(text) <= 60 else text[:57] + "..."
    return str(value)
