"""Thread-safe metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Instrumented code normally asks the registry by name each time
(``registry.counter(name)``), so registries can be swapped or reset
without stale handles.  Lookup of an existing instrument is a single
dict read (safe under the GIL); the registry lock is only taken to
create one.  Hot paths that cannot afford even the per-call lookups
may cache handles keyed on ``(registry, registry.generation)`` —
``generation`` is bumped by :meth:`MetricsRegistry.reset`, so caches
invalidate on both swap and reset (see ``numerics.solvers._record``).

Everything exports to plain dicts (:meth:`MetricsRegistry.snapshot`)
so JSON serialisation is trivial and lossless.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Optional

#: Ring-buffer size for histogram percentile samples.
HISTOGRAM_SAMPLE_CAP = 512


class MetricTypeMismatchError(TypeError):
    """A metric name was used as two different instrument kinds.

    Raised both on direct registry access (``counter("x")`` after
    ``gauge("x")``) and — the case that used to be easy to miss — when
    merging a worker snapshot whose instrument kind disagrees with the
    local registry's.  Subclasses ``TypeError`` for backward
    compatibility with callers catching the old generic error.
    """


class Counter:
    """A monotonically increasing count (events, iterations, calls)."""

    kind = "counter"

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0.0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        with self._lock:
            self._value += amount

    def inc_unlocked(self, amount: float = 1.0) -> None:
        """Like :meth:`inc`, but the caller must hold ``self``'s lock.

        For batched hot-path updates via :func:`share_lock`; never call
        without holding the (shared) lock.
        """
        if amount < 0.0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def export(self) -> float:
        """Snapshot value (counters export as a bare number)."""
        return self._value


class Gauge:
    """A point-in-time value that can move both ways (rates, sizes)."""

    kind = "gauge"

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = float("nan")
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the latest observation."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """Most recent value (NaN before the first ``set``)."""
        return self._value

    def export(self) -> float:
        """Snapshot value (gauges export as a bare number)."""
        return self._value


class Histogram:
    """Summary statistics of a stream of observations (e.g. residuals).

    Tracks count/sum/min/max exactly and keeps a bounded ring buffer
    of recent samples for approximate percentiles, so memory stays
    O(1) no matter how hot the instrumented path is.
    """

    kind = "histogram"

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_samples", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.observe_unlocked(value)

    def observe_unlocked(self, value: float) -> None:
        """Like :meth:`observe`, but the caller must hold ``self``'s lock.

        For batched hot-path updates via :func:`share_lock`; never call
        without holding the (shared) lock.
        """
        v = float(value)
        if self._count < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(v)
        else:
            self._samples[self._count % HISTOGRAM_SAMPLE_CAP] = v
        self._count += 1
        self._sum += v
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (NaN when empty)."""
        return self._sum / self._count if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile from the sample buffer."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return float("nan")
        idx = min(len(samples) - 1, int(round(q / 100.0 * (len(samples) - 1))))
        return samples[idx]

    def export(self) -> Dict[str, float]:
        """Snapshot of the summary statistics."""
        if self._count == 0:
            return {"count": 0}
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
        }

    def absorb(self, stats: Dict[str, float]) -> None:
        """Fold an exported stats dict (another histogram's
        :meth:`export`) into this one.

        count/sum/min/max merge exactly; the sample ring buffer is not
        transferable, so percentiles afterwards reflect only locally
        observed samples.  Used to aggregate per-worker registries.
        """
        count = int(stats.get("count", 0))
        if count == 0:
            return
        with self._lock:
            self._count += count
            self._sum += float(stats["sum"])
            self._min = min(self._min, float(stats["min"]))
            self._max = max(self._max, float(stats["max"]))


def share_lock(*instruments) -> threading.Lock:
    """Make several instruments share one lock; return that lock.

    A hot path updating N instruments per event normally pays N lock
    round-trips.  After ``lock = share_lock(a, b, c)`` the caller can
    batch the updates under a single ``with lock:`` using the
    ``*_unlocked`` primitives, while plain ``inc``/``observe`` calls
    from other threads stay thread-safe (they acquire the same lock).

    Call this right after creating the instruments, before they see
    concurrent traffic: re-keying the lock of an instrument that is
    mid-update elsewhere is not synchronised.
    """
    lock = instruments[0]._lock
    for instrument in instruments[1:]:
        instrument._lock = lock
    return lock


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call makes the instrument, later calls return the same object.
    Asking for an existing name as a different kind raises
    ``TypeError`` — metric names identify one instrument each.
    """

    def __init__(self):
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()
        #: Bumped on :meth:`reset`.  Hot paths that cache instrument
        #: handles key the cache on ``(registry, generation)`` so a
        #: reset invalidates them without a per-call dict lookup.
        self.generation = 0

    def _get_or_create(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise MetricTypeMismatchError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram)

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (names and values)."""
        with self._lock:
            self._instruments = {}
            self.generation += 1

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict export grouped by instrument kind, names sorted.

        Includes a ``"types"`` map (name -> instrument kind) so a
        snapshot is self-describing: :meth:`absorb_snapshot` uses it
        to reject kind clashes explicitly instead of relying on which
        section a name happens to sit in.
        """
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "types": {},
        }
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.export()
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.export()
            else:
                out["histograms"][name] = instrument.export()
            out["types"][name] = instrument.kind
        return out

    def to_json(self, *, indent: int = 2) -> str:
        """JSON form of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent)

    def absorb_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a plain-dict :meth:`snapshot` into this registry.

        Counters add, gauges take the snapshot's value (last write
        wins), histogram summary stats merge via
        :meth:`Histogram.absorb`.  This is how the parallel runner
        merges per-worker registries into the parent's one aggregate.

        Kind clashes raise :class:`MetricTypeMismatchError` *before*
        any value is folded in: a worker histogram must never be
        coerced into (or silently shadowed by) a parent counter of the
        same name, and a snapshot whose ``types`` tag disagrees with
        the section a name sits in is rejected as corrupt.
        """
        self._check_snapshot_types(snapshot)
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snapshot.get("gauges", {}).items():
            value = float(value)
            if not math.isnan(value):
                self.gauge(name).set(value)
        for name, stats in snapshot.get("histograms", {}).items():
            self.histogram(name).absorb(stats)

    _SECTION_KINDS = (
        ("counters", "counter"),
        ("gauges", "gauge"),
        ("histograms", "histogram"),
    )

    def _check_snapshot_types(
        self, snapshot: Dict[str, Dict[str, object]]
    ) -> None:
        """Validate an incoming snapshot's kinds against tags and self."""
        declared = snapshot.get("types") or {}
        for section, kind in self._SECTION_KINDS:
            for name in snapshot.get(section, {}):
                tagged = declared.get(name)
                if tagged is not None and tagged != kind:
                    raise MetricTypeMismatchError(
                        f"snapshot tags metric {name!r} as {tagged!r} but "
                        f"lists it under {section!r} — snapshot is corrupt"
                    )
                existing = self._instruments.get(name)
                if existing is not None and existing.kind != kind:
                    raise MetricTypeMismatchError(
                        f"cannot merge snapshot: metric {name!r} is a "
                        f"{kind} in the snapshot but a {existing.kind} "
                        f"in this registry"
                    )

    def render_text(self) -> str:
        """Aligned text table of every instrument (for --profile output)."""
        snap = self.snapshot()
        lines: List[str] = []
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(n) for n in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(n) for n in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, stats in snap["histograms"].items():
                if stats.get("count", 0) == 0:
                    lines.append(f"  {name}  (empty)")
                    continue
                lines.append(
                    f"  {name}  count={stats['count']} mean={stats['mean']:.4g} "
                    f"min={stats['min']:.4g} p50={stats['p50']:.4g} "
                    f"p99={stats['p99']:.4g} max={stats['max']:.4g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


def merge_snapshots(snapshots) -> Dict[str, Dict[str, object]]:
    """Merge several :meth:`MetricsRegistry.snapshot` dicts into one.

    Counters sum, gauges keep the last non-NaN value (snapshot order),
    histograms merge count/sum/min/max and recompute the mean —
    percentiles are dropped, since sample buffers do not travel in a
    snapshot.  This is the read-only counterpart of
    :meth:`MetricsRegistry.absorb_snapshot`, used for the parallel
    runner's aggregate report.
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.absorb_snapshot(snap)
    out = merged.snapshot()
    for stats in out["histograms"].values():
        stats.pop("p50", None)
        stats.pop("p99", None)
    return out


class CallCounter:
    """Wrap a callable, counting invocations (for evaluation counters).

    Used by instrumented numeric code to count objective/integrand
    evaluations without touching a registry inside the inner loop;
    the caller flushes ``calls`` into a counter once at the end.
    """

    __slots__ = ("func", "calls")

    def __init__(self, func):
        self.func = func
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self.func(*args, **kwargs)
