"""Structured wall-time tracing: nested spans with labels.

A span measures the wall time of one region of code; spans opened
while another is active nest under it, forming a tree per top-level
region.  The tracer keeps one open-span stack per thread and a shared
list of finished root spans, so concurrent simulations each produce
their own tree.

The fast path matters more than the features: when observability is
disabled, :func:`repro.obs.span` returns a stateless shared no-op
context manager and no :class:`SpanRecord` is ever allocated.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional


class SpanRecord:
    """One finished (or in-flight) timed region."""

    __slots__ = ("name", "labels", "start", "end", "children")

    def __init__(self, name: str, labels: Optional[Dict[str, object]] = None):
        self.name = name
        self.labels = labels or {}
        self.start = 0.0
        self.end: Optional[float] = None
        self.children: List["SpanRecord"] = []

    @property
    def duration(self) -> float:
        """Wall seconds from start to end (to now if still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(0.0, end - self.start)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (durations in seconds)."""
        out: Dict[str, object] = {
            "name": self.name,
            "duration_seconds": self.duration,
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanRecord":
        """Rebuild a finished span tree from its :meth:`to_dict` form.

        Wall-clock anchors are gone, so the record is pinned at
        ``start = 0`` with ``end`` equal to the recorded duration —
        duration-faithful, which is all the reports use.  This is how
        spans recorded in runner worker processes rejoin the parent's
        trace.
        """
        record = cls(str(data["name"]), dict(data.get("labels") or {}))
        record.start = 0.0
        record.end = float(data.get("duration_seconds", 0.0))
        record.children = [
            cls.from_dict(child) for child in data.get("children", [])
        ]
        return record


class _NullSpan:
    """Shared, stateless no-op span — the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def annotate(self, **labels) -> None:
        """No-op counterpart of :meth:`_LiveSpan.annotate`."""


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that opens a :class:`SpanRecord` on the tracer."""

    __slots__ = ("_tracer", "_record", "_is_root")

    def __init__(self, tracer: "Tracer", name: str, labels: Dict[str, object]):
        self._tracer = tracer
        self._record = SpanRecord(name, labels)
        self._is_root = False

    def __enter__(self) -> "_LiveSpan":
        self._is_root = self._tracer._push(self._record)
        self._record.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._record.end = time.perf_counter()
        if exc_type is not None:
            self._record.labels.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._record, self._is_root)
        return False

    def annotate(self, **labels) -> None:
        """Attach labels to the span after it was opened."""
        self._record.labels.update(labels)


class Tracer:
    """Collects span trees: per-thread open stacks, shared finished roots."""

    def __init__(self):
        self._local = threading.local()
        self._roots: List[SpanRecord] = []
        self._lock = threading.Lock()

    # -- stack plumbing used by _LiveSpan ------------------------------

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, record: SpanRecord) -> bool:
        """Attach under the innermost open span; True if this is a root."""
        stack = self._stack()
        is_root = not stack
        if stack:
            stack[-1].children.append(record)
        stack.append(record)
        return is_root

    def _pop(self, record: SpanRecord, is_root: bool) -> None:
        stack = self._stack()
        # tolerate out-of-order exits (generators suspended mid-span)
        if record in stack:
            while stack and stack[-1] is not record:
                stack.pop()
            stack.pop()
        if is_root:
            with self._lock:
                self._roots.append(record)

    # -- public API ----------------------------------------------------

    def span(self, name: str, **labels) -> _LiveSpan:
        """Open a live span under the current thread's innermost span."""
        return _LiveSpan(self, name, labels)

    def roots(self) -> List[SpanRecord]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def adopt(self, record: SpanRecord) -> None:
        """Append an already-finished span tree as a root.

        Used to merge spans recorded elsewhere (runner workers) into
        this tracer so one report covers the whole parallel run.
        """
        with self._lock:
            self._roots.append(record)

    def clear(self) -> None:
        """Drop every recorded span (open stacks are untouched)."""
        with self._lock:
            self._roots = []

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready list of root span trees."""
        return [root.to_dict() for root in self.roots()]

    def to_json(self, *, indent: int = 2) -> str:
        """The whole trace as a JSON array of span trees."""
        return json.dumps(self.to_dicts(), indent=indent)
