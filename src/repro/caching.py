"""In-process memoisation utilities: bounded, float-tolerant caches.

The analytic models memoise per-capacity totals (``V_B(C)``,
``V_R(C)``, retry fixed points).  Two pitfalls with a plain dict:

- **Float identity misses.**  Sweeps and root finders evaluate at
  capacities that are equal to within the solvers' x-tolerance but not
  bit-identical (``100.0`` vs ``100.0 + 1e-14``), so a raw float key
  never hits.  :class:`BoundedCache` rounds float keys to a fixed
  number of decimals — matching
  :data:`repro.numerics.solvers.XTOL` (1e-12) by default — so
  solver-tolerance-equal capacities share one entry.
- **Unbounded growth.**  A long sweep (or the bandwidth-gap solver
  probing thousands of capacities) grows the dict without limit.
  :class:`BoundedCache` is an LRU: once ``maxsize`` entries exist, the
  least recently used one is evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

#: Decimals float keys are rounded to — matches the root finders'
#: absolute x-tolerance (``repro.numerics.solvers.XTOL == 1e-12``).
ROUND_DECIMALS = 12

#: Default entry bound; per-capacity scalars are tiny, so this caps
#: memory while comfortably covering any figure sweep.
DEFAULT_MAXSIZE = 4096


class BoundedCache:
    """An LRU mapping whose float keys are rounded to a tolerance.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept; the least recently *used*
        entry is evicted on overflow.
    round_decimals:
        Float keys are rounded to this many decimals before lookup and
        store, so keys equal to within the matching solver tolerance
        collapse to one entry.  Non-float keys pass through unchanged.
    """

    __slots__ = ("_data", "_maxsize", "_decimals")

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        *,
        round_decimals: int = ROUND_DECIMALS,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize!r}")
        self._data: OrderedDict = OrderedDict()
        self._maxsize = int(maxsize)
        self._decimals = int(round_decimals)

    def canonical_key(self, key: Hashable) -> Hashable:
        """The stored form of ``key`` (floats rounded to tolerance)."""
        if isinstance(key, float):
            return round(key, self._decimals)
        return key

    def get(self, key: Hashable, default=None):
        """Value for ``key`` (tolerance-rounded), or ``default``."""
        k = self.canonical_key(key)
        try:
            value = self._data[k]
        except KeyError:
            return default
        self._data.move_to_end(k)
        return value

    def put(self, key: Hashable, value) -> None:
        """Store ``value`` under the tolerance-rounded ``key``."""
        k = self.canonical_key(key)
        self._data[k] = value
        self._data.move_to_end(k)
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return self.canonical_key(key) in self._data

    def __len__(self) -> int:
        return len(self._data)

    @property
    def maxsize(self) -> int:
        """The entry bound."""
        return self._maxsize

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()
