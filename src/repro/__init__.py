"""repro — Best-Effort versus Reservations: A Simple Comparative Analysis.

A faithful, fully tested reimplementation of Breslau & Shenker's
SIGCOMM 1998 analytical comparison of best-effort-only and
reservation-capable network architectures, plus the dynamic simulation
substrate the paper abstracts away.

Quick start::

    from repro import ArchitectureComparison, GeometricLoad, AdaptiveUtility

    cmp = ArchitectureComparison(GeometricLoad.from_mean(100.0),
                                 AdaptiveUtility())
    point = cmp.at(capacity=200.0)
    print(point.performance_gap, point.bandwidth_gap)

Subpackages:

- :mod:`repro.utility` — application utility functions ``pi(b)``.
- :mod:`repro.loads` — offered-load distributions ``P(k)``.
- :mod:`repro.models` — the paper's Sections 2-5 models.
- :mod:`repro.continuum` — closed forms and asymptotic laws.
- :mod:`repro.simulation` — flow-level discrete-event simulator.
- :mod:`repro.extensions` — heterogeneous / risk-averse / nonstationary.
- :mod:`repro.inference` — fit census measurements, recommend an
  architecture (the paper's Section 6 advice as a pipeline).
- :mod:`repro.network` — the comparison generalised to multi-link
  topologies (max-min fairness vs ILP admission).
- :mod:`repro.traces` — flow-trace records and the trace -> census ->
  verdict pipeline.
- :mod:`repro.experiments` — regenerate every figure and quoted number.
"""

from repro.errors import (
    BracketError,
    CalibrationError,
    ConvergenceError,
    ModelError,
    ReproError,
)
from repro.loads import (
    KBAR_PAPER,
    AlgebraicLoad,
    ExponentialLoad,
    GeometricLoad,
    LoadDistribution,
    MaxOfSLoad,
    ParetoLoad,
    PoissonLoad,
    SizeBiasedLoad,
    standard_loads,
)
from repro.models import (
    Architecture,
    ArchitectureComparison,
    FixedLoadModel,
    RetryingModel,
    SamplingModel,
    VariableLoadModel,
    WelfareModel,
)
from repro.utility import (
    KAPPA_PAPER,
    AdaptiveUtility,
    AlgebraicTailUtility,
    ExponentialElasticUtility,
    HyperbolicElasticUtility,
    PiecewiseLinearUtility,
    PowerLowUtility,
    RigidUtility,
    UtilityFunction,
    calibrate_kappa,
)

__version__ = "1.0.0"

__all__ = [
    "KAPPA_PAPER",
    "KBAR_PAPER",
    "AdaptiveUtility",
    "AlgebraicLoad",
    "AlgebraicTailUtility",
    "Architecture",
    "ArchitectureComparison",
    "BracketError",
    "CalibrationError",
    "ConvergenceError",
    "ExponentialElasticUtility",
    "ExponentialLoad",
    "FixedLoadModel",
    "GeometricLoad",
    "HyperbolicElasticUtility",
    "LoadDistribution",
    "MaxOfSLoad",
    "ModelError",
    "ParetoLoad",
    "PiecewiseLinearUtility",
    "PoissonLoad",
    "PowerLowUtility",
    "ReproError",
    "RetryingModel",
    "RigidUtility",
    "SamplingModel",
    "SizeBiasedLoad",
    "UtilityFunction",
    "VariableLoadModel",
    "WelfareModel",
    "calibrate_kappa",
    "standard_loads",
    "__version__",
]
