"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch one base class instead of
guessing which submodule failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConvergenceError(ReproError):
    """A numerical routine failed to converge.

    Raised by root finders, fixed-point iterations and series summation
    when the requested tolerance cannot be met within the iteration
    budget.  The offending inputs are included in the message so the
    failure can be reproduced.
    """


class BracketError(ConvergenceError):
    """A root or optimum could not be bracketed.

    Usually means the target value lies outside the function's range
    (e.g. asking for a bandwidth gap when best-effort utility can never
    reach the reservation utility within the search limits).
    """


class ConvergenceWarning(UserWarning):
    """A numerical routine degraded instead of failing.

    Emitted (not raised) when a solver returns a usable answer that
    missed the requested tolerance — e.g. brentq stopping at its
    iteration cap.  The observability layer (:mod:`repro.obs`) counts
    these under ``solver.convergence_failures`` when enabled.
    """


class CalibrationError(ReproError):
    """A distribution or utility parameter could not be calibrated.

    Raised, for example, when no value of the algebraic-load shift
    parameter produces the requested mean, or when the adaptive-utility
    kappa cannot be tuned to place ``k_max(C)`` at ``C``.
    """


class ModelError(ReproError):
    """A model was constructed or queried with inconsistent inputs."""
