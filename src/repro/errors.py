"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch one base class instead of
guessing which submodule failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConvergenceError(ReproError):
    """A numerical routine failed to converge.

    Raised by root finders, fixed-point iterations and series summation
    when the requested tolerance cannot be met within the iteration
    budget.  The offending inputs are included in the message so the
    failure can be reproduced.
    """


class BracketError(ConvergenceError):
    """A root or optimum could not be bracketed.

    Usually means the target value lies outside the function's range
    (e.g. asking for a bandwidth gap when best-effort utility can never
    reach the reservation utility within the search limits).
    """


class ConvergenceWarning(UserWarning):
    """A numerical routine degraded instead of failing.

    Emitted (not raised) when a solver returns a usable answer that
    missed the requested tolerance — e.g. brentq stopping at its
    iteration cap.  The observability layer (:mod:`repro.obs`) counts
    these under ``solver.convergence_failures`` when enabled.
    """


class CalibrationError(ReproError):
    """A distribution or utility parameter could not be calibrated.

    Raised, for example, when no value of the algebraic-load shift
    parameter produces the requested mean, or when the adaptive-utility
    kappa cannot be tuned to place ``k_max(C)`` at ``C``.
    """


class ModelError(ReproError):
    """A model was constructed or queried with inconsistent inputs."""


class ProvenanceError(ReproError):
    """A frozen result snapshot is malformed or cannot be processed.

    Raised by :mod:`repro.provenance` for structural problems — a
    missing or unparseable ``MANIFEST.json``, an unknown schema, an
    artifact the manifest names that is absent from the snapshot.
    *Drift* (artifacts whose hashes or recomputed headline numbers no
    longer match) is not an exception: it is reported through the
    verification report so every check runs and the full divergence is
    visible at once.
    """


class EmulatorError(ReproError):
    """Base class for emulator-surface errors (:mod:`repro.emulator`)."""


class CertificationError(EmulatorError):
    """A fitted surface could not be certified within tolerance.

    Raised when dense residual sampling against the exact solver finds
    a deviation too large for the declared error allowance.  The
    surface is *refused*, never served: a certified bound that the
    emulator cannot honour would silently corrupt every downstream
    query.  The message carries the observed residual and the
    allowance so the degree/domain can be retuned.
    """


class OutOfDomainError(EmulatorError):
    """An emulator surface was queried outside its fitted domain.

    Certified error bounds hold only on the fitted interval; instead
    of extrapolating (Chebyshev polynomials diverge fast outside
    [-1, 1]) the surface refuses, and the service layer falls back to
    the exact solvers through the result cache.
    """


class SimulationBudgetError(ModelError):
    """A simulation exhausted its event budget before the horizon.

    Carries the diagnostics an operator needs to size the next attempt:
    how many events were executed, how far simulated time got, and the
    horizon that was requested.  Raised instead of silently truncating
    so a partial trajectory can never be mistaken for a full run.

    ``partial`` optionally carries whatever completed state the caller
    accumulated before the budget ran out — adaptive ensemble runs
    attach the Welford estimate over the replications that *did*
    finish, so an equal-budget comparison can still read the partial
    answer instead of discarding paid-for work.
    """

    def __init__(
        self,
        *,
        events: int,
        reached_t: float,
        horizon: float,
        partial=None,
    ):
        self.events = int(events)
        self.reached_t = float(reached_t)
        self.horizon = float(horizon)
        self.partial = partial
        message = (
            f"exceeded {self.events} events at simulated time "
            f"{self.reached_t:.6g} of horizon {self.horizon:.6g} "
            f"({100.0 * self.reached_t / self.horizon:.1f}% covered); "
            "reduce the horizon or raise max_events"
        )
        if partial is not None:
            replications = getattr(partial, "replications", None)
            if replications:
                message += (
                    f" (partial estimate over {replications} completed "
                    "replications preserved on .partial)"
                )
            else:
                message += " (partial state preserved on .partial)"
        super().__init__(message)
