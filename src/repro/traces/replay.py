"""Trace replay: drive the ensemble estimators from streamed flows.

The PR-4 ensemble engine estimates ``B_hat``/``R_hat`` from
piecewise-constant census trajectories; an operator's trace *is* such
a trajectory, just too large to hold.  This module closes the gap at
constant memory:

1. **Occupancy sweep** (:func:`sweep_occupancy`).  One time-ordered
   pass over an arrival-sorted stream folds the exact census
   trajectory into per-window time-in-state histograms
   ``occupancy[window, census_level]`` — the sufficient statistic for
   every flow-time average the estimators compute.  Pending departures
   live in one sorted array bounded by the peak census plus a chunk,
   never by the flow count; every positive-duration segment is
   accumulated in global time order, so the result is *byte-identical
   for any chunk size*.
2. **CRN-paired evaluation** (:meth:`TraceOccupancy.evaluate`).  Each
   window's histogram is laid out as a synthetic replication row of a
   real :class:`~repro.simulation.ensemble.EnsembleResult`, once under
   best-effort accounting (``M = N``) and once under the paper's
   reservation rule (``M = min(N, ceil(k_max))``, exactly the
   ``ThresholdAdmission.from_utility(..., readmit_waiting=True)``
   steady rule the ensemble engine applies) — both rows share the one
   trace trajectory, the strongest possible common-random-numbers
   pairing.  ``utility_estimates`` then produces per-window
   ``(B_hat, R_hat)`` through the engine's own flow-time averaging and
   a :class:`~repro.simulation.ensemble.PairedGapResult` carries the
   Welford/Student-t confidence intervals.

Windows double as replications: R disjoint spans of ``[warmup,
horizon]`` give R weakly dependent estimates whose spread prices the
CI — the block-resampling view of a single long trajectory.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ModelError
from repro.simulation.admission import ThresholdAdmission
from repro.simulation.ensemble import EnsembleResult, PairedGapResult
from repro.traces.format import FlowTrace
from repro.traces.stream import DEFAULT_CHUNK_FLOWS, TraceStream, stream_trace
from repro.utility.base import UtilityFunction

#: Default number of measurement windows (= synthetic replications).
DEFAULT_WINDOWS = 16


@dataclass(frozen=True)
class ReplayResult:
    """One capacity's CRN-paired replay verdict plus trace statistics."""

    capacity: float
    threshold: float
    windows: int
    warmup: float
    horizon: float
    flows: int
    events: int
    max_pending: int
    census_values: np.ndarray
    census_pmf: np.ndarray
    mean_census: float
    paired: PairedGapResult

    def summary(self) -> dict:
        """JSON-ready headline numbers (the provenance-frozen surface)."""
        out = {
            key: (float(value) if isinstance(value, (int, float, np.floating)) else value)
            for key, value in self.paired.summary().items()
        }
        out["replications"] = int(self.paired.gap.shape[0])
        out.update(
            capacity=float(self.capacity),
            threshold=float(self.threshold),
            windows=int(self.windows),
            warmup=float(self.warmup),
            horizon=float(self.horizon),
            flows=int(self.flows),
            events=int(self.events),
            mean_census=float(self.mean_census),
        )
        return out


@dataclass(frozen=True)
class TraceOccupancy:
    """Per-window time-in-state histograms: the replay's sufficient statistic.

    ``occupancy[w, n]`` is the time within window ``w`` the census
    spent at level ``n``; rows sum to the window widths exactly (up to
    float round-off), columns span ``0..max_census``.
    """

    edges: np.ndarray
    occupancy: np.ndarray
    horizon: float
    flows: int
    events: int
    max_pending: int

    @property
    def warmup(self) -> float:
        return float(self.edges[0])

    @property
    def windows(self) -> int:
        return int(len(self.edges) - 1)

    @property
    def max_census(self) -> int:
        """Highest census level with positive dwell time (0 if none)."""
        mass = np.flatnonzero(self.occupancy.sum(axis=0) > 0.0)
        return int(mass.max()) if len(mass) else 0

    def census_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        """Pooled time-weighted census pmf over ``[warmup, horizon]``."""
        weights = self.occupancy.sum(axis=0)
        keep = weights > 0.0
        values = np.flatnonzero(keep)
        probs = weights[keep]
        total = probs.sum()
        if total <= 0.0:
            raise ModelError("no trajectory mass in the measurement window")
        return values.astype(np.int64), probs / total

    def mean_census(self) -> float:
        """Time-average census over the measurement window."""
        weights = self.occupancy.sum(axis=0)
        total = weights.sum()
        if total <= 0.0:
            raise ModelError("no trajectory mass in the measurement window")
        levels = np.arange(len(weights))
        return float(np.dot(levels, weights) / total)

    def _ensemble_rows(self, admitted_of, capacity: float) -> EnsembleResult:
        """Windows as replication rows of a real :class:`EnsembleResult`.

        Window ``w``'s histogram becomes a synthetic piecewise-constant
        trajectory spanning ``[edges[w], edges[w+1])`` (levels in
        ascending order — flow-time averages are order-free), closed by
        a census-0 record to the horizon so the trailing span carries
        zero flow-time and drops out of every estimate.
        """
        edges = self.edges
        windows = self.windows
        occ = self.occupancy
        rows_levels = []
        rows_durs = []
        for w in range(windows):
            present = np.flatnonzero(occ[w] > 0.0)
            rows_levels.append(present)
            rows_durs.append(occ[w, present])
        length = max(len(lv) for lv in rows_levels) + 1
        times = np.full((windows, length), self.horizon, dtype=float)
        census = np.zeros((windows, length), dtype=float)
        admitted = np.zeros((windows, length), dtype=float)
        counts = np.zeros(windows, dtype=np.int64)
        for w in range(windows):
            levels = rows_levels[w]
            durs = rows_durs[w]
            k = len(levels)
            starts = edges[w] + np.concatenate([[0.0], np.cumsum(durs[:-1])])
            times[w, :k] = starts
            census[w, :k] = levels
            admitted[w, :k] = admitted_of(levels)
            # close the window at level 0 so the span to the horizon
            # carries no flow-time
            times[w, k] = edges[w + 1]
            counts[w] = k + 1
        return EnsembleResult(
            times=times,
            census=census,
            admitted=admitted,
            counts=counts,
            arrivals=np.zeros(windows, dtype=np.int64),
            admissions=np.zeros(windows, dtype=np.int64),
            capacity=capacity,
            warmup=self.warmup,
            horizon=self.horizon,
            engine="trace-replay",
        )

    def evaluate(
        self,
        utility: UtilityFunction,
        capacity: float,
        *,
        level: float = 0.95,
    ) -> ReplayResult:
        """CRN-paired best-effort vs reservation verdict at ``capacity``.

        Both architectures are evaluated on the *same* per-window
        census histograms through
        :meth:`EnsembleResult.utility_estimates` — best-effort admits
        everyone (``M = N``), reservations cap admission at the
        utility's ``k_max`` exactly as the paper's threshold rule with
        readmission does in steady state.
        """
        if capacity <= 0.0:
            raise ModelError(f"capacity must be > 0, got {capacity!r}")
        policy = ThresholdAdmission.from_utility(utility, readmit_waiting=True)
        threshold = float(policy.threshold(capacity))
        if math.isinf(threshold):
            cap_m = None
        else:
            cap_m = max(0, int(math.ceil(threshold)))
        be_rows = self._ensemble_rows(lambda levels: levels, capacity)
        res_rows = self._ensemble_rows(
            (lambda levels: levels)
            if cap_m is None
            else (lambda levels: np.minimum(levels, cap_m)),
            capacity,
        )
        be_values, _ = be_rows.utility_estimates(utility)
        _, res_values = res_rows.utility_estimates(utility)
        paired = PairedGapResult(
            best_effort=be_values,
            reservation=res_values,
            gap=res_values - be_values,
            level=level,
        )
        values, pmf = self.census_distribution()
        return ReplayResult(
            capacity=float(capacity),
            threshold=threshold,
            windows=self.windows,
            warmup=self.warmup,
            horizon=self.horizon,
            flows=self.flows,
            events=self.events,
            max_pending=self.max_pending,
            census_values=values,
            census_pmf=pmf,
            mean_census=self.mean_census(),
            paired=paired,
        )


def _grow_columns(occ: np.ndarray, needed: int) -> np.ndarray:
    """Widen the level axis (values preserved bit-for-bit)."""
    if needed <= occ.shape[1]:
        return occ
    wider = np.zeros((occ.shape[0], needed), dtype=float)
    wider[:, : occ.shape[1]] = occ
    return wider


def sweep_occupancy(
    stream: TraceStream,
    *,
    windows: int = DEFAULT_WINDOWS,
    warmup: Optional[float] = None,
) -> TraceOccupancy:
    """Fold an arrival-sorted stream into per-window census occupancy.

    One pass, exact: the trace's event-driven census trajectory is
    reconstructed slab by slab (a slab spans up to the current chunk's
    last arrival), with pending departures kept in one sorted array.
    Positive-duration segments are clipped to their window and
    accumulated in global time order, making the result independent of
    the chunking — byte-identical occupancies for any ``chunk_flows``.

    Raises :class:`~repro.errors.ModelError` if arrivals regress
    across or within chunks (replay needs time order; sort the trace,
    or use :func:`~repro.traces.stream.stream_trace`, first).
    """
    if windows < 2:
        raise ModelError(
            f"need windows >= 2 for a confidence interval, got {windows!r}"
        )
    horizon = stream.horizon
    if warmup is None:
        warmup = 0.1 * horizon
    if not 0.0 <= warmup < horizon:
        raise ModelError(
            f"warmup must be in [0, horizon), got {warmup!r} vs {horizon!r}"
        )
    edges = np.linspace(warmup, horizon, windows + 1)

    occ = np.zeros((windows, 8), dtype=float)
    pending = np.empty(0, dtype=float)  # sorted departure times
    t_cur = 0.0
    n_cur = 0
    last_arrival = 0.0
    next_edge = 0  # edges[:next_edge] already injected as boundary events
    flows = 0
    events = 0
    max_pending = 0
    wall_start = time.perf_counter()

    def process_slab(
        arrivals: np.ndarray, ends: np.ndarray, slab_end: float
    ) -> None:
        """Fold all events up to ``slab_end`` into the occupancy."""
        nonlocal occ, t_cur, n_cur, next_edge, events
        edge_hi = next_edge
        while edge_hi < len(edges) and edges[edge_hi] <= slab_end:
            edge_hi += 1
        boundaries = edges[next_edge:edge_hi]
        next_edge = edge_hi
        times = np.concatenate([arrivals, ends, boundaries])
        deltas = np.concatenate(
            [
                np.ones(len(arrivals), dtype=np.int64),
                -np.ones(len(ends), dtype=np.int64),
                np.zeros(len(boundaries), dtype=np.int64),
            ]
        )
        order = np.argsort(times, kind="stable")
        times = times[order]
        levels_after = n_cur + np.cumsum(deltas[order])
        # segment i runs [seg_start[i], times[i]) at seg_level[i]
        seg_start = np.concatenate([[t_cur], times[:-1]])
        seg_level = np.concatenate([[n_cur], levels_after[:-1]])
        lo = np.maximum(seg_start, warmup)
        hi = np.minimum(times, horizon)
        durs = hi - lo
        keep = durs > 0.0
        if np.any(keep):
            lo = lo[keep]
            durs = durs[keep]
            levels = seg_level[keep].astype(np.int64)
            w_idx = np.clip(
                np.searchsorted(edges, lo, side="right") - 1, 0, windows - 1
            )
            top = int(levels.max())
            if top >= occ.shape[1]:
                occ = _grow_columns(occ, max(top + 1, 2 * occ.shape[1]))
            np.add.at(occ, (w_idx, levels), durs)
        events += len(times) - len(boundaries)
        t_cur = slab_end
        n_cur = int(levels_after[-1]) if len(levels_after) else n_cur

    with obs.span("traces.sweep", windows=windows):
        for chunk in stream:
            arrivals = chunk.arrival
            if arrivals[0] < last_arrival or np.any(np.diff(arrivals) < 0.0):
                raise ModelError(
                    "replay requires an arrival-ordered stream; sort the "
                    "trace (stream_trace does) before sweeping"
                )
            last_arrival = float(arrivals[-1])
            flows += len(arrivals)
            ends_new = np.minimum(chunk.departure, horizon)
            slab_end = last_arrival
            due = pending[pending <= slab_end]
            pending = pending[pending > slab_end]
            new_due = ends_new[ends_new <= slab_end]
            new_later = ends_new[ends_new > slab_end]
            ends = np.sort(np.concatenate([due, new_due]))
            process_slab(arrivals, ends, slab_end)
            pending = np.sort(np.concatenate([pending, new_later]))
            if len(pending) > max_pending:
                max_pending = len(pending)
        # drain: departures (and window edges) after the last arrival
        process_slab(np.empty(0), pending[pending <= horizon], horizon)

    # trim the level axis to the occupied range so the result is
    # canonical (growth doubling would otherwise leak the chunking)
    used = np.flatnonzero(occ.sum(axis=0) > 0.0)
    occ = occ[:, : int(used.max()) + 1] if len(used) else occ[:, :1]

    if obs.enabled():
        wall = time.perf_counter() - wall_start
        obs.counter("traces.replay.flows").inc(flows)
        obs.counter("traces.replay.events").inc(events)
        obs.gauge("traces.replay.max_pending").set(max_pending)
        if wall > 0.0:
            obs.gauge("traces.replay.flow_rate").set(flows / wall)
    return TraceOccupancy(
        edges=edges,
        occupancy=occ,
        horizon=horizon,
        flows=flows,
        events=events,
        max_pending=max_pending,
    )


def replay_stream(
    stream: TraceStream,
    utility: UtilityFunction,
    capacity: float,
    *,
    windows: int = DEFAULT_WINDOWS,
    warmup: Optional[float] = None,
    level: float = 0.95,
) -> ReplayResult:
    """Sweep a stream once and evaluate the paired verdict at ``capacity``.

    Composes :func:`sweep_occupancy` and
    :meth:`TraceOccupancy.evaluate`; sweeping once and evaluating many
    capacities via the occupancy object is cheaper for sweeps (the
    occupancy is capacity-independent).
    """
    from repro.obs import resources

    with resources.profile_block("traces.replay"):
        occupancy = sweep_occupancy(stream, windows=windows, warmup=warmup)
        return occupancy.evaluate(utility, capacity, level=level)


def replay_trace(
    trace: FlowTrace,
    utility: UtilityFunction,
    capacity: float,
    *,
    windows: int = DEFAULT_WINDOWS,
    warmup: Optional[float] = None,
    level: float = 0.95,
    chunk_flows: int = DEFAULT_CHUNK_FLOWS,
) -> ReplayResult:
    """In-memory convenience wrapper: chunk the trace and replay it."""
    return replay_stream(
        stream_trace(trace, chunk_flows=chunk_flows),
        utility,
        capacity,
        windows=windows,
        warmup=warmup,
        level=level,
    )
