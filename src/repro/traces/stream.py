"""Streaming flow-trace ingestion: millions of flows at constant memory.

The in-memory :class:`~repro.traces.format.FlowTrace` holds every flow
at once; operators hold traces that do not fit.  This module streams
them instead:

- :class:`TraceChunk` / :class:`TraceStream` — a trace as an iterator
  of bounded arrival/departure chunks plus the up-front header
  (horizon, metadata) every consumer needs before the first flow.
- chunked persistence — the commented-header CSV of
  :mod:`repro.traces.format` read and written chunk-by-chunk
  (:func:`open_trace_csv` / :func:`write_trace_csv`), and an npz
  *segment directory* (:func:`open_trace_npz` /
  :func:`write_trace_npz`): one ``index.json`` plus one compressed
  ``segment-NNNNN.npz`` per chunk, so a read never loads more than one
  segment.
- streaming census — :func:`stream_census_at` answers point queries by
  counting ``#{arrival <= t} - #{end <= t}`` per chunk, which equals
  the in-memory :func:`~repro.traces.census.census_at` *exactly*
  (integer counts, byte-identical for any chunk size), and
  :func:`stream_census_samples` replays the identical RNG draw as
  :func:`~repro.traces.census.census_samples`.

Memory is bounded by one chunk plus the query set, never by the flow
count; the replay engine (:mod:`repro.traces.replay`) adds the
time-ordered sweep that needs arrival-sorted streams.
"""

from __future__ import annotations

import csv
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro import obs
from repro.errors import ModelError
from repro.ioutils import atomic_write_text
from repro.traces.format import FlowTrace, _format_time, _parse_flow_row

#: Default flows per chunk: large enough to amortise numpy dispatch,
#: small enough that a chunk is a few MiB.
DEFAULT_CHUNK_FLOWS = 65536

#: Schema tag of the npz segment-directory index.
SEGMENT_SCHEMA = "repro.traces.segments/v1"

#: Index file name inside an npz segment directory.
SEGMENT_INDEX = "index.json"


@dataclass(frozen=True)
class TraceChunk:
    """A bounded run of flows: parallel arrival/departure arrays."""

    arrival: np.ndarray
    departure: np.ndarray

    def __post_init__(self):
        a = np.asarray(self.arrival, dtype=float)
        d = np.asarray(self.departure, dtype=float)
        if a.ndim != 1 or a.shape != d.shape:
            raise ModelError(
                "a trace chunk needs matching 1-D arrival/departure arrays"
            )
        if len(a) and (np.any(a < 0.0) or np.any(d < a)):
            raise ModelError("need 0 <= arrival <= departure per flow")
        object.__setattr__(self, "arrival", a)
        object.__setattr__(self, "departure", d)

    def __len__(self) -> int:
        return len(self.arrival)


class TraceStream:
    """A flow trace as a one-shot iterator of :class:`TraceChunk`.

    The header (``horizon``, ``metadata``) is available before any
    chunk is consumed — exactly what the CSV/npz writers and the
    census/replay consumers need up front.  ``flows`` is the total
    count when the source knows it (persisted formats do; generators
    do not).  Iterating a second time raises: a stream is a tap, not a
    container — use :func:`materialize` (or re-open the source) when
    you need the flows twice.
    """

    def __init__(
        self,
        chunks: Iterable[TraceChunk],
        *,
        horizon: float,
        metadata: Optional[Dict[str, str]] = None,
        flows: Optional[int] = None,
    ):
        if horizon <= 0.0:
            raise ModelError(f"horizon must be > 0, got {horizon!r}")
        self.horizon = float(horizon)
        self.metadata: Dict[str, str] = dict(metadata or {})
        self.flows = None if flows is None else int(flows)
        self._chunks = iter(chunks)
        self._consumed = False

    def __iter__(self) -> Iterator[TraceChunk]:
        if self._consumed:
            raise ModelError(
                "trace stream already consumed; streams are one-shot — "
                "re-open the source or materialize() the trace"
            )
        self._consumed = True
        for chunk in self._chunks:
            if len(chunk):
                yield chunk


def stream_trace(
    trace: FlowTrace, *, chunk_flows: int = DEFAULT_CHUNK_FLOWS
) -> TraceStream:
    """View an in-memory trace as an arrival-sorted chunked stream."""
    if chunk_flows < 1:
        raise ModelError(f"chunk_flows must be >= 1, got {chunk_flows!r}")
    order = np.argsort(trace.arrival, kind="stable")
    arrival = trace.arrival[order]
    departure = trace.departure[order]

    def chunks() -> Iterator[TraceChunk]:
        for lo in range(0, len(arrival), chunk_flows):
            hi = lo + chunk_flows
            yield TraceChunk(arrival[lo:hi], departure[lo:hi])

    return TraceStream(
        chunks(),
        horizon=trace.horizon,
        metadata=dict(trace.metadata),
        flows=len(trace),
    )


def materialize(stream: TraceStream) -> FlowTrace:
    """Collect a stream into an in-memory :class:`FlowTrace`.

    The one operation here that is *not* constant-memory — for tests,
    small traces, and handing a stream to the in-memory pipeline.
    """
    arrivals: List[np.ndarray] = []
    departures: List[np.ndarray] = []
    for chunk in stream:
        arrivals.append(chunk.arrival)
        departures.append(chunk.departure)
    return FlowTrace(
        arrival=np.concatenate(arrivals) if arrivals else np.empty(0),
        departure=np.concatenate(departures) if departures else np.empty(0),
        horizon=stream.horizon,
        metadata=stream.metadata,
    )


# -- streaming census ---------------------------------------------------


def stream_census_at(stream: TraceStream, query_times) -> np.ndarray:
    """Census at arbitrary instants, one pass over the stream.

    The census at ``t`` is ``#{arrival <= t} - #{min(departure,
    horizon) <= t}`` — the same counting the event-sorted
    :func:`~repro.traces.census.census_at` performs, so the integer
    results are byte-identical for any chunking of the same trace.
    Memory is O(chunk + queries).
    """
    q = np.asarray(query_times, dtype=float)
    if np.any(q < 0.0) or np.any(q > stream.horizon):
        raise ModelError("query times must lie in [0, horizon]")
    order = np.argsort(q, kind="stable")
    sq = q[order]
    counts = np.zeros(len(sq), dtype=np.int64)
    for chunk in stream:
        starts = np.sort(chunk.arrival)
        ends = np.sort(np.minimum(chunk.departure, stream.horizon))
        counts += np.searchsorted(starts, sq, side="right")
        counts -= np.searchsorted(ends, sq, side="right")
    out = np.empty(len(sq), dtype=np.int64)
    out[order] = counts
    return out


def stream_census_samples(
    stream: TraceStream,
    n: int,
    *,
    warmup: float = 0.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Streaming twin of :func:`~repro.traces.census.census_samples`.

    Draws the *identical* sample times (same RNG construction, same
    call sequence) and answers them through :func:`stream_census_at`,
    so the result is byte-identical to the in-memory function on the
    same trace, seed and warmup.
    """
    if n < 1:
        raise ModelError(f"need n >= 1 samples, got {n!r}")
    if not 0.0 <= warmup < stream.horizon:
        raise ModelError(f"warmup must be in [0, horizon), got {warmup!r}")
    rng = np.random.default_rng(seed)
    ts = warmup + rng.random(n) * (stream.horizon - warmup)
    return stream_census_at(stream, ts).astype(int)


def stream_mean_census(stream: TraceStream, *, warmup: float = 0.0) -> float:
    """Time-average census over ``[warmup, horizon]``, one pass.

    Little's-law accounting: each flow contributes its overlap with the
    window, summed per chunk.  Agrees with the trajectory-based
    :func:`~repro.traces.census.mean_census` to float round-off (the
    summation order differs).
    """
    if not 0.0 <= warmup < stream.horizon:
        raise ModelError(f"warmup must be in [0, horizon), got {warmup!r}")
    total = 0.0
    for chunk in stream:
        seg_start = np.maximum(chunk.arrival, warmup)
        seg_end = np.minimum(chunk.departure, stream.horizon)
        total += float(np.maximum(0.0, seg_end - seg_start).sum())
    return total / (stream.horizon - warmup)


# -- chunked CSV --------------------------------------------------------


def open_trace_csv(
    path, *, chunk_flows: int = DEFAULT_CHUNK_FLOWS
) -> TraceStream:
    """Stream a commented-header CSV trace in bounded chunks.

    Reads the same format :func:`~repro.traces.format.write_trace`
    produces.  Header lines are parsed eagerly (the stream needs its
    horizon up front); flow rows are parsed lazily, ``chunk_flows`` at
    a time.  Malformed rows raise :class:`~repro.errors.ModelError`
    naming the file and line.
    """
    if chunk_flows < 1:
        raise ModelError(f"chunk_flows must be >= 1, got {chunk_flows!r}")
    path = pathlib.Path(path)
    horizon: Optional[float] = None
    metadata: Dict[str, str] = {}
    data_start = 0
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            if text.startswith("#"):
                body = text.lstrip("#").strip()
                if "=" in body:
                    key, _, value = body.partition("=")
                    if key.strip() == "horizon":
                        try:
                            horizon = float(value)
                        except ValueError:
                            raise ModelError(
                                f"trace file {path} line {line_no}: "
                                f"bad horizon {value!r}"
                            ) from None
                    else:
                        metadata[key.strip()] = value.strip()
                continue
            data_start = line_no
            break
    if horizon is None:
        raise ModelError(f"trace file {path} has no '# horizon=' header")

    def chunks() -> Iterator[TraceChunk]:
        arrivals: List[float] = []
        departures: List[float] = []
        with path.open() as handle:
            reader = csv.reader(handle)
            for line_no, row in enumerate(reader, start=1):
                if line_no < data_start or not row:
                    continue
                if row[0].startswith("#") or row[0] == "arrival":
                    continue
                a, d = _parse_flow_row(row, line_no, path)
                arrivals.append(a)
                departures.append(d)
                if len(arrivals) >= chunk_flows:
                    yield TraceChunk(np.asarray(arrivals), np.asarray(departures))
                    arrivals, departures = [], []
        if arrivals:
            yield TraceChunk(np.asarray(arrivals), np.asarray(departures))

    return TraceStream(chunks(), horizon=horizon, metadata=metadata)


def write_trace_csv(stream: TraceStream, path) -> pathlib.Path:
    """Write a stream as commented-header CSV, chunk by chunk.

    Times are written with :func:`repr` (shortest round-trip form), so
    a CSV round-trip preserves every flow bit-for-bit.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    flows = 0
    with path.open("w", newline="") as handle:
        handle.write(f"# horizon={_format_time(stream.horizon)}\n")
        for key, value in sorted(stream.metadata.items()):
            handle.write(f"# {key}={value}\n")
        writer = csv.writer(handle)
        writer.writerow(["arrival", "departure"])
        for chunk in stream:
            for a, d in zip(chunk.arrival, chunk.departure):
                writer.writerow([_format_time(a), _format_time(d)])
            flows += len(chunk)
    if obs.enabled():
        obs.counter("traces.write.flows").inc(flows)
    return path


# -- npz segment directories --------------------------------------------


def write_trace_npz(stream: TraceStream, path) -> pathlib.Path:
    """Persist a stream as an npz segment directory.

    Layout: ``path/index.json`` (schema, horizon, metadata, per-segment
    manifest) plus ``path/segment-NNNNN.npz`` files holding one chunk's
    float64 arrays each.  Writing consumes the stream one chunk at a
    time; the index lands last (atomically), so a crash can never leave
    a directory that parses as complete.
    """
    path = pathlib.Path(path)
    path.mkdir(parents=True, exist_ok=True)
    segments: List[Dict[str, object]] = []
    total = 0
    for i, chunk in enumerate(stream):
        name = f"segment-{i:05d}.npz"
        np.savez_compressed(
            path / name,
            arrival=chunk.arrival,
            departure=chunk.departure,
        )
        segments.append({"file": name, "flows": len(chunk)})
        total += len(chunk)
    index = {
        "schema": SEGMENT_SCHEMA,
        "horizon": stream.horizon,
        "metadata": stream.metadata,
        "flows": total,
        "segments": segments,
    }
    atomic_write_text(path / SEGMENT_INDEX, json.dumps(index, indent=2) + "\n")
    if obs.enabled():
        obs.counter("traces.write.flows").inc(total)
        obs.counter("traces.write.segments").inc(len(segments))
    return path


def open_trace_npz(path) -> TraceStream:
    """Stream an npz segment directory, one segment in memory at a time."""
    path = pathlib.Path(path)
    index_path = path / SEGMENT_INDEX
    if not index_path.is_file():
        raise ModelError(f"{path} is not a trace segment directory (no index.json)")
    try:
        index = json.loads(index_path.read_text())
    except ValueError as exc:
        raise ModelError(f"corrupt trace index {index_path}: {exc}") from None
    if index.get("schema") != SEGMENT_SCHEMA:
        raise ModelError(
            f"{index_path}: schema {index.get('schema')!r} is not "
            f"{SEGMENT_SCHEMA!r}"
        )

    def chunks() -> Iterator[TraceChunk]:
        for seg in index["segments"]:
            seg_path = path / seg["file"]
            if not seg_path.is_file():
                raise ModelError(f"trace segment missing: {seg_path}")
            with np.load(seg_path) as data:
                chunk = TraceChunk(data["arrival"], data["departure"])
            if len(chunk) != int(seg["flows"]):
                raise ModelError(
                    f"trace segment {seg_path} holds {len(chunk)} flows, "
                    f"index says {seg['flows']}"
                )
            yield chunk

    return TraceStream(
        chunks(),
        horizon=float(index["horizon"]),
        metadata={str(k): str(v) for k, v in index.get("metadata", {}).items()},
        flows=int(index["flows"]),
    )


def open_trace(path, *, chunk_flows: int = DEFAULT_CHUNK_FLOWS) -> TraceStream:
    """Open either persisted form by shape: directory -> npz, file -> CSV."""
    p = pathlib.Path(path)
    if p.is_dir():
        return open_trace_npz(p)
    return open_trace_csv(p, chunk_flows=chunk_flows)
