"""Flow traces: record, persist, stream, and analyse what operators observe.

- :class:`FlowTrace` — per-flow arrival/departure records, extractable
  from any simulation run; CSV persistence via :func:`write_trace` /
  :func:`read_trace`.
- census derivation — exact trajectory, point queries, time-uniform
  samples (:mod:`repro.traces.census`).
- :func:`analyze_trace` — trace -> census identification ->
  architecture verdict, the full paper as a pipeline.
- streaming (:mod:`repro.traces.stream`) — :class:`TraceStream` chunked
  ingestion at constant memory: chunked CSV/npz persistence, streaming
  census queries, :func:`materialize`.
- workloads (:mod:`repro.traces.workloads`) — seeded synthetic
  generators (Poisson, diurnal, bursty, batch) emitting streams.
- replay (:mod:`repro.traces.replay`) — :func:`replay_stream` /
  :func:`replay_trace` drive CRN-paired best-effort vs reservation
  estimates (with Welford CIs) from any arrival-sorted stream.
"""

from repro.traces.census import (
    census_at,
    census_samples,
    census_trajectory,
    mean_census,
)
from repro.traces.format import FlowTrace, read_trace, write_trace
from repro.traces.pipeline import analyze_trace
from repro.traces.replay import (
    DEFAULT_WINDOWS,
    ReplayResult,
    TraceOccupancy,
    replay_stream,
    replay_trace,
    sweep_occupancy,
)
from repro.traces.stream import (
    DEFAULT_CHUNK_FLOWS,
    SEGMENT_SCHEMA,
    TraceChunk,
    TraceStream,
    materialize,
    open_trace,
    open_trace_csv,
    open_trace_npz,
    stream_census_at,
    stream_census_samples,
    stream_mean_census,
    stream_trace,
    write_trace_csv,
    write_trace_npz,
)
from repro.traces.workloads import (
    WORKLOADS,
    BatchWorkload,
    BurstyWorkload,
    DiurnalWorkload,
    PoissonWorkload,
    Workload,
    default_workload,
)

__all__ = [
    "DEFAULT_CHUNK_FLOWS",
    "DEFAULT_WINDOWS",
    "SEGMENT_SCHEMA",
    "WORKLOADS",
    "BatchWorkload",
    "BurstyWorkload",
    "DiurnalWorkload",
    "FlowTrace",
    "PoissonWorkload",
    "ReplayResult",
    "TraceChunk",
    "TraceOccupancy",
    "TraceStream",
    "Workload",
    "analyze_trace",
    "census_at",
    "census_samples",
    "census_trajectory",
    "default_workload",
    "materialize",
    "mean_census",
    "open_trace",
    "open_trace_csv",
    "open_trace_npz",
    "read_trace",
    "replay_stream",
    "replay_trace",
    "stream_census_at",
    "stream_census_samples",
    "stream_mean_census",
    "stream_trace",
    "sweep_occupancy",
    "write_trace",
    "write_trace_csv",
    "write_trace_npz",
]
