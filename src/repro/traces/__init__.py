"""Flow traces: record, persist, and analyse what operators observe.

- :class:`FlowTrace` — per-flow arrival/departure records, extractable
  from any simulation run; CSV persistence via :func:`write_trace` /
  :func:`read_trace`.
- census derivation — exact trajectory, point queries, time-uniform
  samples (:mod:`repro.traces.census`).
- :func:`analyze_trace` — trace -> census identification ->
  architecture verdict, the full paper as a pipeline.
"""

from repro.traces.census import (
    census_at,
    census_samples,
    census_trajectory,
    mean_census,
)
from repro.traces.format import FlowTrace, read_trace, write_trace
from repro.traces.pipeline import analyze_trace

__all__ = [
    "FlowTrace",
    "analyze_trace",
    "census_at",
    "census_samples",
    "census_trajectory",
    "mean_census",
    "read_trace",
    "write_trace",
]
