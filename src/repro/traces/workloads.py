"""Synthetic workload generators: load shapes the paper never modeled.

The analytic comparison assumes a stationary census; operators see
diurnal cycles, bursts, and correlated arrivals.  Each generator here
emits an arrival-ordered :class:`~repro.traces.stream.TraceStream` of
flows over ``[0, horizon)`` at constant memory (one chunk buffered at
a time), with exponential flow durations of rate ``mu`` throughout so
the *census law* is the only thing that varies between shapes:

- :class:`PoissonWorkload` — homogeneous Poisson arrivals, the M/M/inf
  baseline whose stationary census is exactly the paper's Poisson
  ``P(k)`` with mean ``rate/mu`` (the T1 replay invariant's anchor).
- :class:`DiurnalWorkload` — sinusoidal-rate inhomogeneous Poisson
  (thinned from the peak rate): the day/night cycle.
- :class:`BurstyWorkload` — Markov-modulated on/off arrivals
  (exponential sojourns; Poisson arrivals only while on).
- :class:`BatchWorkload` — correlated batch arrivals: Poisson batch
  epochs with geometrically sized batches arriving simultaneously.

Generation is seeded and deterministic per ``(seed, chunk_flows)``;
``WORKLOADS``/:func:`default_workload` give the CLI, experiments and
golden pins one shared way to name a shape at a target mean rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro import obs
from repro.errors import ModelError
from repro.traces.stream import DEFAULT_CHUNK_FLOWS, TraceChunk, TraceStream


def _require_positive(**values: float) -> None:
    for name, value in values.items():
        if not value > 0.0:
            raise ModelError(f"{name} must be > 0, got {value!r}")


class Workload:
    """Base class: a named arrival process with exponential holding."""

    #: Shape name used in metadata, the CLI and the registry.
    name: str = "workload"

    mu: float = 1.0

    @property
    def mean_rate(self) -> float:
        """Long-run mean arrival rate (for sizing horizons)."""
        raise NotImplementedError

    @property
    def mean_census(self) -> float:
        """Long-run mean census ``mean_rate / mu`` (Little's law)."""
        return self.mean_rate / self.mu

    def metadata(self) -> Dict[str, str]:
        """Header key/values describing the shape (persisted with traces)."""
        return {"workload": self.name, "mu": repr(float(self.mu))}

    def _arrival_chunks(
        self, horizon: float, rng: np.random.Generator, chunk_flows: int
    ) -> Iterator[np.ndarray]:
        """Nondecreasing arrival-time chunks covering ``[0, horizon)``."""
        raise NotImplementedError

    def stream(
        self,
        horizon: float,
        *,
        seed: Optional[int] = None,
        chunk_flows: int = DEFAULT_CHUNK_FLOWS,
    ) -> TraceStream:
        """Generate flows over ``[0, horizon)`` as an arrival-sorted stream."""
        _require_positive(horizon=horizon)
        if chunk_flows < 1:
            raise ModelError(f"chunk_flows must be >= 1, got {chunk_flows!r}")
        rng = np.random.default_rng(seed)
        mu = self.mu

        def chunks() -> Iterator[TraceChunk]:
            generated = 0
            for arrivals in self._arrival_chunks(horizon, rng, chunk_flows):
                if len(arrivals) == 0:
                    continue
                durations = rng.exponential(1.0 / mu, size=len(arrivals))
                generated += len(arrivals)
                yield TraceChunk(arrivals, arrivals + durations)
            if obs.enabled():
                obs.counter("traces.generate.flows").inc(generated)
                obs.counter(f"traces.generate.{self.name}.flows").inc(generated)

        metadata = self.metadata()
        if seed is not None:
            metadata["seed"] = str(int(seed))
        return TraceStream(chunks(), horizon=horizon, metadata=metadata)


@dataclass(frozen=True)
class PoissonWorkload(Workload):
    """Homogeneous Poisson arrivals: the stationary M/M/inf baseline."""

    rate: float
    mu: float = 1.0
    name = "poisson"

    def __post_init__(self):
        _require_positive(rate=self.rate, mu=self.mu)

    @property
    def mean_rate(self) -> float:
        return self.rate

    def metadata(self) -> Dict[str, str]:
        meta = super().metadata()
        meta["rate"] = repr(float(self.rate))
        return meta

    def _arrival_chunks(self, horizon, rng, chunk_flows):
        t = 0.0
        while True:
            gaps = rng.exponential(1.0 / self.rate, size=chunk_flows)
            arrivals = t + np.cumsum(gaps)
            if arrivals[-1] >= horizon:
                yield arrivals[arrivals < horizon]
                return
            t = float(arrivals[-1])
            yield arrivals


@dataclass(frozen=True)
class DiurnalWorkload(Workload):
    """Sinusoidal-rate inhomogeneous Poisson (the day/night cycle).

    Instantaneous rate ``base_rate * (1 + amplitude * sin(2 pi t /
    period))``, realised by thinning a homogeneous process at the peak
    rate — exact for any amplitude in ``[0, 1)``.
    """

    base_rate: float
    amplitude: float = 0.6
    period: float = 100.0
    mu: float = 1.0
    name = "diurnal"

    def __post_init__(self):
        _require_positive(
            base_rate=self.base_rate, period=self.period, mu=self.mu
        )
        if not 0.0 <= self.amplitude < 1.0:
            raise ModelError(
                f"amplitude must be in [0, 1), got {self.amplitude!r}"
            )

    @property
    def mean_rate(self) -> float:
        # the sinusoid averages out over whole periods
        return self.base_rate

    def metadata(self) -> Dict[str, str]:
        meta = super().metadata()
        meta.update(
            base_rate=repr(float(self.base_rate)),
            amplitude=repr(float(self.amplitude)),
            period=repr(float(self.period)),
        )
        return meta

    def _arrival_chunks(self, horizon, rng, chunk_flows):
        peak = self.base_rate * (1.0 + self.amplitude)
        omega = 2.0 * np.pi / self.period
        t = 0.0
        while True:
            gaps = rng.exponential(1.0 / peak, size=chunk_flows)
            candidates = t + np.cumsum(gaps)
            accept = rng.random(chunk_flows) * peak <= self.base_rate * (
                1.0 + self.amplitude * np.sin(omega * candidates)
            )
            if candidates[-1] >= horizon:
                keep = accept & (candidates < horizon)
                yield candidates[keep]
                return
            t = float(candidates[-1])
            yield candidates[accept]


@dataclass(frozen=True)
class BurstyWorkload(Workload):
    """Markov-modulated on/off arrivals (two-state MMPP).

    Exponential on/off sojourns (means ``on_mean`` / ``off_mean``);
    Poisson arrivals at ``on_rate`` while on, silence while off.  Mean
    rate is ``on_rate * on_mean / (on_mean + off_mean)``.
    """

    on_rate: float
    on_mean: float = 10.0
    off_mean: float = 10.0
    mu: float = 1.0
    name = "bursty"

    def __post_init__(self):
        _require_positive(
            on_rate=self.on_rate,
            on_mean=self.on_mean,
            off_mean=self.off_mean,
            mu=self.mu,
        )

    @property
    def mean_rate(self) -> float:
        return self.on_rate * self.on_mean / (self.on_mean + self.off_mean)

    def metadata(self) -> Dict[str, str]:
        meta = super().metadata()
        meta.update(
            on_rate=repr(float(self.on_rate)),
            on_mean=repr(float(self.on_mean)),
            off_mean=repr(float(self.off_mean)),
        )
        return meta

    def _arrival_chunks(self, horizon, rng, chunk_flows):
        t = 0.0
        buffer: List[np.ndarray] = []
        buffered = 0
        while t < horizon:
            on_len = rng.exponential(self.on_mean)
            window = min(on_len, horizon - t)
            count = rng.poisson(self.on_rate * window)
            if count:
                arrivals = t + np.sort(rng.random(count)) * window
                buffer.append(arrivals)
                buffered += count
            t += on_len + rng.exponential(self.off_mean)
            while buffered >= chunk_flows:
                merged = np.concatenate(buffer)
                yield merged[:chunk_flows]
                buffer = [merged[chunk_flows:]]
                buffered = len(buffer[0])
        if buffered:
            yield np.concatenate(buffer)


@dataclass(frozen=True)
class BatchWorkload(Workload):
    """Correlated batch arrivals: geometric batches at Poisson epochs.

    Batch epochs form a Poisson process of rate ``batch_rate``; each
    epoch brings a geometric number of simultaneous flows with mean
    ``mean_batch``.  Mean rate is ``batch_rate * mean_batch``.
    """

    batch_rate: float
    mean_batch: float = 4.0
    mu: float = 1.0
    name = "batch"

    def __post_init__(self):
        _require_positive(batch_rate=self.batch_rate, mu=self.mu)
        if self.mean_batch < 1.0:
            raise ModelError(
                f"mean_batch must be >= 1, got {self.mean_batch!r}"
            )

    @property
    def mean_rate(self) -> float:
        return self.batch_rate * self.mean_batch

    def metadata(self) -> Dict[str, str]:
        meta = super().metadata()
        meta.update(
            batch_rate=repr(float(self.batch_rate)),
            mean_batch=repr(float(self.mean_batch)),
        )
        return meta

    def _arrival_chunks(self, horizon, rng, chunk_flows):
        epochs_per_block = max(1, chunk_flows // max(1, int(self.mean_batch)))
        t = 0.0
        while True:
            gaps = rng.exponential(1.0 / self.batch_rate, size=epochs_per_block)
            epochs = t + np.cumsum(gaps)
            sizes = rng.geometric(1.0 / self.mean_batch, size=epochs_per_block)
            done = epochs[-1] >= horizon
            keep = epochs < horizon
            yield np.repeat(epochs[keep], sizes[keep])
            if done:
                return
            t = float(epochs[-1])


#: Shape-name registry for the CLI, experiments and golden pins.
WORKLOADS = ("poisson", "diurnal", "bursty", "batch")


def default_workload(name: str, rate: float, *, mu: float = 1.0) -> Workload:
    """A canonically parameterised workload at a target mean rate.

    The non-rate shape parameters are fixed by convention here so a
    shape named anywhere (CLI flag, TR experiment, golden pin,
    provenance summary) means exactly one process.
    """
    _require_positive(rate=rate, mu=mu)
    if name == "poisson":
        return PoissonWorkload(rate, mu=mu)
    if name == "diurnal":
        return DiurnalWorkload(rate, amplitude=0.6, period=100.0, mu=mu)
    if name == "bursty":
        # 50% duty cycle: double the on-rate to hit the target mean
        return BurstyWorkload(2.0 * rate, on_mean=10.0, off_mean=10.0, mu=mu)
    if name == "batch":
        return BatchWorkload(rate / 4.0, mean_batch=4.0, mu=mu)
    raise ModelError(
        f"unknown workload {name!r}; known shapes: {', '.join(WORKLOADS)}"
    )
