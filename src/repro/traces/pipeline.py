"""Trace-to-verdict pipeline: the whole book in one function.

``analyze_trace`` takes what an operator has (a flow trace and the
application's utility function) and returns what the paper computes
(the identified census law, the tail check, and the architecture
verdict at the operator's bandwidth price).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ModelError
from repro.inference import Recommendation, recommend_architecture
from repro.traces.census import census_samples
from repro.traces.format import FlowTrace
from repro.utility.base import UtilityFunction


def analyze_trace(
    trace: FlowTrace,
    utility: UtilityFunction,
    *,
    price: float = 0.05,
    samples: int = 4000,
    warmup: Optional[float] = None,
    seed: Optional[int] = 0,
) -> Recommendation:
    """Identify the census behind a trace and recommend an architecture.

    Parameters
    ----------
    trace:
        Observed flow arrivals/departures.
    utility:
        The application utility the network serves.
    price:
        Bandwidth price for the welfare verdict.
    samples:
        Number of time-uniform census samples fed to the fitters.
    warmup:
        Transient to exclude; defaults to 10% of the horizon.
    """
    if len(trace) == 0:
        raise ModelError(
            "cannot analyze a zero-flow trace: the census is identically "
            "zero and no load can be identified"
        )
    if warmup is None:
        warmup = 0.1 * trace.horizon
    if not 0.0 <= warmup < trace.horizon:
        raise ModelError(
            "warmup must be in [0, horizon) so the census can be sampled: "
            f"warmup={warmup!r}, horizon={trace.horizon!r}"
        )
    census = census_samples(trace, samples, warmup=warmup, seed=seed)
    return recommend_architecture(census, utility, price=price)
