"""Flow-trace records: the operator-facing data format.

A *flow trace* is the minimal observable an operator actually has: one
(arrival, departure) pair per flow.  Everything the paper needs — the
census distribution, hence the architecture verdict — derives from it.
This module defines the in-memory record and a plain-CSV on-disk form
(`# key=value` header lines, then `arrival,departure` rows) chosen to
be readable by anything.
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ModelError


def _format_time(value: float) -> str:
    """Shortest decimal string that round-trips the float64 exactly."""
    if np.isinf(value):
        return "inf"
    return repr(float(value))


def _parse_flow_row(
    row: List[str], line_no: int, path
) -> Tuple[float, float]:
    """One CSV data row -> (arrival, departure), with a clear error."""
    if len(row) < 2:
        raise ModelError(
            f"trace file {path} line {line_no}: expected "
            f"'arrival,departure', got {','.join(row)!r}"
        )
    try:
        arrival = float(row[0])
        departure = float(row[1])
    except ValueError:
        raise ModelError(
            f"trace file {path} line {line_no}: non-numeric flow row "
            f"{','.join(row)!r}"
        ) from None
    if not np.isfinite(arrival) or arrival < 0.0 or departure < arrival:
        raise ModelError(
            f"trace file {path} line {line_no}: need 0 <= arrival <= "
            f"departure, got arrival={arrival!r} departure={departure!r}"
        )
    return arrival, departure


@dataclass(frozen=True)
class FlowTrace:
    """Per-flow arrival/departure times over an observation window."""

    arrival: np.ndarray
    departure: np.ndarray
    horizon: float
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        a = np.asarray(self.arrival, dtype=float)
        d = np.asarray(self.departure, dtype=float)
        if len(a) != len(d):
            raise ModelError("arrival and departure arrays must match in length")
        if len(a) and (np.any(a < 0.0) or np.any(d < a)):
            raise ModelError("need 0 <= arrival <= departure per flow")
        if self.horizon <= 0.0:
            raise ModelError(f"horizon must be > 0, got {self.horizon!r}")
        object.__setattr__(self, "arrival", a)
        object.__setattr__(self, "departure", d)

    def __len__(self) -> int:
        return len(self.arrival)

    @property
    def durations(self) -> np.ndarray:
        """Flow lifetimes (clipped at the horizon for open flows)."""
        return np.minimum(self.departure, self.horizon) - self.arrival

    @classmethod
    def from_simulation(cls, result, **metadata) -> "FlowTrace":
        """Extract a trace from a :class:`SimulationResult`.

        Flows still open at the horizon keep ``departure = inf`` (the
        census accounting treats them as present to the end).
        """
        return cls(
            arrival=result.flows.arrival.copy(),
            departure=result.flows.departure.copy(),
            horizon=result.horizon,
            metadata={str(k): str(v) for k, v in metadata.items()},
        )


def write_trace(trace: FlowTrace, path) -> pathlib.Path:
    """Write a trace as commented-header CSV.

    Times are written with :func:`repr` (shortest round-trip form), so
    reading the file back preserves every flow bit-for-bit.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        handle.write(f"# horizon={_format_time(trace.horizon)}\n")
        for key, value in sorted(trace.metadata.items()):
            handle.write(f"# {key}={value}\n")
        writer = csv.writer(handle)
        writer.writerow(["arrival", "departure"])
        for a, d in zip(trace.arrival, trace.departure):
            writer.writerow([_format_time(a), _format_time(d)])
    return path


def read_trace(path) -> FlowTrace:
    """Read a trace written by :func:`write_trace`.

    Malformed rows (too few fields, non-numeric times, negative
    arrivals, ``departure < arrival``) raise
    :class:`~repro.errors.ModelError` naming the file and line.
    """
    path = pathlib.Path(path)
    horizon: Optional[float] = None
    metadata: Dict[str, str] = {}
    arrivals, departures = [], []
    with path.open() as handle:
        reader = csv.reader(handle)
        for line_no, row in enumerate(reader, start=1):
            if not row:
                continue
            if row[0].startswith("#"):
                text = ",".join(row).lstrip("#").strip()
                if "=" in text:
                    key, _, value = text.partition("=")
                    if key.strip() == "horizon":
                        try:
                            horizon = float(value)
                        except ValueError:
                            raise ModelError(
                                f"trace file {path} line {line_no}: "
                                f"bad horizon {value!r}"
                            ) from None
                    else:
                        metadata[key.strip()] = value.strip()
                continue
            if row[0] == "arrival":
                continue
            a, d = _parse_flow_row(row, line_no, path)
            arrivals.append(a)
            departures.append(d)
    if horizon is None:
        raise ModelError(f"trace file {path} has no '# horizon=' header")
    return FlowTrace(
        arrival=np.asarray(arrivals),
        departure=np.asarray(departures),
        horizon=horizon,
        metadata=metadata,
    )
