"""Deriving census statistics from flow traces.

The analytic model consumes a census distribution; an operator records
flow traces.  These helpers bridge them: the exact event-driven census
trajectory, time-weighted census samples, and the empirical mean —
all by sorting arrival/departure events once (O(n log n)).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.traces.format import FlowTrace


def census_trajectory(trace: FlowTrace) -> Tuple[np.ndarray, np.ndarray]:
    """Exact piecewise-constant census of a trace.

    Returns ``(times, counts)``: ``counts[i]`` flows are present on
    ``[times[i], times[i+1])``; the final segment extends to the
    horizon.  Starts at ``times[0] = 0`` with the count of flows that
    arrived at (or before) time zero.
    """
    starts = np.sort(trace.arrival)
    ends = np.sort(np.minimum(trace.departure, trace.horizon))
    times = np.concatenate([starts, ends])
    deltas = np.concatenate([np.ones(len(starts)), -np.ones(len(ends))])
    order = np.argsort(times, kind="stable")
    times = times[order]
    counts = np.cumsum(deltas[order])
    # merge simultaneous events (empty traces have no events to merge)
    if len(times):
        keep = np.append(np.diff(times) > 0.0, True)
        times = times[keep]
        counts = counts[keep]
    if len(times) == 0 or times[0] > 0.0:
        times = np.concatenate([[0.0], times])
        counts = np.concatenate([[0.0], counts])
    return times, counts


def census_at(trace: FlowTrace, query_times) -> np.ndarray:
    """Census at arbitrary instants."""
    times, counts = census_trajectory(trace)
    q = np.asarray(query_times, dtype=float)
    if np.any(q < 0.0) or np.any(q > trace.horizon):
        raise ModelError("query times must lie in [0, horizon]")
    idx = np.clip(np.searchsorted(times, q, side="right") - 1, 0, len(counts) - 1)
    return counts[idx]


def census_samples(
    trace: FlowTrace,
    n: int,
    *,
    warmup: float = 0.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """``n`` time-uniform census samples (the inference module's food).

    Uniform time sampling makes the samples distributed as the
    time-stationary census — exactly the ``P(k)`` of the paper's
    variable-load model.
    """
    if n < 1:
        raise ModelError(f"need n >= 1 samples, got {n!r}")
    if not 0.0 <= warmup < trace.horizon:
        raise ModelError(f"warmup must be in [0, horizon), got {warmup!r}")
    rng = np.random.default_rng(seed)
    ts = warmup + rng.random(n) * (trace.horizon - warmup)
    return census_at(trace, ts).astype(int)


def mean_census(trace: FlowTrace, *, warmup: float = 0.0) -> float:
    """Time-average census over ``[warmup, horizon]``.

    Equals total flow-seconds over window length (Little's-law view).
    """
    if not 0.0 <= warmup < trace.horizon:
        raise ModelError(f"warmup must be in [0, horizon), got {warmup!r}")
    times, counts = census_trajectory(trace)
    ends = np.append(times[1:], trace.horizon)
    seg_start = np.maximum(times, warmup)
    seg_end = np.minimum(ends, trace.horizon)
    weights = np.maximum(0.0, seg_end - seg_start)
    window = trace.horizon - warmup
    return float(np.dot(counts, weights) / window)
