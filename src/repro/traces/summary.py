"""Canonical seeded replay summaries: one spec, one number set.

The golden pins (``tests/golden/figures.json`` section ``traces``) and
the provenance snapshots (``repro provenance freeze``) both need the
same thing: a *fully specified* replay — workload shape, rate, horizon,
seed, chunking, capacity, windows, warmup — reduced to its headline
numbers, reproducibly.  :func:`replay_summary` is that reduction; the
spec travels with the numbers so any later reader can recompute them
without out-of-band knowledge.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import ModelError
from repro.traces.replay import replay_stream
from repro.traces.workloads import default_workload
from repro.utility import AdaptiveUtility
from repro.utility.base import UtilityFunction

#: The keys a replay spec must carry (everything else is rejected so a
#: typo'd key cannot silently change nothing).
SPEC_KEYS = (
    "workload",
    "rate",
    "horizon",
    "seed",
    "chunk_flows",
    "capacity",
    "windows",
    "warmup",
)

#: The seeded replays frozen by default: the two load shapes the paper
#: never modeled, at a mildly tight capacity so the gap is nonzero.
DEFAULT_REPLAY_SPECS = (
    {
        "workload": "diurnal",
        "rate": 40.0,
        "horizon": 240.0,
        "seed": 2025,
        "chunk_flows": 4096,
        "capacity": 44.0,
        "windows": 10,
        "warmup": 40.0,
    },
    {
        "workload": "bursty",
        "rate": 40.0,
        "horizon": 240.0,
        "seed": 2025,
        "chunk_flows": 4096,
        "capacity": 44.0,
        "windows": 10,
        "warmup": 40.0,
    },
)


def replay_summary(
    spec: Mapping[str, object],
    *,
    utility: Optional[UtilityFunction] = None,
) -> Dict[str, object]:
    """Run one spec'd seeded replay and return spec + headline numbers.

    The generation is deterministic in ``(seed, chunk_flows)`` and the
    sweep is chunking-invariant, so the returned floats are stable
    across runs and machines with the same numpy.
    """
    unknown = set(spec) - set(SPEC_KEYS)
    missing = set(SPEC_KEYS) - set(spec)
    if unknown or missing:
        raise ModelError(
            f"bad replay spec: unknown keys {sorted(unknown)!r}, "
            f"missing keys {sorted(missing)!r}"
        )
    if utility is None:
        utility = AdaptiveUtility()
    workload = default_workload(str(spec["workload"]), float(spec["rate"]))
    stream = workload.stream(
        float(spec["horizon"]),
        seed=int(spec["seed"]),
        chunk_flows=int(spec["chunk_flows"]),
    )
    result = replay_stream(
        stream,
        utility,
        float(spec["capacity"]),
        windows=int(spec["windows"]),
        warmup=float(spec["warmup"]),
    )
    out: Dict[str, object] = {key: spec[key] for key in SPEC_KEYS}
    out.update(result.summary())
    return out
