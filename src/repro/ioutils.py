"""Crash-safe file writing shared by exporters, reports and the runner.

Every artifact this package writes (CSV series, gnuplot scripts, trace
JSON, profile reports, result-cache entries) goes through
:func:`atomic_write_text`: the content lands in a uniquely named
temporary file *in the destination directory* and is moved into place
with :func:`os.replace`.  A crash — including SIGKILL of a runner
worker — can therefore never leave a truncated artifact under the
final name; at worst an orphaned ``*.tmp-*`` file remains, which
:func:`sweep_tmp_files` removes.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import List, Union

PathLike = Union[str, os.PathLike]

#: Marker embedded in every temporary file name (and matched by
#: :func:`sweep_tmp_files`).
TMP_MARKER = ".tmp-"


def atomic_write_text(
    path: PathLike,
    text: str,
    *,
    encoding: str = "utf-8",
    newline: str = None,
) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically; return the final path.

    The temporary file lives in ``path``'s directory so the final
    :func:`os.replace` stays on one filesystem (rename atomicity).
    Parent directories are created as needed.  On any failure the
    temporary file is removed and the final path is untouched.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + TMP_MARKER
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding, newline=newline) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def sweep_tmp_files(directory: PathLike) -> List[pathlib.Path]:
    """Remove orphaned ``*.tmp-*`` files under ``directory`` (recursive).

    Interrupted :func:`atomic_write_text` calls from a killed process
    leave their temporary file behind; callers that own a directory
    (e.g. the runner's result cache) sweep it before writing.  Returns
    the paths removed.  Missing directories are a no-op.
    """
    directory = pathlib.Path(directory)
    removed: List[pathlib.Path] = []
    if not directory.is_dir():
        return removed
    for stray in directory.rglob(f"*{TMP_MARKER}*"):
        if stray.is_file():
            try:
                stray.unlink()
            except OSError:
                continue
            removed.append(stray)
    return removed
