"""The paper's comparison on a network: Monte Carlo over census vectors.

Per draw, each route's flow count comes from its own load distribution
(independent classes, the network analogue of the paper's static
census).  Best-effort runs max-min fair sharing over all offered
flows; the reservation architecture solves the admission ILP, then
max-min shares capacity among the *admitted* flows (every admitted
flow is therefore guaranteed at least its unit reservation).

All estimates use common random numbers: one census table is drawn up
front and reused across architectures and capacity scalings, so the
bandwidth-gap bisection compares like with like and Monte Carlo noise
largely cancels out of the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.network.admission import admit_flows, greedy_admit_flows
from repro.network.fairness import max_min_allocation
from repro.network.topology import NetworkTopology
from repro.numerics.solvers import invert_monotone


@dataclass(frozen=True)
class NetworkEstimate:
    """Monte Carlo estimate of one architecture's performance."""

    total_utility: float
    per_route: Dict[str, float]
    normalised: float


class NetworkComparison:
    """Best-effort vs reservations over a multi-link topology.

    Parameters
    ----------
    topology:
        Links, routes, loads and utilities.
    draws:
        Monte Carlo sample size (census vectors).
    seed:
        RNG seed for the census table.
    admission:
        ``"ilp"`` (optimal, default) or ``"greedy"`` (baseline).
    """

    def __init__(
        self,
        topology: NetworkTopology,
        *,
        draws: int = 400,
        seed: Optional[int] = 0,
        admission: str = "ilp",
    ):
        if draws < 1:
            raise ModelError(f"draws must be >= 1, got {draws!r}")
        if admission not in {"ilp", "greedy"}:
            raise ModelError(f"admission must be 'ilp' or 'greedy', got {admission!r}")
        self._topology = topology
        self._draws = int(draws)
        self._admission = admission
        rng = np.random.default_rng(seed)
        # common-random-numbers census table: route -> draws vector
        self._census = {
            name: route.load.sample(rng, self._draws)
            for name, route in topology.routes.items()
        }
        self._mean_total = sum(
            route.load.mean for route in topology.routes.values()
        )

    @property
    def topology(self) -> NetworkTopology:
        """The network under comparison."""
        return self._topology

    @property
    def draws(self) -> int:
        """Monte Carlo sample size."""
        return self._draws

    def _admit(self, counts: Dict[str, int], topology: NetworkTopology):
        if self._admission == "ilp":
            return admit_flows(counts, topology)
        return greedy_admit_flows(counts, topology)

    def _estimate(
        self, *, reserve: bool, scale: float = 1.0
    ) -> NetworkEstimate:
        topology = self._topology if scale == 1.0 else self._topology.scaled(scale)
        routes = topology.routes
        totals = {name: 0.0 for name in topology.route_names}
        for i in range(self._draws):
            counts = {name: int(self._census[name][i]) for name in routes}
            if reserve:
                transmitting = self._admit(counts, topology)
            else:
                transmitting = counts
            shares = max_min_allocation(transmitting, topology)
            for name, route in routes.items():
                n = transmitting.get(name, 0)
                if n > 0:
                    totals[name] += n * route.utility.value(shares[name])
        per_route = {name: value / self._draws for name, value in totals.items()}
        total = sum(per_route.values())
        return NetworkEstimate(
            total_utility=total,
            per_route=per_route,
            normalised=total / self._mean_total,
        )

    def best_effort(self, *, scale: float = 1.0) -> NetworkEstimate:
        """Max-min fair sharing over every offered flow."""
        return self._estimate(reserve=False, scale=scale)

    def reservation(self, *, scale: float = 1.0) -> NetworkEstimate:
        """Admission ILP + max-min sharing among admitted flows."""
        return self._estimate(reserve=True, scale=scale)

    def performance_gap(self) -> float:
        """Normalised ``R - B`` at the base capacities."""
        return self.reservation().normalised - self.best_effort().normalised

    def bandwidth_gap_factor(self, *, upper_limit: float = 64.0) -> float:
        """Uniform capacity scaling ``s`` with ``B(s*C) = R(C)``.

        The network analogue of the paper's ``Delta(C)``: how much every
        link must be over-built for best-effort to match reservations.
        Returns 1.0 when the architectures already tie.
        """
        target = self.reservation().normalised
        base = self.best_effort().normalised
        if target - base <= 1e-9:
            return 1.0
        return invert_monotone(
            lambda s: self.best_effort(scale=s).normalised,
            target,
            1.0,
            1.5,
            increasing=True,
            upper_limit=upper_limit,
            label="network bandwidth-gap factor",
            clip="hi",
        )

    def admission_optimality_gap(self) -> float:
        """Utility difference between ILP and greedy admission.

        A built-in ablation: how much the count-optimal network
        admission controller changes delivered utility versus a naive
        shortest-route-first one.  Note the ILP maximises *admitted
        flows*, not utility, so the gap is usually small and can even
        be slightly negative when greedy strands capacity that then
        buys the admitted flows fatter shares.  Large positive values
        appear when greedy's ordering blocks long routes entirely.
        """
        if self._admission != "ilp":
            raise ModelError("construct the comparison with admission='ilp' first")
        ilp = self.reservation().normalised
        greedy = NetworkComparison.__new__(NetworkComparison)
        greedy.__dict__.update(self.__dict__)
        greedy._admission = "greedy"
        return ilp - greedy.reservation().normalised
