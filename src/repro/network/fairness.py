"""Max-min fair bandwidth allocation (progressive filling).

The single-link model splits capacity equally; its network analogue is
max-min fairness, the allocation TCP-style congestion control
approximates and the fairness literature treats as the best-effort
ideal.  Progressive filling computes it exactly: raise every flow's
share uniformly until some link saturates, freeze the flows through
it, recurse on the rest.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

from repro.errors import ModelError
from repro.network.topology import NetworkTopology


def max_min_allocation(
    counts: Mapping[str, int], topology: NetworkTopology
) -> Dict[str, float]:
    """Per-flow max-min fair shares given per-route flow counts.

    Parameters
    ----------
    counts:
        Route name -> number of active flows (>= 0).  Routes absent
        from the mapping count as zero.

    Returns
    -------
    dict
        Route name -> bandwidth per flow on that route (0.0 for routes
        with no flows).  With heterogeneous demands this is *weighted*
        max-min: per-flow bandwidth is ``demand * level`` with a common
        level raised until each route hits a bottleneck.
    """
    for name, k in counts.items():
        if name not in topology.routes:
            raise ModelError(f"unknown route {name!r} in counts")
        if k < 0 or k != int(k):
            raise ModelError(f"flow count for {name!r} must be a nonneg integer")

    routes = topology.routes
    shares: Dict[str, float] = {name: 0.0 for name in topology.route_names}
    active = {name for name in topology.route_names if counts.get(name, 0) > 0}
    remaining = topology.capacities

    while active:
        # bottleneck: the link whose remaining capacity per unit of
        # active *demand* is smallest (weighted max-min: each flow's
        # bandwidth is its demand times the common level)
        bottleneck = None
        level = math.inf
        for link, capacity in remaining.items():
            demand = sum(
                counts.get(name, 0) * routes[name].demand
                for name in active
                if link in routes[name].links
            )
            if demand > 0:
                candidate = capacity / demand
                if candidate < level:
                    level = candidate
                    bottleneck = link
        if bottleneck is None:
            # no active route touches a remaining link (cannot happen
            # with validated topologies, but fail loudly if it does)
            raise ModelError("max-min filling found active flows on no link")

        frozen = {
            name for name in active if bottleneck in routes[name].links
        }
        for name in frozen:
            shares[name] = routes[name].demand * level
        # charge the frozen flows against every link they traverse
        for link in list(remaining):
            usage = sum(
                counts.get(name, 0) * shares[name]
                for name in frozen
                if link in routes[name].links
            )
            remaining[link] = max(0.0, remaining[link] - usage)
        remaining.pop(bottleneck, None)
        active -= frozen
    return shares


def allocation_is_feasible(
    counts: Mapping[str, int],
    shares: Mapping[str, float],
    topology: NetworkTopology,
    *,
    tol: float = 1e-9,
) -> bool:
    """Check that per-flow shares respect every link capacity."""
    for link, capacity in topology.capacities.items():
        usage = sum(
            counts.get(name, 0) * shares.get(name, 0.0)
            for name in topology.routes_through(link)
        )
        if usage > capacity * (1.0 + tol) + tol:
            return False
    return True
