"""Multi-link topologies: the paper's single link, generalised.

The paper analyses one bottleneck link; real questions about
reservation protocols (RSVP et al.) are network-wide.  A
:class:`NetworkTopology` is a set of capacitated links plus a set of
*routes* — fixed link sequences flows travel — each carrying its own
offered-load distribution and application utility.  The network models
in :mod:`repro.network.model` then replay the paper's comparison with
max-min fair sharing in place of the single link's equal split, and a
network-wide admission problem in place of the scalar ``k_max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.loads.base import LoadDistribution
from repro.utility.base import UtilityFunction


@dataclass(frozen=True)
class Route:
    """A fixed path of links carrying one traffic class.

    ``demand`` is the per-flow bandwidth appetite (Section 5's
    heterogeneous *sizes*): a demand-2 flow reserves 2 units per link
    under admission control and receives twice the weighted max-min
    level under best effort.  Pair it with
    :class:`~repro.extensions.heterogeneous.ScaledUtility` so the
    utility is judged at the right satiation scale.
    """

    name: str
    links: Tuple[str, ...]
    load: LoadDistribution
    utility: UtilityFunction
    demand: float = 1.0

    def __post_init__(self):
        if not self.links:
            raise ModelError(f"route {self.name!r} must traverse at least one link")
        if len(set(self.links)) != len(self.links):
            raise ModelError(f"route {self.name!r} traverses a link twice")
        if self.demand <= 0.0:
            raise ModelError(
                f"route {self.name!r} demand must be > 0, got {self.demand!r}"
            )


class NetworkTopology:
    """Capacitated links plus the routes that cross them.

    Parameters
    ----------
    capacities:
        Mapping of link name to capacity (> 0).
    routes:
        The traffic classes; every link a route names must exist.
    """

    def __init__(self, capacities: Mapping[str, float], routes: Sequence[Route]):
        if not capacities:
            raise ModelError("topology needs at least one link")
        for link, capacity in capacities.items():
            if capacity <= 0.0:
                raise ModelError(f"link {link!r} capacity must be > 0, got {capacity!r}")
        if not routes:
            raise ModelError("topology needs at least one route")
        names = [route.name for route in routes]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate route names: {names!r}")
        for route in routes:
            missing = [ln for ln in route.links if ln not in capacities]
            if missing:
                raise ModelError(
                    f"route {route.name!r} names unknown links {missing!r}"
                )
        self._capacities = dict(capacities)
        self._routes = {route.name: route for route in routes}

    @property
    def capacities(self) -> Dict[str, float]:
        """Link name -> capacity."""
        return dict(self._capacities)

    @property
    def routes(self) -> Dict[str, Route]:
        """Route name -> route."""
        return dict(self._routes)

    @property
    def link_names(self) -> Tuple[str, ...]:
        """Stable ordering of link names."""
        return tuple(self._capacities)

    @property
    def route_names(self) -> Tuple[str, ...]:
        """Stable ordering of route names."""
        return tuple(self._routes)

    def routes_through(self, link: str) -> Tuple[str, ...]:
        """Route names traversing ``link``."""
        if link not in self._capacities:
            raise ModelError(f"unknown link {link!r}")
        return tuple(
            name for name, route in self._routes.items() if link in route.links
        )

    def scaled(self, factor: float) -> "NetworkTopology":
        """Uniformly scale every link capacity (for bandwidth gaps)."""
        if factor <= 0.0:
            raise ModelError(f"scale factor must be > 0, got {factor!r}")
        return NetworkTopology(
            {link: factor * cap for link, cap in self._capacities.items()},
            tuple(self._routes.values()),
        )

    @classmethod
    def from_graph(
        cls,
        graph,
        paths: Mapping[str, Sequence],
        loads: Mapping[str, LoadDistribution],
        utilities: Mapping[str, UtilityFunction],
        *,
        capacity_attr: str = "capacity",
        demands: Optional[Mapping[str, float]] = None,
    ) -> "NetworkTopology":
        """Build from a networkx graph and node paths.

        ``paths`` maps route names to node sequences in ``graph``; each
        consecutive node pair must be an edge carrying
        ``capacity_attr``.  Link names are ``"u-v"`` with endpoints in
        sorted order (undirected semantics).
        """
        capacities: Dict[str, float] = {}
        routes = []
        for name, path in paths.items():
            if len(path) < 2:
                raise ModelError(f"path for route {name!r} needs >= 2 nodes")
            links = []
            for u, v in zip(path[:-1], path[1:]):
                if not graph.has_edge(u, v):
                    raise ModelError(f"route {name!r} uses missing edge {(u, v)!r}")
                data = graph.get_edge_data(u, v)
                if capacity_attr not in data:
                    raise ModelError(
                        f"edge {(u, v)!r} lacks the {capacity_attr!r} attribute"
                    )
                link = "-".join(str(x) for x in sorted((u, v), key=str))
                capacities[link] = float(data[capacity_attr])
                links.append(link)
            routes.append(
                Route(
                    name=name,
                    links=tuple(links),
                    load=loads[name],
                    utility=utilities[name],
                    demand=(demands or {}).get(name, 1.0),
                )
            )
        return cls(capacities, routes)
