"""Multi-link generalisation of the paper's single-link comparison.

- :class:`NetworkTopology` / :class:`Route` — capacitated links and the
  traffic classes crossing them (buildable from a networkx graph).
- :func:`max_min_allocation` — progressive-filling max-min fairness,
  the network analogue of the single link's equal split.
- :func:`admit_flows` — network-wide admission as an exact integer
  program (unit reservations per flow); :func:`greedy_admit_flows` as
  the naive baseline.
- :class:`NetworkComparison` — Monte Carlo best-effort vs reservations
  over census vectors, with a uniform-overbuild bandwidth-gap factor.
"""

from repro.network.admission import admit_flows, greedy_admit_flows
from repro.network.fairness import allocation_is_feasible, max_min_allocation
from repro.network.model import NetworkComparison, NetworkEstimate
from repro.network.topology import NetworkTopology, Route

__all__ = [
    "NetworkComparison",
    "NetworkEstimate",
    "NetworkTopology",
    "Route",
    "admit_flows",
    "allocation_is_feasible",
    "greedy_admit_flows",
    "max_min_allocation",
]
