"""Network-wide admission control as an integer program.

The single-link reservation architecture admits ``k_max(C) = C`` unit
flows; its network analogue must pick, per census vector, how many
flows to admit on each route so that every link honours its
reservations:

    maximize    sum_r  w_r n_r
    subject to  sum_{r: l in r} d_r n_r <= C_l   for every link l
                0 <= n_r <= k_r, integer         for every route r

with per-flow reservations of the route's ``demand`` ``d_r`` and
weights ``w_r`` defaulting to 1 (utilitarian: maximise admitted
flows).  Solved exactly with ``scipy.optimize.milp``.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

import numpy as np
from scipy import optimize

from repro.errors import ModelError
from repro.network.topology import NetworkTopology


def admit_flows(
    counts: Mapping[str, int],
    topology: NetworkTopology,
    *,
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, int]:
    """Optimal admitted counts per route for one census vector.

    Returns route name -> admitted flows (integer, bounded by the
    offered count and every traversed link's capacity).
    """
    route_names = topology.route_names
    offered = np.array(
        [int(counts.get(name, 0)) for name in route_names], dtype=float
    )
    if np.any(offered < 0):
        raise ModelError("offered flow counts must be nonnegative")
    if offered.sum() == 0:
        return {name: 0 for name in route_names}

    weight_vec = np.ones(len(route_names))
    if weights is not None:
        weight_vec = np.array([float(weights.get(name, 1.0)) for name in route_names])
        if np.any(weight_vec < 0.0):
            raise ModelError("admission weights must be nonnegative")

    link_names = topology.link_names
    matrix = np.zeros((len(link_names), len(route_names)))
    for i, link in enumerate(link_names):
        for j, name in enumerate(route_names):
            route = topology.routes[name]
            if link in route.links:
                matrix[i, j] = route.demand
    capacities = np.array([topology.capacities[name] for name in link_names])

    result = optimize.milp(
        c=-weight_vec,  # milp minimises
        constraints=optimize.LinearConstraint(matrix, -np.inf, capacities),
        integrality=np.ones(len(route_names)),
        bounds=optimize.Bounds(np.zeros(len(route_names)), offered),
    )
    if not result.success:  # pragma: no cover - infeasibility is impossible here
        raise ModelError(f"admission ILP failed: {result.message}")
    admitted = np.round(result.x).astype(int)
    return {name: int(n) for name, n in zip(route_names, admitted)}


def greedy_admit_flows(
    counts: Mapping[str, int], topology: NetworkTopology
) -> Dict[str, int]:
    """Shortest-route-first greedy admission (baseline for the ILP).

    Admits routes in increasing hop count, each up to the tightest
    remaining link.  Fast and simple, but can strand capacity that the
    ILP would use — the gap between the two is itself a measure of how
    much *optimal* admission control buys over a naive controller.
    """
    remaining = topology.capacities
    admitted: Dict[str, int] = {}
    order = sorted(
        topology.route_names,
        key=lambda name: (len(topology.routes[name].links), name),
    )
    for name in order:
        route = topology.routes[name]
        k = int(counts.get(name, 0))
        room = min(
            (remaining[link] for link in route.links),
            default=0.0,
        )
        n = min(k, int(math.floor(room / route.demand + 1e-9)))
        admitted[name] = n
        for link in route.links:
            remaining[link] -= n * route.demand
    return admitted
