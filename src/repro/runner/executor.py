"""Fan experiments out over worker processes, through the result cache.

The flow of :func:`run_many`:

1. Resolve ids against the registry (unknown ids fail fast, before
   any work is spawned).
2. Sweep orphaned temp files, then probe the cache for every id —
   hits are served instantly and never reach a worker.
3. Fan the misses out over a ``concurrent.futures.ProcessPoolExecutor``
   (or run them inline when ``jobs == 1`` / a single miss — same code
   path, no pool overhead).  Each worker computes its experiment,
   writes the cache entry **atomically** itself, and ships back the
   entry plus (when observing) its own metrics snapshot and span
   trees, every span tagged ``worker=<pid>``.
4. Merge worker metrics/spans into the parent's active obs sinks, so
   ``--profile`` renders one aggregate report for the whole run.

Workers are deterministic: the same (experiment id, config, code)
triple always produces a byte-identical cache entry, whichever worker
computes it and however the pool schedules them.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.experiments import registry
from repro.experiments.params import PaperConfig
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.tracing import SpanRecord, Tracer
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache, decode_result

#: Outcome statuses, in the order the text report lists them.
STATUS_CACHED = "cached"
STATUS_COMPUTED = "computed"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class RunOutcome:
    """What happened to one experiment in a batch run."""

    exp_id: str
    status: str
    seconds: float
    worker: Optional[int] = None
    error: Optional[str] = None
    entry: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True unless the experiment raised."""
        return self.status != STATUS_ERROR

    def result(self) -> object:
        """The decoded experiment result (``None`` for errors)."""
        if self.entry is None:
            return None
        return decode_result(self.entry["result_kind"], self.entry["result"])

    def to_dict(self) -> dict:
        """JSON-ready summary row (without the payload)."""
        out: Dict[str, object] = {
            "id": self.exp_id,
            "status": self.status,
            "seconds": self.seconds,
            "ok": self.ok,
        }
        if self.worker is not None:
            out["worker"] = self.worker
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass(frozen=True)
class RunReport:
    """Everything :func:`run_many` did, plus aggregate observability."""

    outcomes: List[RunOutcome]
    jobs: int
    wall_seconds: float
    cache_dir: Optional[str]
    metrics: Optional[dict] = None
    worker_spans: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every experiment succeeded."""
        return all(o.ok for o in self.outcomes)

    def counts(self) -> Dict[str, int]:
        """``{status: how_many}`` over the outcomes."""
        out: Dict[str, int] = {}
        for o in self.outcomes:
            out[o.status] = out.get(o.status, 0) + 1
        return out

    def to_dict(self) -> dict:
        """JSON-ready report (summary rows, not payloads)."""
        out: Dict[str, object] = {
            "schema": "repro.runner.report/v1",
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "counts": self.counts(),
            "experiments": [o.to_dict() for o in self.outcomes],
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out


def _compute_one(
    exp_id: str,
    config: Optional[PaperConfig],
    cache_dir: Optional[str],
) -> dict:
    """Compute one experiment; the unit of work on both code paths.

    Runs in a worker process (via :func:`_worker_main`) or inline in
    the parent when no pool is needed.  Returns a picklable dict; the
    cache entry inside it was already written atomically, so a kill
    between compute and return costs only recomputation, never a
    poisoned cache.
    """
    pid = os.getpid()
    exp = registry.get(exp_id)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    start = time.perf_counter()
    obs.emit("runner.task.start", id=exp_id, worker=pid)
    try:
        with obs.span("experiment", id=exp_id, worker=pid):
            result = exp.run(config)
        if cache is not None:
            entry = cache.store(exp, config, result)
        else:
            from repro.runner.cache import build_entry

            entry = build_entry(exp, config, result)
    except Exception as exc:  # a batch survives one broken experiment
        seconds = time.perf_counter() - start
        obs.emit(
            "runner.task.finish",
            id=exp_id,
            worker=pid,
            status=STATUS_ERROR,
            seconds=seconds,
            error=f"{type(exc).__name__}: {exc}",
        )
        return {
            "exp_id": exp_id,
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "seconds": seconds,
            "worker": pid,
            "entry": None,
        }
    seconds = time.perf_counter() - start
    obs.emit(
        "runner.task.finish",
        id=exp_id,
        worker=pid,
        status=STATUS_COMPUTED,
        seconds=seconds,
    )
    return {
        "exp_id": exp_id,
        "ok": True,
        "error": None,
        "seconds": seconds,
        "worker": pid,
        "entry": entry,
    }


def _worker_main(
    exp_id: str,
    config: Optional[PaperConfig],
    cache_dir: Optional[str],
    observe: bool,
) -> dict:
    """Worker-process entry point: isolate obs, compute, snapshot.

    Each worker collects into its **own** registry and tracer (never a
    sink inherited from the parent's fork image), and ships the
    snapshot/spans home in the return value for merging.  When the
    parent has a journal open it shares the path via
    ``REPRO_EVENTS_JSON``; the worker appends to the same file
    (line-atomic), emitting a heartbeat around each task so a hung or
    killed worker is visible in the journal as a heartbeat with no
    matching ``runner.task.finish``.
    """
    if observe:
        obs.enable(MetricsRegistry(), Tracer())
    else:
        obs.disable()
    obs.ensure_journal_from_env()
    obs.emit("runner.worker.heartbeat", worker=os.getpid(), task=exp_id)
    out = _compute_one(exp_id, config, cache_dir)
    if observe:
        out["metrics"] = obs.snapshot()
        out["spans"] = [root.to_dict() for root in obs.trace_roots()]
        obs.disable()
    journal = obs.journal()
    if journal is not None:
        journal.close()
    return out


def _outcome_from_worker(raw: dict) -> RunOutcome:
    return RunOutcome(
        exp_id=raw["exp_id"],
        status=STATUS_COMPUTED if raw["ok"] else STATUS_ERROR,
        seconds=raw["seconds"],
        worker=raw["worker"],
        error=raw["error"],
        entry=raw["entry"],
    )


def run_many(
    ids: Optional[Sequence[str]] = None,
    *,
    config: Optional[PaperConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    force: bool = False,
    observe_workers: Optional[bool] = None,
) -> RunReport:
    """Run a batch of experiments in parallel with result caching.

    Parameters
    ----------
    ids:
        Experiment ids to run (default: every registered experiment,
        in registry order).  Unknown ids raise ``KeyError`` before any
        work starts.
    config:
        The :class:`PaperConfig` evaluated (``None`` = each
        generator's default — hashed as its own cache address).
    jobs:
        Worker processes.  ``1`` runs inline in this process.
    cache_dir / use_cache / force:
        ``use_cache=False`` neither reads nor writes the cache.
        ``force=True`` skips lookups but still writes fresh entries.
    observe_workers:
        Collect per-worker metrics/spans and merge them into the
        parent's obs sinks.  Default: whatever :func:`repro.obs.enabled`
        says in the parent when the run starts.

    Returns a :class:`RunReport`; outcomes are in requested-id order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    if ids is None:
        ids = list(registry.EXPERIMENTS)
    else:
        ids = list(ids)
    experiments = [registry.get(exp_id) for exp_id in ids]  # fail fast

    observe = obs.enabled() if observe_workers is None else bool(observe_workers)
    cache = ResultCache(cache_dir) if (use_cache and cache_dir) else None
    effective_dir = str(cache.root) if cache is not None else None

    wall_start = time.perf_counter()
    obs.emit(
        "runner.batch.start",
        ids=list(ids),
        jobs=jobs,
        cache_dir=effective_dir,
        force=force,
    )
    outcomes: Dict[str, RunOutcome] = {}
    misses: List[str] = []
    if cache is not None:
        cache.sweep()
    for exp in experiments:
        if cache is not None and not force:
            entry = cache.load(exp, config)
            if entry is not None:
                outcomes[exp.exp_id] = RunOutcome(
                    exp_id=exp.exp_id,
                    status=STATUS_CACHED,
                    seconds=0.0,
                    entry=entry,
                )
                continue
        misses.append(exp.exp_id)

    worker_metrics: List[dict] = []
    worker_spans: List[dict] = []

    def collect(raw: dict) -> None:
        outcomes[raw["exp_id"]] = _outcome_from_worker(raw)
        if raw.get("metrics"):
            worker_metrics.append(raw["metrics"])
        worker_spans.extend(raw.get("spans") or [])

    if jobs == 1 or len(misses) <= 1:
        # inline: same unit of work, no pool/pickling overhead; obs
        # collection lands directly in the parent's active sinks
        for exp_id in misses:
            raw = _compute_one(exp_id, config, effective_dir)
            collect(raw)
    else:
        with obs.share_journal_env(), ProcessPoolExecutor(
            max_workers=jobs
        ) as pool:
            futures = {
                pool.submit(
                    _worker_main, exp_id, config, effective_dir, observe
                ): exp_id
                for exp_id in misses
            }
            for future in as_completed(futures):
                collect(future.result())

    # one aggregate report: merge worker registries/spans into the
    # parent's active sinks so --profile covers the whole run
    merged = merge_snapshots(worker_metrics) if worker_metrics else None
    if observe and obs.enabled():
        for snap in worker_metrics:
            obs.registry().absorb_snapshot(snap)
        for span_dict in worker_spans:
            obs.tracer().adopt(SpanRecord.from_dict(span_dict))

    counts: Dict[str, int] = {}
    for o in outcomes.values():
        counts[o.status] = counts.get(o.status, 0) + 1
    obs.emit(
        "runner.batch.finish",
        jobs=jobs,
        wall_seconds=time.perf_counter() - wall_start,
        counts=counts,
    )

    return RunReport(
        outcomes=[outcomes[exp_id] for exp_id in ids],
        jobs=jobs,
        wall_seconds=time.perf_counter() - wall_start,
        cache_dir=effective_dir,
        metrics=merged,
        worker_spans=worker_spans,
    )
