"""Content-addressed on-disk result cache for the experiment runner.

Every cache entry is addressed by a digest of

- the experiment id,
- the qualified name of the experiment's *digest target* (so ids
  registered through argument-rebinding lambdas hash identically to
  direct callables — see :class:`repro.experiments.registry.Experiment`),
- a canonical hash of the :class:`~repro.experiments.params.PaperConfig`,
- a fingerprint of the whole ``repro`` package source.

Any code or config change therefore changes the address, and a stale
entry is simply never looked up again — there is no mutation-based
invalidation to get wrong.

Entries are canonical JSON (sorted keys, fixed separators), so the
same experiment under the same config always produces **byte-identical**
files; determinism is testable with a file hash.  Writes go through
:func:`repro.ioutils.atomic_write_text`, so a worker killed mid-write
can never leave a truncated (poisoned) entry; at worst it leaves an
orphaned ``*.tmp-*`` file which :meth:`ResultCache.sweep` removes.

Cache traffic is observable when :mod:`repro.obs` is enabled:
``runner.cache.hits`` / ``misses`` / ``writes`` / ``corrupt`` count
lookups, and a corrupt entry (unparsable JSON, schema drift, payload
hash mismatch) is deleted and treated as a miss — the runner then
recomputes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.experiments.checkpoints import Checkpoint
from repro.experiments.params import PaperConfig
from repro.experiments.registry import Experiment
from repro.ioutils import atomic_write_text, sweep_tmp_files

#: Entry format version; bumping it invalidates every existing entry.
CACHE_SCHEMA = "repro.runner.cache/v1"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------


def config_digest(config: Optional[PaperConfig]) -> str:
    """Canonical hash of a config (``None`` hashes as the default).

    Dataclass fields are serialised to sorted-key JSON; ``repr``-exact
    float serialisation makes the digest stable across processes.
    """
    payload = None if config is None else dataclasses.asdict(config)
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``.py`` file in the installed ``repro`` package.

    Conservative by design: *any* source change invalidates every
    entry.  Experiments are cheap relative to serving stale numbers.
    """
    import repro

    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def target_name(exp: Experiment) -> str:
    """Qualified name of the callable the entry is digested from."""
    target = exp.digest_target
    return f"{target.__module__}.{target.__qualname__}"


def cache_key(exp: Experiment, config: Optional[PaperConfig]) -> str:
    """The content address of one (experiment, config, code) triple."""
    material = "\n".join(
        [
            CACHE_SCHEMA,
            exp.exp_id,
            target_name(exp),
            config_digest(config),
            code_fingerprint(),
        ]
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# result (de)serialisation
# ----------------------------------------------------------------------


def encode_result(result: object) -> Tuple[str, object]:
    """``(kind, payload)`` — the JSON-ready form of a generator result."""
    from repro.verify.report import VerificationReport

    if isinstance(result, VerificationReport):
        return "verification", result.to_dict()
    if isinstance(result, dict):
        return "series", {k: np.asarray(v).tolist() for k, v in result.items()}
    if (
        isinstance(result, (list, tuple))
        and result
        and isinstance(result[0], Checkpoint)
    ):
        return "checkpoints", [
            {
                "exp_id": row.exp_id,
                "description": row.description,
                "paper_value": row.paper_value,
                "measured": row.measured,
                "matches": row.matches,
            }
            for row in result
        ]
    return "repr", repr(result)


def decode_result(kind: str, payload: object) -> object:
    """Inverse of :func:`encode_result` (``repr`` stays a string)."""
    if kind == "series":
        return {k: np.asarray(v) for k, v in payload.items()}
    if kind == "checkpoints":
        return [
            Checkpoint(
                exp_id=row["exp_id"],
                description=row["description"],
                paper_value=row["paper_value"],
                measured=row["measured"],
                matches=row["matches"],
            )
            for row in payload
        ]
    if kind == "verification":
        from repro.verify.report import VerificationReport

        return VerificationReport.from_dict(payload)
    if kind == "repr":
        return payload
    raise ValueError(f"unknown cached result kind {kind!r}")


def _canonical_json(obj: object) -> str:
    """Deterministic JSON text — the byte-identical entry encoding."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def payload_sha256(payload: object) -> str:
    """Digest of the canonical encoding of a result payload."""
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def build_entry(
    exp: Experiment, config: Optional[PaperConfig], result: object
) -> dict:
    """The full, self-verifying cache entry for one computed result."""
    kind, payload = encode_result(result)
    return {
        "schema": CACHE_SCHEMA,
        "exp_id": exp.exp_id,
        "function": target_name(exp),
        "config_digest": config_digest(config),
        "code_fingerprint": code_fingerprint(),
        "key": cache_key(exp, config),
        "result_kind": kind,
        "result": payload,
        "payload_sha256": payload_sha256(payload),
    }


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------


def _count(name: str) -> None:
    if obs.enabled():
        obs.counter(name).inc()


class ResultCache:
    """Directory of content-addressed experiment results."""

    def __init__(self, root=DEFAULT_CACHE_DIR):
        self.root = pathlib.Path(root)

    def entry_path(
        self, exp: Experiment, config: Optional[PaperConfig]
    ) -> pathlib.Path:
        """Where this (experiment, config, code) triple lives on disk."""
        safe_id = exp.exp_id.replace(".", "_").replace("/", "_")
        return self.root / safe_id / f"{cache_key(exp, config)[:32]}.json"

    def load(
        self, exp: Experiment, config: Optional[PaperConfig]
    ) -> Optional[dict]:
        """The verified entry for this triple, or ``None`` on a miss.

        A present-but-invalid entry (truncated by some non-atomic
        writer, hand-edited, schema drift, payload digest mismatch) is
        counted as ``runner.cache.corrupt``, deleted best-effort, and
        reported as a miss so the caller recomputes.
        """
        path = self.entry_path(exp, config)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            _count("runner.cache.misses")
            obs.emit("cache.miss", id=exp.exp_id)
            return None
        entry = self._validate(exp, config, text)
        if entry is None:
            _count("runner.cache.corrupt")
            _count("runner.cache.misses")
            obs.emit("cache.miss", id=exp.exp_id, corrupt=True)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _count("runner.cache.hits")
        obs.emit("cache.hit", id=exp.exp_id)
        return entry

    def _validate(
        self, exp: Experiment, config: Optional[PaperConfig], text: str
    ) -> Optional[dict]:
        try:
            entry = json.loads(text)
        except ValueError:
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            return None
        if entry.get("key") != cache_key(exp, config):
            return None
        if entry.get("payload_sha256") != payload_sha256(entry.get("result")):
            return None
        return entry

    def store(
        self, exp: Experiment, config: Optional[PaperConfig], result: object
    ) -> dict:
        """Atomically write the entry for ``result``; return it.

        Deterministic: the same (experiment, config, code) triple
        always serialises to byte-identical JSON.
        """
        entry = build_entry(exp, config, result)
        atomic_write_text(self.entry_path(exp, config), _canonical_json(entry))
        _count("runner.cache.writes")
        obs.emit("cache.write", id=exp.exp_id)
        return entry

    def sweep(self) -> List[pathlib.Path]:
        """Remove temp files orphaned by killed writers; return them."""
        return sweep_tmp_files(self.root)
