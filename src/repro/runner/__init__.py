"""``repro.runner`` — parallel, cached batch experiment execution.

The registry maps experiment ids to generators; this package runs any
set of them over a process pool with a content-addressed on-disk
result cache, so re-runs of unchanged experiments return instantly
and byte-identically.  See :mod:`repro.runner.cache` for the cache
contract and :mod:`repro.runner.executor` for the execution model;
the operator-facing story lives in ``docs/RUNNER.md``.

Typical use::

    from repro import runner
    from repro.experiments.params import FAST_CONFIG

    report = runner.run_many(["F1", "T2"], config=FAST_CONFIG, jobs=4)
    for outcome in report.outcomes:
        print(outcome.exp_id, outcome.status, outcome.result())
"""

from repro.runner.cache import (
    CACHE_SCHEMA,
    DEFAULT_CACHE_DIR,
    ResultCache,
    build_entry,
    cache_key,
    code_fingerprint,
    config_digest,
    decode_result,
    encode_result,
)
from repro.runner.executor import (
    STATUS_CACHED,
    STATUS_COMPUTED,
    STATUS_ERROR,
    RunOutcome,
    RunReport,
    run_many,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "RunOutcome",
    "RunReport",
    "STATUS_CACHED",
    "STATUS_COMPUTED",
    "STATUS_ERROR",
    "build_entry",
    "cache_key",
    "code_fingerprint",
    "config_digest",
    "decode_result",
    "encode_result",
    "run_many",
]
