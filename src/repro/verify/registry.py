"""The invariant registry: declare paper properties once, run them anywhere.

An :class:`Invariant` wraps a check function taking a
:class:`~repro.experiments.params.PaperConfig` and returning a
:class:`CheckResult` (residual + detail).  The registry groups
invariants into suites (``fast`` runs on every CI push; ``deep`` adds
the expensive ensemble oracles) and evaluates them into a
:class:`~repro.verify.report.VerificationReport`, metered under
``verify.*`` when :mod:`repro.obs` is enabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.experiments.params import PaperConfig
from repro.verify.report import InvariantOutcome, VerificationReport
from repro.verify.tolerance import TolerancePolicy

#: The five computation engines an invariant can exercise.
ENGINES = ("scalar", "batch", "ensemble", "continuum", "meanfield")

#: Recognised suite names, cheapest first.
SUITES = ("fast", "deep")


@dataclass(frozen=True)
class CheckResult:
    """What a check function returns: its residual plus context.

    ``residual`` follows the normalised semantics of
    :mod:`repro.verify.tolerance` — at or below 1.0 passes.
    """

    residual: float
    detail: str = ""

    def __post_init__(self) -> None:
        # checks often hand back numpy scalars; coerce once here so the
        # JSON report never sees a non-serialisable np.float64/np.bool_
        object.__setattr__(self, "residual", float(self.residual))

    @property
    def passed(self) -> bool:
        return self.residual <= 1.0


@dataclass(frozen=True)
class Invariant:
    """One paper-derived property, declared once.

    Parameters
    ----------
    inv_id:
        Stable identifier used in reports and CI logs (e.g. ``"B1"``).
    description:
        One-line statement of the property.
    paper_ref:
        Where in Breslau & Shenker the property comes from
        (section / theorem / table row).
    engines:
        Which computation engines the check exercises.
    suites:
        Which suites include it (``deep`` implies extra cost).
    tolerance:
        The policy the check applies; recorded in the report so a
        residual is interpretable on its own.
    check:
        ``PaperConfig -> CheckResult``.
    """

    inv_id: str
    description: str
    paper_ref: str
    engines: Tuple[str, ...]
    suites: Tuple[str, ...]
    tolerance: TolerancePolicy
    check: Callable[[PaperConfig], CheckResult]

    def __post_init__(self):
        unknown_engines = set(self.engines) - set(ENGINES)
        if unknown_engines:
            raise ValueError(f"unknown engines {sorted(unknown_engines)!r}")
        unknown_suites = set(self.suites) - set(SUITES)
        if unknown_suites:
            raise ValueError(f"unknown suites {sorted(unknown_suites)!r}")
        if not self.engines:
            raise ValueError("an invariant must name at least one engine")
        if not self.suites:
            raise ValueError("an invariant must belong to at least one suite")

    def evaluate(self, config: PaperConfig) -> InvariantOutcome:
        """Run the check; an exception becomes a failing outcome."""
        start = time.perf_counter()
        try:
            result = self.check(config)
        except Exception as exc:  # noqa: BLE001 - a crash is a failure, not an abort
            elapsed = time.perf_counter() - start
            return InvariantOutcome(
                inv_id=self.inv_id,
                description=self.description,
                paper_ref=self.paper_ref,
                engines=self.engines,
                passed=False,
                residual=float("inf"),
                tolerance=self.tolerance.describe(),
                detail=f"check raised {type(exc).__name__}: {exc}",
                seconds=elapsed,
            )
        elapsed = time.perf_counter() - start
        return InvariantOutcome(
            inv_id=self.inv_id,
            description=self.description,
            paper_ref=self.paper_ref,
            engines=self.engines,
            passed=result.passed,
            residual=result.residual,
            tolerance=self.tolerance.describe(),
            detail=result.detail,
            seconds=elapsed,
        )


class InvariantRegistry:
    """Ordered collection of invariants with suite-scoped evaluation."""

    def __init__(self):
        self._invariants: Dict[str, Invariant] = {}

    def register(self, invariant: Invariant) -> Invariant:
        if invariant.inv_id in self._invariants:
            raise ValueError(f"duplicate invariant id {invariant.inv_id!r}")
        self._invariants[invariant.inv_id] = invariant
        return invariant

    def invariant(
        self,
        inv_id: str,
        description: str,
        *,
        paper_ref: str,
        engines: Sequence[str],
        tolerance: TolerancePolicy,
        suites: Sequence[str] = ("fast", "deep"),
    ) -> Callable[[Callable[[PaperConfig], CheckResult]], Callable]:
        """Decorator form of :meth:`register` for check functions."""

        def wrap(check: Callable[[PaperConfig], CheckResult]):
            self.register(
                Invariant(
                    inv_id=inv_id,
                    description=description,
                    paper_ref=paper_ref,
                    engines=tuple(engines),
                    suites=tuple(suites),
                    tolerance=tolerance,
                    check=check,
                )
            )
            return check

        return wrap

    def __len__(self) -> int:
        return len(self._invariants)

    def __contains__(self, inv_id: str) -> bool:
        return inv_id in self._invariants

    def get(self, inv_id: str) -> Invariant:
        return self._invariants[inv_id]

    def all(self) -> List[Invariant]:
        """Every invariant, in registration order."""
        return list(self._invariants.values())

    def select(
        self,
        suite: str,
        *,
        ids: Optional[Iterable[str]] = None,
    ) -> List[Invariant]:
        """The invariants a run should evaluate.

        ``deep`` is a superset of ``fast``: it runs everything tagged
        for either suite, so one nightly run covers the whole
        catalogue.  ``ids`` optionally restricts the selection (unknown
        ids raise, so typos fail loudly).
        """
        if suite not in SUITES:
            raise ValueError(f"unknown suite {suite!r}; expected one of {SUITES}")
        if suite == "deep":
            chosen = self.all()
        else:
            chosen = [inv for inv in self.all() if suite in inv.suites]
        if ids is not None:
            wanted = list(ids)
            unknown = [i for i in wanted if i not in self._invariants]
            if unknown:
                raise KeyError(f"unknown invariant ids {unknown!r}")
            keep = set(wanted)
            chosen = [inv for inv in chosen if inv.inv_id in keep]
        return chosen

    def run(
        self,
        suite: str,
        config: PaperConfig,
        *,
        ids: Optional[Iterable[str]] = None,
    ) -> VerificationReport:
        """Evaluate a suite into a report, metered under ``verify.*``."""
        chosen = self.select(suite, ids=ids)
        outcomes: List[InvariantOutcome] = []
        start = time.perf_counter()
        obs.emit(
            "verify.suite.start",
            suite=suite,
            invariants=[inv.inv_id for inv in chosen],
        )
        with obs.span("verify.suite", suite=suite):
            for inv in chosen:
                with obs.span("verify.invariant", id=inv.inv_id):
                    outcome = inv.evaluate(config)
                outcomes.append(outcome)
                obs.emit(
                    "verify.invariant",
                    id=inv.inv_id,
                    passed=outcome.passed,
                    residual=outcome.residual,
                    seconds=outcome.seconds,
                )
                if obs.enabled():
                    obs.counter("verify.invariants.evaluated").inc()
                    if not outcome.passed:
                        obs.counter("verify.invariants.failed").inc()
        wall = time.perf_counter() - start
        obs.emit(
            "verify.suite.finish",
            suite=suite,
            passed=all(o.passed for o in outcomes),
            failed=[o.inv_id for o in outcomes if not o.passed],
            wall_seconds=wall,
        )
        return VerificationReport(
            suite=suite, outcomes=tuple(outcomes), wall_seconds=wall
        )


#: The process-wide registry the catalogue in
#: :mod:`repro.verify.invariants` populates on import.
REGISTRY = InvariantRegistry()
