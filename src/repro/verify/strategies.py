"""Hypothesis strategies for the paper's domain.

One place to draw loads, utilities, models, configs and seeds, so every
property test explores the same (valid) parameter space instead of
re-deriving ad-hoc bounds.  Import this module only from tests — it is
the single spot in ``repro.verify`` that requires ``hypothesis``.

Model instances are memoised by their defining parameters: Hypothesis
runs hundreds of examples, and the models carry lazily-grown pmf
caches that are expensive to keep rebuilding.
"""

from __future__ import annotations

from typing import Dict, Tuple

from hypothesis import strategies as st

from repro.caching import BoundedCache
from repro.experiments.params import PaperConfig
from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad
from repro.loads.base import LoadDistribution
from repro.meanfield.scaling import SCALING_REGIMES, PopulationScale
from repro.models import SamplingModel, VariableLoadModel
from repro.utility import (
    AdaptiveUtility,
    PiecewiseLinearUtility,
    RigidUtility,
)
from repro.utility.base import UtilityFunction

#: Load family names the strategies can draw.
LOAD_FAMILIES = ("poisson", "exponential", "algebraic")

# mean grid kept moderate: scalar model calls cost O(mean) terms
_MEANS = (5.0, 10.0, 25.0)
_TAIL_POWERS = (2.5, 3.0, 4.0)

_model_cache = BoundedCache(maxsize=256)


def _build_load(family: str, mean: float, z: float) -> LoadDistribution:
    if family == "poisson":
        return PoissonLoad(mean)
    if family == "exponential":
        return GeometricLoad.from_mean(mean)
    return AlgebraicLoad.from_mean(z, mean)


@st.composite
def loads(
    draw,
    families: Tuple[str, ...] = LOAD_FAMILIES,
    tail_powers: Tuple[float, ...] = _TAIL_POWERS,
) -> LoadDistribution:
    """A discrete census distribution from the paper's three families."""
    family = draw(st.sampled_from(families))
    mean = draw(st.sampled_from(_MEANS))
    z = draw(st.sampled_from(tail_powers))
    return _build_load(family, mean, z)


@st.composite
def utilities(draw, include_rigid: bool = True) -> UtilityFunction:
    """A normalised utility: adaptive, ramp, or (optionally) rigid.

    Rigid utilities make many quantities discontinuous in capacity;
    properties that assume smoothness can exclude them.
    """
    kinds = ["adaptive", "ramp"] + (["rigid"] if include_rigid else [])
    kind = draw(st.sampled_from(kinds))
    if kind == "adaptive":
        return AdaptiveUtility(draw(st.sampled_from((0.3, 0.62086, 1.5))))
    if kind == "ramp":
        return PiecewiseLinearUtility(
            draw(st.floats(min_value=0.0, max_value=0.9))
        )
    return RigidUtility(1.0)


@st.composite
def models(draw, families: Tuple[str, ...] = LOAD_FAMILIES) -> VariableLoadModel:
    """A memoised :class:`VariableLoadModel` over the drawn domain."""
    load = draw(loads(families=families))
    utility = draw(utilities())
    key = (repr(load), repr(utility))
    cached = _model_cache.get(key)
    if cached is None:
        cached = VariableLoadModel(load, utility)
        _model_cache.put(key, cached)
    return cached


@st.composite
def sampling_models(draw, max_samples: int = 8) -> SamplingModel:
    """A memoised worst-of-S :class:`SamplingModel` (S >= 2).

    Tail powers stay at z >= 3: the worst-of-S truncation series decays
    like ``n^{-z}`` under a near-linear utility, and z = 2.5 with large
    S overruns the 2^26-term truncation guard in ``SamplingModel``.
    """
    load = draw(loads(tail_powers=(3.0, 4.0)))
    utility = draw(utilities())
    samples = draw(st.integers(min_value=2, max_value=max_samples))
    key = (repr(load), repr(utility), samples)
    cached = _model_cache.get(key)
    if cached is None:
        cached = SamplingModel(load, utility, samples)
        _model_cache.put(key, cached)
    return cached


def capacities(
    min_value: float = 0.5, max_value: float = 120.0
) -> st.SearchStrategy[float]:
    """A link capacity in the figures' interesting range."""
    return st.floats(
        min_value=min_value,
        max_value=max_value,
        allow_nan=False,
        allow_infinity=False,
    )


def capacity_pairs(
    min_value: float = 1.0, max_value: float = 100.0
) -> st.SearchStrategy[Tuple[float, float]]:
    """An ordered ``(lo, hi)`` capacity pair for monotonicity properties."""
    return st.tuples(
        capacities(min_value, max_value), capacities(min_value, max_value)
    ).map(lambda pair: (min(pair), max(pair)))


def seeds() -> st.SearchStrategy[int]:
    """A SeedSequence-compatible nonnegative seed."""
    return st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def paper_configs(draw) -> PaperConfig:
    """A valid :class:`PaperConfig` perturbed around the paper's values.

    Sweep grids stay fixed (they are axes, not physics); the physical
    parameters move within the ranges the models are valid for.
    """
    return PaperConfig(
        kbar=draw(st.sampled_from((50.0, 100.0))),
        z=draw(st.sampled_from(_TAIL_POWERS)),
        alpha=draw(st.floats(min_value=0.01, max_value=0.5)),
        samples=draw(st.integers(min_value=2, max_value=12)),
        ramp_a=draw(st.floats(min_value=0.1, max_value=0.9)),
        sim_seed=draw(seeds()),
    )


@st.composite
def populations(
    draw,
    regimes: Tuple[str, ...] = SCALING_REGIMES,
    max_population: float = 1000.0,
) -> PopulationScale:
    """A population scale for mean-field limit properties.

    Draws the mean flow count N, a replication budget, and which
    scaling regime the example probes — the shared vocabulary of the
    L-block invariants, the ensemble property tests, and the crossover
    bench (see ``repro.meanfield.scaling``).
    """
    population = draw(
        st.sampled_from(
            tuple(p for p in (25.0, 50.0, 100.0, 400.0, 1000.0) if p <= max_population)
        )
    )
    replications = draw(st.sampled_from((4, 8, 16)))
    regime = draw(st.sampled_from(regimes))
    return PopulationScale(
        population=population, replications=replications, regime=regime
    )


@st.composite
def traces(
    draw,
    max_flows: int = 60,
    max_horizon: float = 50.0,
    allow_empty: bool = True,
    allow_open: bool = True,
):
    """A small valid :class:`~repro.traces.format.FlowTrace`.

    Flows land anywhere in ``[0, horizon)`` in any order (the trace
    format does not require sorting), durations include zero-length
    flows (``departure == arrival``) and — when ``allow_open`` — flows
    still open at the horizon (``departure = inf``), the two edge
    shapes the census accounting must get right.
    """
    import numpy as np

    from repro.traces.format import FlowTrace

    horizon = draw(
        st.floats(min_value=1.0, max_value=max_horizon, allow_nan=False)
    )
    n = draw(st.integers(min_value=0 if allow_empty else 1, max_value=max_flows))
    arrivals = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=horizon * 0.999),
            min_size=n,
            max_size=n,
        )
    )
    flows = []
    for arrival in arrivals:
        kind = draw(
            st.sampled_from(
                ("normal", "zero", "open") if allow_open else ("normal", "zero")
            )
        )
        if kind == "zero":
            departure = arrival
        elif kind == "open":
            departure = float("inf")
        else:
            departure = arrival + draw(
                st.floats(min_value=0.0, max_value=2.0 * max_horizon)
            )
        flows.append((arrival, departure))
    return FlowTrace(
        arrival=np.asarray([f[0] for f in flows]),
        departure=np.asarray([f[1] for f in flows]),
        horizon=float(horizon),
    )


def trace_chunk_sizes(max_value: int = 512) -> st.SearchStrategy[int]:
    """A chunk size for streaming-parity properties.

    Deliberately spans the degenerate (1 flow per chunk), the awkward
    (primes smaller than typical traces) and the trivial (one chunk
    holds everything) so chunk-boundary bugs cannot hide.
    """
    return st.one_of(
        st.just(1),
        st.sampled_from((2, 3, 7, 13, 61)),
        st.integers(min_value=1, max_value=max_value),
        st.just(10**9),
    )


def shared_model_cache_info() -> Dict[str, int]:
    """Visibility into the memo (for tests of the strategies themselves)."""
    return {"size": len(_model_cache)}
