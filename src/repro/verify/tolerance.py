"""Tolerance policies: one comparison semantics for every oracle.

Every invariant and differential oracle in :mod:`repro.verify` reports
a single **normalised residual**: the worst observed deviation divided
by the allowance the policy grants at that point.  A residual of 0
means exact agreement, anything at or below 1.0 passes, and the
magnitude above 1.0 says *how far* outside tolerance the quantity
drifted — so a JSON report line is meaningful on its own, without
knowing which rtol/atol produced it.

The allowance for a reference value ``ref`` accompanied by a Monte
Carlo confidence half-width ``ci`` is::

    atol + rtol * |ref| + ci_multiplier * ci

Deterministic quantities use ``ci = 0`` and the familiar
``numpy.isclose``-style band.  Stochastic quantities (ensemble
estimates) keep their statistical uncertainty in the comparison: a
tight seed-lucky run does not hide drift, and a wide-CI run does not
fail on honest noise.

Policy choice rationale (see ``docs/VERIFY.md`` for the long form):

- ``EXACT`` — algebraic identities (Erlang recursion, S=1 reduction,
  the alpha=1 retry identity) where both sides run the *same* float
  arithmetic in a different order; anything beyond a few ulps is a bug.
- ``TIGHT`` — scalar-vs-batch differential oracles; the batch kernels
  promise rtol 1e-9 parity (benchmarks/bench_batch.py gates it).
- ``GOLDEN`` — values pinned against stored references or independent
  quadrature; matches the golden-figure gate (rtol 1e-7).
- ``STRUCTURAL`` — one-sided bounds and monotonicity (absolute slack
  only: these compare quantities against 0, where rtol is meaningless).
- ``MONTE_CARLO`` — ensemble estimates; 3 half-widths plus a small
  absolute floor for quantities whose CI collapses to ~0 under CRN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class TolerancePolicy:
    """Allowance parameters for one class of quantity.

    Parameters
    ----------
    rtol:
        Relative tolerance against the reference magnitude.
    atol:
        Absolute tolerance floor.
    ci_multiplier:
        How many confidence half-widths of slack a Monte Carlo
        estimate receives on top of the deterministic band.
    """

    rtol: float = 0.0
    atol: float = 0.0
    ci_multiplier: float = 0.0

    def __post_init__(self):
        if self.rtol < 0.0 or self.atol < 0.0 or self.ci_multiplier < 0.0:
            raise ValueError(
                "tolerances must be >= 0: "
                f"rtol={self.rtol!r}, atol={self.atol!r}, "
                f"ci_multiplier={self.ci_multiplier!r}"
            )
        if self.rtol == 0.0 and self.atol == 0.0 and self.ci_multiplier == 0.0:
            raise ValueError("a policy must grant some allowance")

    def allowance(self, reference: ArrayLike, ci_halfwidth: ArrayLike = 0.0):
        """Permitted absolute deviation at ``reference`` (elementwise)."""
        return (
            self.atol
            + self.rtol * np.abs(reference)
            + self.ci_multiplier * np.asarray(ci_halfwidth, dtype=float)
        )

    def residual(
        self,
        got: ArrayLike,
        reference: ArrayLike,
        *,
        ci_halfwidth: ArrayLike = 0.0,
    ) -> float:
        """Worst normalised deviation of ``got`` from ``reference``.

        NaNs in either side are an automatic failure (``inf``) unless
        they appear at the same positions in both, in which case they
        are treated as agreeing (the convention ``numpy.isclose``
        spells ``equal_nan=True``, used by the golden-figure gate).
        """
        got_arr = np.asarray(got, dtype=float)
        ref_arr = np.asarray(reference, dtype=float)
        got_arr, ref_arr = np.broadcast_arrays(got_arr, ref_arr)
        both_nan = np.isnan(got_arr) & np.isnan(ref_arr)
        either_nan = np.isnan(got_arr) | np.isnan(ref_arr)
        if np.any(either_nan & ~both_nan):
            return float("inf")
        diff = np.abs(got_arr - ref_arr)
        ratio = diff / self.allowance(ref_arr, ci_halfwidth)
        ratio = np.where(both_nan, 0.0, ratio)
        if ratio.size == 0:
            return 0.0
        return float(np.max(ratio))

    def agree(
        self,
        got: ArrayLike,
        reference: ArrayLike,
        *,
        ci_halfwidth: ArrayLike = 0.0,
    ) -> bool:
        """True when every element is inside its allowance."""
        return self.residual(got, reference, ci_halfwidth=ci_halfwidth) <= 1.0

    def describe(self) -> str:
        """Compact human-readable form for reports."""
        parts = []
        if self.rtol:
            parts.append(f"rtol={self.rtol:g}")
        if self.atol:
            parts.append(f"atol={self.atol:g}")
        if self.ci_multiplier:
            parts.append(f"ci*{self.ci_multiplier:g}")
        return " ".join(parts)


def bound_residual(
    values: ArrayLike,
    *,
    lower: float = -np.inf,
    upper: float = np.inf,
    atol: float = 1e-9,
) -> float:
    """Normalised worst violation of ``lower <= values <= upper``.

    The one-sided counterpart of :meth:`TolerancePolicy.residual`:
    0 when every element sits inside the (closed) band, and the worst
    overshoot divided by ``atol`` otherwise.  NaNs fail outright.
    """
    arr = np.asarray(values, dtype=float)
    if np.any(np.isnan(arr)):
        return float("inf")
    low_violation = np.maximum(0.0, lower - arr) if np.isfinite(lower) else 0.0
    high_violation = np.maximum(0.0, arr - upper) if np.isfinite(upper) else 0.0
    worst = float(np.max(np.maximum(low_violation, high_violation), initial=0.0))
    return worst / atol


def monotone_residual(
    values: ArrayLike, *, increasing: bool = True, atol: float = 1e-9
) -> float:
    """Normalised worst violation of (weak) monotonicity along an array."""
    arr = np.asarray(values, dtype=float).ravel()
    if np.any(np.isnan(arr)):
        return float("inf")
    if arr.size < 2:
        return 0.0
    steps = np.diff(arr)
    violation = np.maximum(0.0, -steps if increasing else steps)
    return float(np.max(violation)) / atol


#: Same-arithmetic algebraic identities.
EXACT = TolerancePolicy(rtol=1e-12, atol=1e-12)

#: Scalar-vs-batch differential parity (bench_batch.py's gate).
TIGHT = TolerancePolicy(rtol=1e-9, atol=1e-9)

#: Pinned references and independent-quadrature agreement.
GOLDEN = TolerancePolicy(rtol=1e-7, atol=1e-9)

#: One-sided bounds / monotonicity slack (absolute only).
STRUCTURAL = TolerancePolicy(atol=1e-9)

#: Monte Carlo estimates: 3 half-widths + an absolute floor.
MONTE_CARLO = TolerancePolicy(atol=2e-3, ci_multiplier=3.0)

#: Asymptotic limits probed at finite parameters (tolerances inherited
#: from the EXPERIMENTS.md checkpoint bands, which they mirror).
LIMIT = TolerancePolicy(rtol=0.0, atol=1e-2)

#: Emulator surfaces versus the exact engines.  The ``EM*`` checks
#: normalise their residuals *in certified-bound units* — each surface
#: carries its own bound from dense residual sampling at fit time — so
#: the allowance here is exactly 1 bound: a fresh probe drifting past
#: what the surface certifies is a failure regardless of scale.
EMULATOR = TolerancePolicy(atol=1.0)
