"""The invariant catalogue: every paper-derived property, declared once.

Importing this module populates :data:`repro.verify.registry.REGISTRY`
with ~35 invariants spanning the four computation engines.  IDs are
grouped by family:

- ``B*`` bounds, ``M*`` monotonicity, ``E*`` Erlang-B,
  ``X*`` Section 5 extension identities, ``P*`` scalar-vs-batch
  differential parity, ``C*`` continuum closed forms and limits,
  ``W*`` welfare, ``K*`` the EXPERIMENTS.md checkpoint table,
  ``S*`` ensemble Monte Carlo oracles, ``EM*`` certified emulator
  surfaces, ``L*`` mean-field fluid-diffusion limits, ``T*`` streaming
  trace replay and frozen result provenance.

Each entry cites where in Breslau & Shenker (SIGCOMM 1998) the
property comes from; ``docs/VERIFY.md`` carries the longer catalogue.
Checks are pure functions of the :class:`PaperConfig`, so the whole
suite is cache-addressable by config digest.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.continuum import (
    DELTA_OVER_C_BOUND,
    GAMMA_BOUND,
    AdaptiveExponentialContinuum,
    AdaptiveAlgebraicContinuum,
    ContinuumModel,
    RigidAlgebraicContinuum,
    RigidExponentialContinuum,
    adaptive_algebraic_ratio,
    adaptive_algebraic_ratio_limit,
    retrying_rigid_ratio,
    rigid_algebraic_ratio,
    sampling_rigid_ratio,
)
from repro.experiments.checkpoints import all_checkpoints
from repro.experiments.params import PaperConfig
from repro.loads import ExponentialLoad, PoissonLoad
from repro.models import (
    Architecture,
    RetryingModel,
    SamplingModel,
    VariableLoadModel,
    WelfareModel,
    erlang_b,
    erlang_b_inverse,
)
from repro.utility import PiecewiseLinearUtility, RigidUtility
from repro.verify import oracles
from repro.verify.oracles import (
    batch_vs_scalar,
    paper_models,
    verification_capacities,
    worst_over_domain,
)
from repro.verify.registry import REGISTRY, CheckResult
from repro.verify.tolerance import (
    EMULATOR,
    EXACT,
    GOLDEN,
    LIMIT,
    MONTE_CARLO,
    STRUCTURAL,
    TIGHT,
    TolerancePolicy,
    bound_residual,
    monotone_residual,
)

# ----------------------------------------------------------------------
# shared fixtures (memoised per config; PaperConfig is frozen/hashable)
# ----------------------------------------------------------------------


@lru_cache(maxsize=4)
def _models(config: PaperConfig) -> Tuple[Tuple[str, VariableLoadModel], ...]:
    return tuple(paper_models(config))


@lru_cache(maxsize=4)
def _grid(config: PaperConfig) -> Tuple[float, ...]:
    return tuple(verification_capacities(config))


def _domain_worst(config, per_model) -> CheckResult:
    """Evaluate ``per_model(label, model) -> residual`` across the domain."""
    residual, where = worst_over_domain(
        (label, per_model(label, model)) for label, model in _models(config)
    )
    return CheckResult(residual, f"worst case {where}")


# ----------------------------------------------------------------------
# B* — bounds (paper Section 3.1: utilities are normalised to [0, 1])
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "B1",
    "performance gap delta(C) lies in [0, 1]",
    paper_ref="S3.1 (delta = R - B with pi normalised to [0, 1])",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _b1(config: PaperConfig) -> CheckResult:
    grid = _grid(config)
    return _domain_worst(
        config,
        lambda label, m: bound_residual(
            [m.performance_gap(c) for c in grid], lower=0.0, upper=1.0
        ),
    )


@REGISTRY.invariant(
    "B2",
    "reservations dominate best effort: R(C) >= B(C)",
    paper_ref="S3.1 (reservation admits the utility-maximising subset)",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _b2(config: PaperConfig) -> CheckResult:
    grid = _grid(config)
    return _domain_worst(
        config,
        lambda label, m: bound_residual(
            [m.reservation(c) - m.best_effort(c) for c in grid], lower=0.0
        ),
    )


@REGISTRY.invariant(
    "B3",
    "blocking and overload fractions are probabilities",
    paper_ref="S3.1 (theta and P(N > k_max) are probabilities)",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _b3(config: PaperConfig) -> CheckResult:
    grid = _grid(config)

    def per_model(label, m):
        values = [m.blocking_fraction(c) for c in grid]
        values += [m.overload_probability(c) for c in grid]
        return bound_residual(values, lower=0.0, upper=1.0)

    return _domain_worst(config, per_model)


@REGISTRY.invariant(
    "B4",
    "bandwidth gap Delta(C) is nonnegative",
    paper_ref="S3.1 (B(C) <= R(C) pointwise forces Delta >= 0)",
    engines=("batch",),
    tolerance=STRUCTURAL,
)
def _b4(config: PaperConfig) -> CheckResult:
    grid = np.asarray(_grid(config))
    return _domain_worst(
        config,
        lambda label, m: bound_residual(
            m.bandwidth_gap_batch(grid), lower=0.0, atol=1e-6
        ),
    )


# ----------------------------------------------------------------------
# M* — monotonicity
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "M1",
    "best-effort performance B(C) is nondecreasing in capacity",
    paper_ref="S3.1 (more bandwidth never hurts a sharing allocation)",
    engines=("batch",),
    tolerance=STRUCTURAL,
)
def _m1(config: PaperConfig) -> CheckResult:
    caps = np.asarray(config.capacities)
    return _domain_worst(
        config,
        lambda label, m: monotone_residual(m.best_effort_batch(caps)),
    )


@REGISTRY.invariant(
    "M2",
    "reservation performance R(C) is nondecreasing in capacity",
    paper_ref="S3.1 (k_max grows with C; admitted flows never lose)",
    engines=("batch",),
    tolerance=STRUCTURAL,
)
def _m2(config: PaperConfig) -> CheckResult:
    caps = np.asarray(config.capacities)
    return _domain_worst(
        config,
        lambda label, m: monotone_residual(m.reservation_batch(caps)),
    )


@REGISTRY.invariant(
    "M3",
    "admission threshold k_max(C) is nondecreasing in capacity",
    paper_ref="S2 (the fixed-load optimum grows with capacity)",
    engines=("scalar", "batch"),
    tolerance=STRUCTURAL,
)
def _m3(config: PaperConfig) -> CheckResult:
    caps = np.asarray(config.capacities)
    return _domain_worst(
        config,
        lambda label, m: monotone_residual(m.k_max_batch(caps).astype(float)),
    )


@REGISTRY.invariant(
    "M4",
    "Delta(C) grows without bound for rigid apps on exponential loads",
    paper_ref="S3.2 (rigid x exponential: Delta ~ ln(beta C)/beta)",
    engines=("batch",),
    tolerance=TolerancePolicy(atol=1e-6),
)
def _m4(config: PaperConfig) -> CheckResult:
    # only the rigid case is monotone: for adaptive apps the paper has
    # Delta approaching a constant, and the discrete smooth-adaptive
    # Delta decays once both architectures saturate
    caps = np.asarray(config.capacities)
    model = VariableLoadModel(config.load("exponential"), config.utility("rigid"))
    gaps = model.bandwidth_gap_batch(caps)
    residual = monotone_residual(gaps, atol=1e-6)
    return CheckResult(
        residual, f"Delta spans [{gaps.min():.3f}, {gaps.max():.3f}]"
    )


# ----------------------------------------------------------------------
# E* — Erlang-B (paper Section 5.2 uses it; independent closed form)
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "E1",
    "erlang_b matches the independent log-space series formula",
    paper_ref="S5.2 (M/M/c/c blocking; classic Erlang-B series)",
    engines=("scalar",),
    tolerance=TIGHT,
)
def _e1(config: PaperConfig) -> CheckResult:
    worst, where = 0.0, "n/a"
    for offered in (1.0, 5.0, 20.0, 50.0):
        log_terms = np.array(
            [c * math.log(offered) - math.lgamma(c + 1) for c in range(41)]
        )
        shifted = np.exp(log_terms - log_terms.max())
        cumulative = np.cumsum(shifted)
        for servers in range(1, 41):
            reference = shifted[servers] / cumulative[servers]
            residual = TIGHT.residual(erlang_b(servers, offered), reference)
            if residual > worst or where == "n/a":
                worst, where = residual, f"c={servers}, a={offered}"
    return CheckResult(worst, f"worst case {where}")


@REGISTRY.invariant(
    "E2",
    "erlang_b is a probability, decreasing in circuit count",
    paper_ref="S5.2 (more circuits can only reduce blocking)",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _e2(config: PaperConfig) -> CheckResult:
    worst, where = 0.0, "n/a"
    for offered in (1.0, 5.0, 20.0, 50.0):
        curve = [erlang_b(c, offered) for c in range(1, 61)]
        residual = max(
            bound_residual(curve, lower=0.0, upper=1.0),
            monotone_residual(curve, increasing=False),
        )
        if residual > worst or where == "n/a":
            worst, where = residual, f"a={offered}"
    return CheckResult(worst, f"worst case {where}")


@REGISTRY.invariant(
    "E3",
    "erlang_b_inverse returns the smallest sufficient circuit count",
    paper_ref="S5.2 (provisioning to a blocking target)",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _e3(config: PaperConfig) -> CheckResult:
    violations = []
    for offered in (2.0, 10.0, 40.0):
        for target in (0.01, 0.05, 0.2):
            circuits = erlang_b_inverse(offered, target)
            achieved = erlang_b(circuits, offered)
            if achieved > target:
                violations.append(achieved - target)
            if circuits > 1 and erlang_b(circuits - 1, offered) <= target:
                violations.append(1.0)  # not minimal: hard failure
    residual = bound_residual(violations, upper=0.0) if violations else 0.0
    return CheckResult(residual, f"{9 - len(violations)}/9 targets minimal")


# ----------------------------------------------------------------------
# X* — Section 5 extension identities
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "X1",
    "SamplingModel with S=1 reduces to the base variable-load model",
    paper_ref="S5.1 (one sample is the basic model)",
    engines=("scalar",),
    tolerance=TIGHT,
)
def _x1(config: PaperConfig) -> CheckResult:
    grid = _grid(config)
    cases = []
    for load_name, utility_name in (("poisson", "adaptive"), ("algebraic", "rigid")):
        base = VariableLoadModel(config.load(load_name), config.utility(utility_name))
        sampled = SamplingModel(
            config.load(load_name), config.utility(utility_name), 1
        )
        residual = max(
            oracles.pointwise_vs_reference(
                sampled.best_effort, base.best_effort, grid, TIGHT
            ),
            oracles.pointwise_vs_reference(
                sampled.reservation, base.reservation, grid, TIGHT
            ),
        )
        cases.append((f"{load_name}/{utility_name}", residual))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "X2",
    "worst-of-S sampling degrades best effort monotonically in S",
    paper_ref="S5.1 (each extra sample can only lower the worst draw)",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _x2(config: PaperConfig) -> CheckResult:
    grid = list(_grid(config))[:4]
    cases = []
    for load_name, utility_name in (("poisson", "adaptive"), ("exponential", "rigid")):
        load, utility = config.load(load_name), config.utility(utility_name)
        for capacity in grid:
            curve = [
                SamplingModel(load, utility, s).best_effort(capacity)
                for s in (1, 2, 5, config.samples)
            ]
            cases.append(
                (
                    f"{load_name}/{utility_name}@C={capacity:g}",
                    monotone_residual(curve, increasing=False),
                )
            )
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "X3",
    "retry fixed point balances: L~ (1 - theta) = L",
    paper_ref="S5.2 (offered load inflates until blocked mass re-offers)",
    engines=("scalar",),
    tolerance=GOLDEN,
)
def _x3(config: PaperConfig) -> CheckResult:
    grid = _grid(config)
    cases = []
    for load_name in ("poisson", "exponential"):
        load = config.load(load_name)
        model = RetryingModel(load, config.utility("adaptive"), alpha=config.alpha)
        for capacity in grid:
            if capacity < 1.2 * load.mean:
                continue  # outside the model's validity (theta ceiling)
            carried = model.offered_mean(capacity) * (
                1.0 - model.blocking_probability(capacity)
            )
            cases.append(
                (
                    f"{load_name}@C={capacity:g}",
                    GOLDEN.residual(carried, load.mean),
                )
            )
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "X4",
    "retrying leaves the best-effort architecture untouched",
    paper_ref="S5.2 (only blocked reservation flows retry)",
    engines=("scalar",),
    tolerance=EXACT,
)
def _x4(config: PaperConfig) -> CheckResult:
    grid = _grid(config)
    load, utility = config.load("poisson"), config.utility("adaptive")
    base = VariableLoadModel(load, utility)
    retrying = RetryingModel(load, utility, alpha=config.alpha)
    residual = oracles.pointwise_vs_reference(
        retrying.best_effort, base.best_effort, grid, EXACT
    )
    return CheckResult(residual, "poisson/adaptive")


@REGISTRY.invariant(
    "X5",
    "sampling continuum Delta-ratio identity (S(z-1))^(1/(z-2))",
    paper_ref="S5.1 (algebraic-load sampling ratio law)",
    engines=("continuum",),
    tolerance=EXACT,
)
def _x5(config: PaperConfig) -> CheckResult:
    cases = []
    for z in (2.5, config.z, 4.0):
        for samples in (2, config.samples):
            expected = (samples * (z - 1.0)) ** (1.0 / (z - 2.0))
            cases.append(
                (
                    f"z={z:g},S={samples}",
                    EXACT.residual(sampling_rigid_ratio(z, samples), expected),
                )
            )
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "X6",
    "retrying continuum Delta-ratio identity ((z-1)/alpha)^(1/(z-2))",
    paper_ref="S5.2 (algebraic-load retrying ratio law)",
    engines=("continuum",),
    tolerance=EXACT,
)
def _x6(config: PaperConfig) -> CheckResult:
    cases = []
    for z in (2.5, config.z, 4.0):
        for alpha in (config.alpha, 0.5):
            expected = ((z - 1.0) / alpha) ** (1.0 / (z - 2.0))
            cases.append(
                (
                    f"z={z:g},alpha={alpha:g}",
                    EXACT.residual(retrying_rigid_ratio(z, alpha), expected),
                )
            )
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


# ----------------------------------------------------------------------
# P* — scalar-vs-batch differential parity
# ----------------------------------------------------------------------


def _parity_invariant(inv_id: str, method: str, description: str):
    @REGISTRY.invariant(
        inv_id,
        description,
        paper_ref="S3.1 quantities; batch kernels are PR-3 rewrites",
        engines=("scalar", "batch"),
        tolerance=TIGHT,
    )
    def _check(config: PaperConfig, _method=method) -> CheckResult:
        grid = _grid(config)
        return _domain_worst(
            config,
            lambda label, m: batch_vs_scalar(m, _method, grid, TIGHT),
        )

    return _check


_parity_invariant(
    "P1", "best_effort", "best_effort_batch agrees with the scalar path"
)
_parity_invariant(
    "P2", "reservation", "reservation_batch agrees with the scalar path"
)
_parity_invariant(
    "P3", "performance_gap", "performance_gap_batch agrees with the scalar path"
)


@REGISTRY.invariant(
    "P4",
    "bandwidth_gap_batch solves B(C + Delta) = R(C) at root level",
    paper_ref="S3.1 (Delta defined implicitly by B(C + Delta) = R(C))",
    engines=("scalar", "batch"),
    tolerance=GOLDEN,
)
def _p4(config: PaperConfig) -> CheckResult:
    # adaptive (smooth) utilities only: rigid B(C) is a step function
    # of capacity, so the implicit equation has no exact root to hit
    grid = np.asarray(_grid(config))
    cases = []
    for load_name, utility_name in (
        ("poisson", "adaptive"),
        ("exponential", "adaptive"),
        ("algebraic", "adaptive"),
    ):
        model = VariableLoadModel(config.load(load_name), config.utility(utility_name))
        gaps = model.bandwidth_gap_batch(grid)
        achieved = np.array(
            [model.best_effort(c + d) for c, d in zip(grid, gaps)]
        )
        targets = np.array([model.reservation(c) for c in grid])
        cases.append(
            (f"{load_name}/{utility_name}", GOLDEN.residual(achieved, targets))
        )
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "P5",
    "sampling model batch kernels agree with the scalar path",
    paper_ref="S5.1",
    engines=("scalar", "batch"),
    tolerance=TIGHT,
)
def _p5(config: PaperConfig) -> CheckResult:
    grid = _grid(config)
    cases = []
    for load_name, utility_name in (("poisson", "adaptive"), ("algebraic", "rigid")):
        model = SamplingModel(
            config.load(load_name), config.utility(utility_name), config.samples
        )
        residual = max(
            batch_vs_scalar(model, "best_effort", grid, TIGHT),
            batch_vs_scalar(model, "reservation", grid, TIGHT),
        )
        cases.append((f"{load_name}/{utility_name}", residual))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "P6",
    "retrying model batch kernels agree with the scalar path",
    paper_ref="S5.2",
    engines=("scalar", "batch"),
    tolerance=TIGHT,
)
def _p6(config: PaperConfig) -> CheckResult:
    load = config.load("poisson")
    grid = tuple(c for c in _grid(config) if c >= 1.2 * load.mean)
    model = RetryingModel(load, config.utility("adaptive"), alpha=config.alpha)
    residual = max(
        batch_vs_scalar(model, "best_effort", grid, TIGHT),
        batch_vs_scalar(model, "reservation", grid, TIGHT),
    )
    return CheckResult(residual, f"poisson/adaptive on {len(grid)} capacities")


@REGISTRY.invariant(
    "P7",
    "welfare equalizing_ratio_batch agrees with the scalar path",
    paper_ref="S4 (gamma(p) envelope sweep vs direct inversion)",
    engines=("scalar", "batch"),
    tolerance=TolerancePolicy(rtol=1e-5, atol=1e-7),
)
def _p7(config: PaperConfig) -> CheckResult:
    prices = np.asarray(config.prices)[2:-1:4]
    welfare = WelfareModel(
        VariableLoadModel(config.load("poisson"), config.utility("adaptive"))
    )
    batch = welfare.equalizing_ratio_batch(prices)
    scalar = np.array([welfare.equalizing_ratio(p) for p in prices])
    policy = TolerancePolicy(rtol=1e-5, atol=1e-7)
    return CheckResult(
        policy.residual(batch, scalar), f"poisson/adaptive at {len(prices)} prices"
    )


@REGISTRY.invariant(
    "P8",
    "k_max_batch agrees exactly with the scalar threshold",
    paper_ref="S2 (integer fixed-load optimum)",
    engines=("scalar", "batch"),
    tolerance=EXACT,
)
def _p8(config: PaperConfig) -> CheckResult:
    grid = _grid(config)

    def per_model(label, m):
        batch = m.k_max_batch(np.asarray(grid)).astype(float)
        scalar = np.array([float(m.k_max(c)) for c in grid])
        return EXACT.residual(batch, scalar)

    return _domain_worst(config, per_model)


@REGISTRY.invariant(
    "P9",
    "continuum closed-form batch kernels agree with the scalar path",
    paper_ref="S3.2 worked cases",
    engines=("continuum", "batch"),
    tolerance=TIGHT,
)
def _p9(config: PaperConfig) -> CheckResult:
    grid = (0.5, 1.0, 2.0, 4.0, 8.0)
    cases = []
    for label, model in (
        ("rigid-exponential", RigidExponentialContinuum(1.0)),
        ("adaptive-exponential", AdaptiveExponentialContinuum(config.ramp_a)),
        ("rigid-algebraic", RigidAlgebraicContinuum(config.z)),
        ("adaptive-algebraic", AdaptiveAlgebraicContinuum(config.z, config.ramp_a)),
    ):
        caps = grid if "exponential" in label else tuple(1.0 + c for c in grid)
        residual = max(
            batch_vs_scalar(model, "best_effort", caps, TIGHT),
            batch_vs_scalar(model, "reservation", caps, TIGHT),
            batch_vs_scalar(model, "performance_gap", caps, TIGHT),
        )
        cases.append((label, residual))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


# ----------------------------------------------------------------------
# C* — continuum closed forms, limits and conjectured bounds
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "C1",
    "quadrature certifies the rigid-exponential closed forms",
    paper_ref="S3.2 (rigid x exponential worked case)",
    engines=("continuum",),
    tolerance=GOLDEN,
)
def _c1(config: PaperConfig) -> CheckResult:
    closed = RigidExponentialContinuum(1.0)
    generic = ContinuumModel(
        ExponentialLoad(1.0), RigidUtility(1.0), k_max_override=lambda c: c
    )
    grid = (0.5, 1.0, 2.0, 4.0)
    residual = max(
        oracles.pointwise_vs_reference(
            generic.best_effort, closed.best_effort, grid, GOLDEN
        ),
        oracles.pointwise_vs_reference(
            generic.reservation, closed.reservation, grid, GOLDEN
        ),
    )
    return CheckResult(residual, "quadrature vs closed form, beta=1")


@REGISTRY.invariant(
    "C2",
    "quadrature certifies the adaptive-exponential closed forms",
    paper_ref="S3.2 (ramp(a) x exponential worked case)",
    engines=("continuum",),
    tolerance=GOLDEN,
)
def _c2(config: PaperConfig) -> CheckResult:
    closed = AdaptiveExponentialContinuum(config.ramp_a)
    generic = ContinuumModel(
        ExponentialLoad(1.0),
        PiecewiseLinearUtility(config.ramp_a),
        k_max_override=lambda c: c,
    )
    grid = (0.5, 1.0, 2.0, 4.0)
    residual = max(
        oracles.pointwise_vs_reference(
            generic.best_effort, closed.best_effort, grid, GOLDEN
        ),
        oracles.pointwise_vs_reference(
            generic.reservation, closed.reservation, grid, GOLDEN
        ),
    )
    return CheckResult(residual, f"quadrature vs closed form, a={config.ramp_a:g}")


@REGISTRY.invariant(
    "C3",
    "adaptive-algebraic gap ratio converges to its z -> 2+ limit",
    paper_ref="S3.2 (ramp ratio limit a^{-a/(1-a)} as z -> 2+)",
    engines=("continuum",),
    tolerance=LIMIT,
)
def _c3(config: PaperConfig) -> CheckResult:
    cases = []
    for a in (0.25, config.ramp_a, 0.75):
        near_two = adaptive_algebraic_ratio(2.0001, a)
        limit = adaptive_algebraic_ratio_limit(a)
        cases.append((f"a={a:g}", LIMIT.residual(near_two, limit)))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where} at z=2.0001")


@REGISTRY.invariant(
    "C4",
    "continuum equalizing ratio stays below the conjectured e bound",
    paper_ref="S4 (gamma < e conjecture, exact on the continuum)",
    engines=("continuum", "batch"),
    tolerance=STRUCTURAL,
)
def _c4(config: PaperConfig) -> CheckResult:
    model = RigidExponentialContinuum(1.0)
    prices = np.geomspace(1e-4, 0.2, 12)
    gammas = model.equalizing_ratio_batch(prices)
    residual = bound_residual(gammas, lower=1.0 - 1e-9, upper=GAMMA_BOUND, atol=1e-6)
    return CheckResult(
        residual, f"gamma in [{gammas.min():.4f}, {gammas.max():.4f}], e={GAMMA_BOUND:.4f}"
    )


@REGISTRY.invariant(
    "C5",
    "rigid-algebraic Delta/C respects the e - 1 bound, attained at z -> 2+",
    paper_ref="S3.3 (asymptotic Delta/C = (z-1)^{1/(z-2)} - 1 < e - 1)",
    engines=("continuum",),
    tolerance=STRUCTURAL,
)
def _c5(config: PaperConfig) -> CheckResult:
    ratios = [
        rigid_algebraic_ratio(z) - 1.0
        for z in (2.0001, 2.001, 2.01, 2.1, config.z, 10.0, 50.0)
    ]
    residual = max(
        bound_residual(ratios, lower=0.0, upper=DELTA_OVER_C_BOUND, atol=1e-6),
        # the bound is tight: z -> 2+ must approach e - 1
        LIMIT.residual(ratios[0], DELTA_OVER_C_BOUND),
    )
    return CheckResult(
        residual,
        f"max Delta/C = {max(ratios):.4f}, bound e-1 = {DELTA_OVER_C_BOUND:.4f}",
    )


@REGISTRY.invariant(
    "C6",
    "adaptive-exponential Delta(C) approaches its closed-form limit",
    paper_ref="S3.2 (T2.3: Delta -> a-dependent constant)",
    engines=("continuum",),
    tolerance=LIMIT,
)
def _c6(config: PaperConfig) -> CheckResult:
    # C = 20 mean-loads: far enough out to sit on the limit, not so
    # far that the underlying performance gap underflows the gap floor
    model = AdaptiveExponentialContinuum(config.ramp_a)
    at_large_c = model.bandwidth_gap(20.0)
    limit = model.bandwidth_gap_limit()
    return CheckResult(
        LIMIT.residual(at_large_c, limit),
        f"Delta(20) = {at_large_c:.6f} vs limit {limit:.6f}",
    )


@REGISTRY.invariant(
    "C7",
    "discrete exponential-load model converges to the continuum",
    paper_ref="S3.2 (continuum model as the kbar -> inf limit)",
    engines=("scalar", "continuum"),
    tolerance=TolerancePolicy(atol=2e-2),
)
def _c7(config: PaperConfig) -> CheckResult:
    continuum = RigidExponentialContinuum(1.0)
    discrete = VariableLoadModel(
        config.load("exponential"), config.utility("rigid")
    )
    kbar = config.kbar
    policy = TolerancePolicy(atol=2e-2)
    cases = []
    for scaled_c in (0.5, 1.0, 2.0):
        got = discrete.best_effort(scaled_c * kbar)
        ref = continuum.best_effort(scaled_c)
        cases.append((f"C/kbar={scaled_c:g}", policy.residual(got, ref)))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where} at kbar={kbar:g}")


# ----------------------------------------------------------------------
# W* — welfare
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "W1",
    "discrete equalizing ratio gamma(p) stays in (1, e)",
    paper_ref="S4 (Table 3 range; gamma < e conjecture)",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _w1(config: PaperConfig) -> CheckResult:
    welfare = WelfareModel(
        VariableLoadModel(config.load("poisson"), config.utility("adaptive"))
    )
    prices = np.asarray(config.prices)[1:-1:3]
    gammas = welfare.equalizing_ratio_batch(prices)
    residual = bound_residual(
        gammas, lower=1.0 - 1e-6, upper=GAMMA_BOUND, atol=1e-6
    )
    return CheckResult(
        residual, f"gamma in [{gammas.min():.4f}, {gammas.max():.4f}]"
    )


@REGISTRY.invariant(
    "W2",
    "optimal provisioned capacity decreases with bandwidth price",
    paper_ref="S4 (C(p) from the provisioning first-order condition)",
    engines=("scalar",),
    tolerance=TolerancePolicy(atol=1e-3),
)
def _w2(config: PaperConfig) -> CheckResult:
    welfare = WelfareModel(
        VariableLoadModel(config.load("poisson"), config.utility("adaptive"))
    )
    prices = np.asarray(config.prices)[1:-1:4]
    cases = []
    for architecture in (Architecture.BEST_EFFORT, Architecture.RESERVATION):
        curve = [welfare.optimal_capacity(p, architecture) for p in prices]
        cases.append(
            (
                architecture.name.lower(),
                monotone_residual(curve, increasing=False, atol=1e-3),
            )
        )
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


# ----------------------------------------------------------------------
# K* — the EXPERIMENTS.md checkpoint table
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "K1",
    "every EXPERIMENTS.md checkpoint reproduces within its band",
    paper_ref="Tables 1-5 and Section 3-5 figures (34 pinned rows)",
    engines=("scalar", "continuum"),
    tolerance=LIMIT,
)
def _k1(config: PaperConfig) -> CheckResult:
    rows = all_checkpoints(config)
    mismatched = [row.exp_id for row in rows if not row.matches]
    residual = 0.0 if not mismatched else 1.0 + float(len(mismatched))
    detail = (
        f"{len(rows)} checkpoints reproduced"
        if not mismatched
        else f"mismatched: {', '.join(mismatched)}"
    )
    return CheckResult(residual, detail)


# ----------------------------------------------------------------------
# S* — ensemble Monte Carlo oracles
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "S1",
    "same-seed ensemble replay is event-for-event identical",
    paper_ref="(infrastructure: replication-stream determinism)",
    engines=("ensemble",),
    tolerance=EXACT,
)
def _s1(config: PaperConfig) -> CheckResult:
    residual, detail = oracles.ensemble_determinism_residual(config)
    return CheckResult(residual, detail)


@REGISTRY.invariant(
    "S2",
    "lost-calls-cleared blocking matches Erlang-B",
    paper_ref="S5.2 (M/M/c/c blocking cross-check)",
    engines=("ensemble", "scalar"),
    tolerance=MONTE_CARLO,
)
def _s2(config: PaperConfig) -> CheckResult:
    residual, info = oracles.ensemble_blocking_vs_erlang(
        rate=5.0,
        capacity=7.0,
        replications=16,
        horizon=300.0,
        warmup=30.0,
        seed=config.sim_seed,
        policy=MONTE_CARLO,
    )
    return CheckResult(
        residual,
        f"simulated {info['simulated_blocking']:.4f} vs "
        f"Erlang-B {info['erlang_b']:.4f} over {info['arrivals']:.0f} arrivals",
    )


@REGISTRY.invariant(
    "S3",
    "CRN-paired simulated delta matches the analytic gap",
    paper_ref="S3.1 (delta = R - B) via the S1 validation scenario",
    engines=("ensemble", "scalar"),
    tolerance=MONTE_CARLO,
)
def _s3(config: PaperConfig) -> CheckResult:
    residual, info = oracles.ensemble_gap_vs_scalar(
        config, replications=12, horizon=200.0, policy=MONTE_CARLO
    )
    return CheckResult(
        residual,
        f"simulated {info['simulated_gap']:.5f} +/- {info['gap_ci']:.5f} vs "
        f"analytic {info['analytic_gap']:.5f}",
    )


@REGISTRY.invariant(
    "S4",
    "ensemble B and R estimates match the analytic model",
    paper_ref="S3.1 (B(C), R(C)) via flow-average estimators",
    engines=("ensemble", "scalar"),
    tolerance=MONTE_CARLO,
    suites=("deep",),
)
def _s4(config: PaperConfig) -> CheckResult:
    residual, info = oracles.ensemble_architectures_vs_scalar(
        config,
        replications=config.sim_replications,
        horizon=config.sim_horizon,
        policy=MONTE_CARLO,
    )
    return CheckResult(
        residual,
        f"B {info['best_effort']:.5f} vs {info['best_effort_ref']:.5f}; "
        f"R {info['reservation']:.5f} vs {info['reservation_ref']:.5f}",
    )


@REGISTRY.invariant(
    "S5",
    "simulated delta tracks the analytic curve across capacities",
    paper_ref="S3.1 (delta(C) shape) via CRN paired ensembles",
    engines=("ensemble", "scalar"),
    tolerance=MONTE_CARLO,
    suites=("deep",),
)
def _s5(config: PaperConfig) -> CheckResult:
    from repro.simulation import Link, PoissonProcess, paired_gap

    utility = config.utility("adaptive")
    analytic = VariableLoadModel(PoissonLoad(config.sim_kbar), utility)
    cases = []
    for offset, seed_shift in ((0.0, 2), (10.0, 3), (25.0, 4)):
        capacity = config.sim_capacity + offset
        result = paired_gap(
            PoissonProcess(config.sim_kbar),
            Link(capacity),
            utility,
            config.sim_replications,
            config.sim_horizon,
            warmup=config.sim_warmup,
            seed=config.sim_seed + seed_shift,
        )
        summary = result.summary()
        residual = MONTE_CARLO.residual(
            summary["gap"],
            analytic.performance_gap(capacity),
            ci_halfwidth=summary["gap_ci"],
        )
        cases.append((f"C={capacity:g}", residual))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


# ----------------------------------------------------------------------
# EM* — certified emulator surfaces (the service layer's error contract;
# see docs/SERVICE.md).  Residuals are in *certified-bound units*: each
# surface promises |emulated - exact| <= certified_bound everywhere on
# its fitted domain, so a fresh differential probe dividing out that
# bound must stay at or below 1.0 under the EMULATOR policy.
# ----------------------------------------------------------------------


@lru_cache(maxsize=4)
def _emulator_rows(config: PaperConfig) -> Tuple[Tuple[str, float], ...]:
    """Fresh-probe residuals for every 1-D surface (memoised per config)."""
    from repro.emulator import check_bank, default_bank

    return tuple(
        (row["surface"], float(row["residual"]))
        for row in check_bank(default_bank(config), config)
    )


def _emulator_worst(config: PaperConfig, quantity: str) -> CheckResult:
    cases = [
        (surface, residual)
        for surface, residual in _emulator_rows(config)
        if surface.startswith(f"{quantity}/")
    ]
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst surface {where} (certified-bound units)")


@REGISTRY.invariant(
    "EM1",
    "delta(C) emulator surfaces stay within their certified bounds",
    paper_ref="S3.1 (delta = R - B) served via certified Chebyshev surrogate",
    engines=("batch",),
    tolerance=EMULATOR,
)
def _em1(config: PaperConfig) -> CheckResult:
    return _emulator_worst(config, "delta")


@REGISTRY.invariant(
    "EM2",
    "Delta(C) emulator surfaces stay within their certified bounds",
    paper_ref="S3.1 (B(C + Delta) = R(C)) served via certified surrogate",
    engines=("batch",),
    tolerance=EMULATOR,
)
def _em2(config: PaperConfig) -> CheckResult:
    return _emulator_worst(config, "Delta")


@REGISTRY.invariant(
    "EM3",
    "gamma(p) emulator surfaces stay within their certified bounds",
    paper_ref="S4 (equalizing price ratio) served via certified surrogate",
    engines=("batch",),
    tolerance=EMULATOR,
)
def _em3(config: PaperConfig) -> CheckResult:
    return _emulator_worst(config, "gamma")


@REGISTRY.invariant(
    "EM4",
    "surfaces refuse out-of-domain queries and uncertifiable fits",
    paper_ref="service error contract (docs/SERVICE.md): bounds never "
    "extrapolate, uncertified surfaces are never built",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _em4(config: PaperConfig) -> CheckResult:
    from repro.emulator import (
        CertificationError,
        ErrorBudget,
        OutOfDomainError,
        default_bank,
        exact_values,
        fit_surface,
    )

    surface = default_bank(config).lookup("delta", "poisson", "adaptive")
    if surface is None:
        return CheckResult(float("inf"), "delta/poisson/adaptive missing")
    failures = []
    for bad in (surface.lo * 0.5, surface.hi * 2.0):
        try:
            surface.eval_scalar(bad)
            failures.append(f"eval_scalar({bad:g}) extrapolated")
        except OutOfDomainError:
            pass
        try:
            surface.evaluate([surface.lo, bad])
            failures.append(f"evaluate([... {bad:g}]) extrapolated")
        except OutOfDomainError:
            pass
    try:
        fit_surface(
            lambda xs: exact_values("delta", config, "poisson", "adaptive", xs),
            quantity="delta",
            load="poisson",
            utility="adaptive",
            xname="capacity",
            lo=surface.lo,
            hi=surface.hi,
            degree=4,
            budget=ErrorBudget(atol=1e-10),
        )
        failures.append("a degree-4 fit certified under a 1e-10 budget")
    except CertificationError:
        pass
    if failures:
        return CheckResult(float("inf"), "; ".join(failures))
    return CheckResult(0.0, "refused out-of-domain and uncertifiable as required")


@lru_cache(maxsize=2)
def _emulator_rows_2d(config: PaperConfig) -> Tuple[Tuple[str, float], ...]:
    from repro.emulator import check_bank, fit_bank

    bank = fit_bank(
        config, quantities=("delta",), loads=("poisson",), include_2d=True
    )
    return tuple(
        (row["surface"], float(row["residual"]))
        for row in check_bank(bank, config)
        if row["surface"].startswith("delta2d/")
    )


@REGISTRY.invariant(
    "EM5",
    "the 2-D delta(C, kbar) surface stays within its certified bound",
    paper_ref="S3.1 delta swept over the mean load (what-if axis)",
    engines=("batch",),
    tolerance=EMULATOR,
    suites=("deep",),
)
def _em5(config: PaperConfig) -> CheckResult:
    residual, where = worst_over_domain(_emulator_rows_2d(config))
    return CheckResult(residual, f"worst surface {where} (certified-bound units)")


# ----------------------------------------------------------------------
# L* — mean-field fluid-diffusion limits.  The fifth engine's accuracy
# claims are *limit* statements (fluid bias O(1/N), Gaussian corrections
# O(1/sqrt(N))), so the block probes them at finite populations under
# the LIMIT policy and differentially against the scalar and ensemble
# engines; see docs/MEANFIELD.md for the validity envelope.
# ----------------------------------------------------------------------


@REGISTRY.invariant(
    "L1",
    "fluid fixed point matches the exact stationary census mean",
    paper_ref="(Fayolle et al. fluid limit; census drift b(n) = 0 at E[N])",
    engines=("meanfield", "scalar"),
    tolerance=LIMIT,
)
def _l1(config: PaperConfig) -> CheckResult:
    from repro.loads import GeometricLoad
    from repro.meanfield import DriftField, solve_fixed_point
    from repro.meanfield.scaling import CANONICAL_SCALES
    from repro.simulation import BirthDeathProcess, PoissonProcess

    cases = []
    for scale in CANONICAL_SCALES:
        mean = scale.population
        for label, process in (
            ("poisson", PoissonProcess(mean)),
            ("poisson-bd", BirthDeathProcess(PoissonLoad(mean))),
            ("geometric-bd", BirthDeathProcess(GeometricLoad.from_mean(mean))),
        ):
            fp = solve_fixed_point(DriftField(process))
            # normalise per flow: the limit statement is about the
            # census *density*, so the bias budget must not grow with N
            residual = LIMIT.residual(fp.census / mean, 1.0)
            cases.append((f"{label} N={mean:g}", residual))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "L2",
    "diffusion-corrected B and R converge to the exact model as N grows",
    paper_ref="S3.1 (B(C), R(C)) in the Gaussian large-population limit",
    engines=("meanfield", "scalar"),
    tolerance=LIMIT,
)
def _l2(config: PaperConfig) -> CheckResult:
    from repro.meanfield import MeanFieldSimulator
    from repro.meanfield.scaling import CANONICAL_SCALES
    from repro.simulation import Link, PoissonProcess

    utility = config.utility("adaptive")
    cases = []
    errors_b = []
    errors_r = []
    for scale in CANONICAL_SCALES:
        mean = scale.population
        capacity = scale.capacity()
        sim = MeanFieldSimulator(PoissonProcess(mean), Link(capacity))
        got_b = float(sim.best_effort_batch(utility, [capacity])[0])
        got_r = float(sim.reservation_batch(utility, [capacity])[0])
        model = VariableLoadModel(PoissonLoad(mean), utility)
        ref_b = model.best_effort(capacity)
        ref_r = model.reservation(capacity)
        errors_b.append(abs(got_b - ref_b))
        errors_r.append(abs(got_r - ref_r))
        cases.append((f"B N={mean:g}", LIMIT.residual(got_b, ref_b)))
        cases.append((f"R N={mean:g}", LIMIT.residual(got_r, ref_r)))
    # the Gaussian closure must *improve* with N, not merely stay small
    cases.append(
        ("B error decay", monotone_residual(errors_b, increasing=False, atol=1e-4))
    )
    cases.append(
        ("R error decay", monotone_residual(errors_r, increasing=False, atol=1e-4))
    )
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "L3",
    "diffusion CIs agree with ensemble CRN runs at a matched budget",
    paper_ref="S3.1 (delta via CRN pairing) priced by the OU autocovariance",
    engines=("meanfield", "ensemble"),
    tolerance=LIMIT,
)
def _l3(config: PaperConfig) -> CheckResult:
    from repro.meanfield import MeanFieldSimulator
    from repro.simulation import Link, PoissonProcess, paired_gap

    utility = config.utility("adaptive")
    replications, horizon = 12, 200.0
    mf = MeanFieldSimulator(
        PoissonProcess(config.sim_kbar), Link(config.sim_capacity)
    ).paired_gap(
        utility, replications, horizon, warmup=config.sim_warmup
    ).summary()
    ens = paired_gap(
        PoissonProcess(config.sim_kbar),
        Link(config.sim_capacity),
        utility,
        replications,
        horizon,
        warmup=config.sim_warmup,
        seed=config.sim_seed,
    ).summary()
    cases = []
    for key in ("best_effort", "reservation", "gap"):
        # both estimates carry sampling/closure error: widen the LIMIT
        # allowance by the two CI half-widths, as MONTE_CARLO would
        allowance = LIMIT.allowance(ens[key]) + mf[f"{key}_ci"] + ens[f"{key}_ci"]
        cases.append((key, abs(mf[key] - ens[key]) / allowance))
        # the diffusion CI must price the same budget at the same
        # order of magnitude as the Welford CI it mirrors
        ratio = mf[f"{key}_ci"] / max(ens[f"{key}_ci"], 1e-12)
        cases.append((f"{key} ci ratio", bound_residual([ratio], lower=0.2, upper=5.0, atol=1.0)))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "L4",
    "mean-field gap is non-negative and decays with over-provisioning",
    paper_ref="S3.1 (R >= B; delta -> 0 as C grows past the load)",
    engines=("meanfield",),
    tolerance=LIMIT,
)
def _l4(config: PaperConfig) -> CheckResult:
    from repro.meanfield import MeanFieldSimulator
    from repro.simulation import Link, PoissonProcess

    utility = config.utility("adaptive")
    sim = MeanFieldSimulator(
        PoissonProcess(config.sim_kbar), Link(config.sim_capacity)
    )
    capacities = np.linspace(0.6 * config.sim_kbar, 2.4 * config.sim_kbar, 19)
    gaps = sim.gap_batch(utility, capacities)
    best_effort = sim.best_effort_batch(utility, capacities)
    tail = gaps[capacities >= config.sim_kbar]
    cases = [
        ("gap >= 0", bound_residual(gaps, lower=0.0, atol=1e-9)),
        ("gap tail decay", monotone_residual(tail, increasing=False, atol=1e-9)),
        ("B monotone in C", monotone_residual(best_effort, increasing=True, atol=1e-9)),
    ]
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "L5",
    "degenerate (zero-variance) fluid census reduces to the fixed-load model",
    paper_ref="S2 (fixed-load comparison) as the single-link reduction",
    engines=("meanfield", "scalar"),
    tolerance=LIMIT,
)
def _l5(config: PaperConfig) -> CheckResult:
    from repro.models.fixed_load import FixedLoadModel
    from repro.meanfield import MeanFieldSimulator
    from repro.simulation import Link, PoissonProcess

    utility = config.utility("adaptive")
    fixed = FixedLoadModel(utility)
    cases = []
    for flows, capacity in ((60.0, 40.0), (50.0, 55.0), (30.0, 80.0)):
        sim = MeanFieldSimulator(PoissonProcess(flows), Link(capacity))
        values = sim.fluid_values(utility)
        comparison = fixed.compare(flows, capacity)
        cases.append((
            f"BE m={flows:g} C={capacity:g}",
            LIMIT.residual(
                values["best_effort"] * flows, comparison.best_effort_total
            ),
        ))
        cases.append((
            f"RES m={flows:g} C={capacity:g}",
            LIMIT.residual(
                values["reservation"] * flows, comparison.reservation_total
            ),
        ))
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "T1",
    "Poisson-trace replay recovers the analytic delta",
    paper_ref="S3.1 (delta = R - B) via the streaming replay estimators",
    engines=("ensemble", "scalar"),
    tolerance=MONTE_CARLO,
)
def _t1(config: PaperConfig) -> CheckResult:
    from repro.traces.replay import sweep_occupancy
    from repro.traces.workloads import PoissonWorkload

    utility = config.utility("adaptive")
    rate = float(config.sim_kbar)
    capacity = float(config.sim_capacity)
    stream = PoissonWorkload(rate).stream(
        float(config.sim_horizon), seed=config.sim_seed
    )
    occupancy = sweep_occupancy(stream, warmup=float(config.sim_warmup))
    replay = occupancy.evaluate(utility, capacity).summary()
    model = VariableLoadModel(PoissonLoad(rate), utility)
    analytic = float(model.reservation(capacity)) - float(
        model.best_effort(capacity)
    )
    residual = MONTE_CARLO.residual(
        replay["gap"], analytic, ci_halfwidth=replay["gap_ci"]
    )
    return CheckResult(
        residual,
        f"replayed gap {replay['gap']:.3e} +/- {replay['gap_ci']:.1e} vs "
        f"analytic {analytic:.3e} over {replay['flows']} flows",
    )


@REGISTRY.invariant(
    "T2",
    "replayed-trace census distribution matches the ensemble census law",
    paper_ref="S3 (the census process P(k) underlying B and R)",
    engines=("ensemble",),
    tolerance=TIGHT,
)
def _t2(config: PaperConfig) -> CheckResult:
    from repro.simulation import (
        BirthDeathProcess,
        FlowSimulator,
        Link,
    )
    from repro.traces.format import FlowTrace
    from repro.traces.replay import sweep_occupancy
    from repro.traces.stream import stream_trace

    horizon = float(config.sim_horizon)
    warmup = float(config.sim_warmup)
    from repro.simulation.ensemble import EnsembleResult

    sim = FlowSimulator(
        BirthDeathProcess(PoissonLoad(config.sim_kbar)),
        Link(config.sim_capacity),
    )
    result = sim.run(horizon, seed=config.sim_seed)
    trace = FlowTrace.from_simulation(result)
    occupancy = sweep_occupancy(stream_trace(trace), warmup=warmup)
    values, pmf = occupancy.census_distribution()
    # the same trajectory through the ensemble engine's accounting,
    # as a single replication row
    traj = result.trajectory
    ens = EnsembleResult(
        times=traj.times[None, :],
        census=traj.census[None, :],
        admitted=traj.admitted[None, :],
        counts=np.asarray([len(traj.times)]),
        arrivals=np.zeros(1, dtype=np.int64),
        admissions=np.zeros(1, dtype=np.int64),
        capacity=float(config.sim_capacity),
        warmup=warmup,
        horizon=horizon,
    )
    ens_values, ens_pmf = ens.census_distribution()
    lookup = dict(zip((int(v) for v in ens_values), ens_pmf))
    cases = [
        (f"P({int(v)})", TIGHT.residual(p, lookup.get(int(v), 0.0)))
        for v, p in zip(values, pmf)
    ]
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "T3",
    "streamed census and replay are byte-identical to in-memory results",
    paper_ref="implementation invariant: chunking must not change results",
    engines=("ensemble",),
    tolerance=EXACT,
)
def _t3(config: PaperConfig) -> CheckResult:
    from repro.traces.census import census_samples
    from repro.traces.replay import replay_trace
    from repro.traces.stream import stream_census_samples, stream_trace
    from repro.traces.workloads import BurstyWorkload
    from repro.traces.stream import materialize

    utility = config.utility("adaptive")
    trace = materialize(
        BurstyWorkload(2.0 * config.sim_kbar).stream(
            120.0, seed=config.sim_seed
        )
    )
    capacity = float(config.sim_capacity)
    reference = replay_trace(
        trace, utility, capacity, warmup=12.0, chunk_flows=10**9
    )
    in_memory = census_samples(trace, 500, warmup=12.0, seed=config.sim_seed)
    cases = []
    for chunk_flows in (1, 137, 1000):
        streamed = stream_census_samples(
            stream_trace(trace, chunk_flows=chunk_flows),
            500,
            warmup=12.0,
            seed=config.sim_seed,
        )
        cases.append(
            (
                f"census chunk={chunk_flows}",
                0.0 if np.array_equal(streamed, in_memory) else float("inf"),
            )
        )
        chunked = replay_trace(
            trace, utility, capacity, warmup=12.0, chunk_flows=chunk_flows
        )
        identical = (
            np.array_equal(chunked.paired.best_effort, reference.paired.best_effort)
            and np.array_equal(
                chunked.paired.reservation, reference.paired.reservation
            )
            and np.array_equal(chunked.census_pmf, reference.census_pmf)
        )
        cases.append(
            (f"replay chunk={chunk_flows}", 0.0 if identical else float("inf"))
        )
    residual, where = worst_over_domain(cases)
    return CheckResult(residual, f"worst case {where}")


@REGISTRY.invariant(
    "T4",
    "provenance verify passes on a freshly frozen snapshot",
    paper_ref="reproducibility invariant: freeze -> verify must close",
    engines=("scalar",),
    tolerance=STRUCTURAL,
)
def _t4(config: PaperConfig) -> CheckResult:
    import tempfile

    from repro.provenance import freeze, verify

    spec = {
        "workload": "diurnal",
        "rate": float(config.sim_kbar) / 2.0,
        "horizon": 60.0,
        "seed": config.sim_seed,
        "chunk_flows": 1024,
        "capacity": float(config.sim_capacity) / 2.0,
        "windows": 4,
        "warmup": 10.0,
    }
    with tempfile.TemporaryDirectory() as tmp:
        freeze(
            tmp, config=config, include=("traces",), trace_specs=[spec]
        )
        report = verify(tmp, config=config)
    failed = ", ".join(c.check_id for c in report.failures) or "none"
    return CheckResult(
        0.0 if report.ok else float("inf"),
        f"{len(report.checks)} checks, failed: {failed}",
    )


def catalogue_size() -> int:
    """How many invariants this module registered."""
    return len(REGISTRY)


def fast_suite_ids() -> List[str]:
    """IDs included in the fast suite (CI's required gate)."""
    return [inv.inv_id for inv in REGISTRY.select("fast")]
