"""Verification report: the JSON/text output of a suite run.

Kept free of heavy imports on purpose: :mod:`repro.runner.cache`
serialises these reports into the content-addressed result cache, and
the report shape is part of the CLI contract (``repro-experiments
verify --json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Report format version; bump on incompatible shape changes.
REPORT_SCHEMA = "repro.verify/v1"


@dataclass(frozen=True)
class InvariantOutcome:
    """One invariant's evaluation inside a suite run.

    ``residual`` is the normalised deviation (<= 1.0 passes; see
    :mod:`repro.verify.tolerance`); ``inf`` marks an invariant whose
    check raised instead of returning.
    """

    inv_id: str
    description: str
    paper_ref: str
    engines: Tuple[str, ...]
    passed: bool
    residual: float
    tolerance: str
    detail: str
    seconds: float

    def to_dict(self) -> dict:
        """JSON-ready form (residual serialised as a float or 'inf')."""
        return {
            "id": self.inv_id,
            "description": self.description,
            "paper_ref": self.paper_ref,
            "engines": list(self.engines),
            "passed": self.passed,
            "residual": self.residual if self.residual != float("inf") else "inf",
            "tolerance": self.tolerance,
            "detail": self.detail,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InvariantOutcome":
        residual = payload["residual"]
        return cls(
            inv_id=payload["id"],
            description=payload["description"],
            paper_ref=payload["paper_ref"],
            engines=tuple(payload["engines"]),
            passed=bool(payload["passed"]),
            residual=float("inf") if residual == "inf" else float(residual),
            tolerance=payload["tolerance"],
            detail=payload["detail"],
            seconds=float(payload["seconds"]),
        )

    def row(self) -> str:
        """One formatted report line."""
        flag = "ok" if self.passed else "FAIL"
        residual = "inf" if self.residual == float("inf") else f"{self.residual:.3g}"
        return (
            f"[{self.inv_id:<24s}] {flag:<4s} residual={residual:<9s} "
            f"{self.seconds:7.3f} s  {self.description}"
        )


@dataclass(frozen=True)
class VerificationReport:
    """Every invariant outcome of one suite run."""

    suite: str
    outcomes: Tuple[InvariantOutcome, ...]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        """True when every invariant passed."""
        return all(o.passed for o in self.outcomes)

    @property
    def engines(self) -> Tuple[str, ...]:
        """Sorted union of engines the run exercised."""
        seen = set()
        for outcome in self.outcomes:
            seen.update(outcome.engines)
        return tuple(sorted(seen))

    def counts(self) -> Dict[str, int]:
        """``{"passed": ..., "failed": ...}`` tallies."""
        passed = sum(1 for o in self.outcomes if o.passed)
        return {"passed": passed, "failed": len(self.outcomes) - passed}

    def failures(self) -> List[InvariantOutcome]:
        """The failing outcomes, in evaluation order."""
        return [o for o in self.outcomes if not o.passed]

    def to_dict(self) -> dict:
        """The JSON report body (stable schema, CLI contract)."""
        return {
            "schema": REPORT_SCHEMA,
            "suite": self.suite,
            "ok": self.ok,
            "counts": self.counts(),
            "engines": list(self.engines),
            "wall_seconds": self.wall_seconds,
            "invariants": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VerificationReport":
        if payload.get("schema") != REPORT_SCHEMA:
            raise ValueError(
                f"unknown verification report schema {payload.get('schema')!r}"
            )
        return cls(
            suite=payload["suite"],
            outcomes=tuple(
                InvariantOutcome.from_dict(o) for o in payload["invariants"]
            ),
            wall_seconds=float(payload["wall_seconds"]),
        )

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [o.row() for o in self.outcomes]
        counts = self.counts()
        lines.append(
            f"-- suite {self.suite}: {counts['passed']} passed, "
            f"{counts['failed']} failed across engines "
            f"{'/'.join(self.engines)}; wall {self.wall_seconds:.3f} s"
        )
        return "\n".join(lines)
