"""Paper-derived invariant registry and cross-engine differential testing.

Breslau & Shenker's analysis is rich in provable structure — bounds,
monotonicity, the Erlang-B recursion, continuum limits, extension
identities — and this repo computes every quantity through up to four
independent engines (scalar models, batch kernels, the CRN ensemble
simulator, continuum closed forms).  This subsystem declares each
property once and holds every engine to it:

- :mod:`repro.verify.tolerance` — the central :class:`TolerancePolicy`
  (rtol/atol per quantity class, CI-halfwidth-aware for Monte Carlo)
  and the normalised-residual semantics every report uses.
- :mod:`repro.verify.registry` — :class:`Invariant` declarations and
  the suite-scoped :class:`InvariantRegistry`.
- :mod:`repro.verify.invariants` — the catalogue (~35 entries;
  importing it populates :data:`REGISTRY`).
- :mod:`repro.verify.oracles` — differential oracles comparing engines.
- :mod:`repro.verify.strategies` — Hypothesis strategies for property
  tests (the only module here that imports ``hypothesis``).
- :mod:`repro.verify.runner` — suite evaluation, cache-addressed via
  the PR-2 result cache.

CLI: ``repro-experiments verify --suite fast --json``; the catalogue
is documented in ``docs/VERIFY.md``.
"""

from repro.verify.registry import (
    ENGINES,
    REGISTRY,
    SUITES,
    CheckResult,
    Invariant,
    InvariantRegistry,
)
from repro.verify.report import InvariantOutcome, VerificationReport
from repro.verify.runner import cached_suite, run_suite
from repro.verify.tolerance import (
    EXACT,
    GOLDEN,
    LIMIT,
    MONTE_CARLO,
    STRUCTURAL,
    TIGHT,
    TolerancePolicy,
    bound_residual,
    monotone_residual,
)

__all__ = [
    "ENGINES",
    "EXACT",
    "GOLDEN",
    "LIMIT",
    "MONTE_CARLO",
    "REGISTRY",
    "STRUCTURAL",
    "SUITES",
    "TIGHT",
    "CheckResult",
    "Invariant",
    "InvariantOutcome",
    "InvariantRegistry",
    "TolerancePolicy",
    "VerificationReport",
    "bound_residual",
    "cached_suite",
    "monotone_residual",
    "run_suite",
]
