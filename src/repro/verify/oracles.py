"""Differential oracles: the same quantity through independent engines.

Each oracle computes one paper quantity through two (or more) of the
repo's computation paths — scalar models, ``*_batch`` kernels, the CRN
ensemble simulator, continuum closed forms / quadrature — and reduces
the disagreement to a single normalised residual under a
:class:`~repro.verify.tolerance.TolerancePolicy`.  The invariant
catalogue (:mod:`repro.verify.invariants`) is mostly thin declarations
over these oracles.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.experiments.params import PaperConfig
from repro.models import VariableLoadModel, erlang_b
from repro.simulation import (
    EnsembleSimulator,
    Link,
    PoissonProcess,
    ThresholdAdmission,
    paired_gap,
)
from repro.verify.tolerance import TolerancePolicy

#: Load-name x utility-name domain the paper's figures sweep.
PAPER_DOMAIN: Tuple[Tuple[str, str], ...] = tuple(
    (load, utility)
    for load in ("poisson", "exponential", "algebraic")
    for utility in ("rigid", "adaptive")
)


def verification_capacities(config: PaperConfig, count: int = 6) -> np.ndarray:
    """A small capacity grid spanning the configured figure axis.

    Quantile-spaced over ``config.capacities`` so the oracles probe
    the under-provisioned, transition and over-provisioned regimes
    without paying for the full 25-point figure sweep.
    """
    caps = np.asarray(config.capacities, dtype=float)
    picks = np.quantile(caps, np.linspace(0.0, 1.0, count))
    return np.unique(np.round(picks))


def paper_models(
    config: PaperConfig,
    domain: Iterable[Tuple[str, str]] = PAPER_DOMAIN,
) -> List[Tuple[str, VariableLoadModel]]:
    """``(label, VariableLoadModel)`` for each load x utility pair."""
    return [
        (
            f"{load}/{utility}",
            VariableLoadModel(config.load(load), config.utility(utility)),
        )
        for load, utility in domain
    ]


def worst_over_domain(
    cases: Iterable[Tuple[str, float]],
) -> Tuple[float, str]:
    """Reduce per-case residuals to (worst residual, worst-case label)."""
    worst, where = 0.0, "n/a"
    for label, residual in cases:
        if residual > worst or where == "n/a":
            worst, where = residual, label
    return worst, where


def batch_vs_scalar(
    model,
    method: str,
    grid: Sequence[float],
    policy: TolerancePolicy,
    *,
    batch_method: str = "",
) -> float:
    """Residual between ``<method>_batch(grid)`` and the scalar loop.

    The batch kernels are the *candidate* and the scalar path the
    *reference*: they were written later, against the scalar ground
    truth, and the golden-figures gate pins the scalar path.
    """
    scalar_fn = getattr(model, method)
    batch_fn = getattr(model, batch_method or f"{method}_batch")
    reference = np.asarray([scalar_fn(x) for x in grid], dtype=float)
    candidate = np.asarray(batch_fn(np.asarray(grid, dtype=float)), dtype=float)
    return policy.residual(candidate, reference)


def pointwise_vs_reference(
    candidate_fn: Callable[[float], float],
    reference_fn: Callable[[float], float],
    grid: Sequence[float],
    policy: TolerancePolicy,
) -> float:
    """Residual between two scalar functions over a shared grid."""
    candidate = np.asarray([candidate_fn(x) for x in grid], dtype=float)
    reference = np.asarray([reference_fn(x) for x in grid], dtype=float)
    return policy.residual(candidate, reference)


# ----------------------------------------------------------------------
# ensemble oracles
# ----------------------------------------------------------------------


def ensemble_gap_vs_scalar(
    config: PaperConfig,
    *,
    replications: int,
    horizon: float,
    policy: TolerancePolicy,
) -> Tuple[float, Dict[str, float]]:
    """CRN-paired simulated ``delta(C)`` against the analytic scalar value.

    Uses the config's ``sim_*`` block (M/M/inf census at ``sim_kbar``
    on a ``sim_capacity`` link, adaptive utility — the S1 validation
    scenario).  The residual is CI-halfwidth-aware: the policy's
    ``ci_multiplier`` widens the allowance by the paired estimator's
    own uncertainty.
    """
    utility = config.utility("adaptive")
    result = paired_gap(
        PoissonProcess(config.sim_kbar),
        Link(config.sim_capacity),
        utility,
        replications,
        horizon,
        warmup=config.sim_warmup,
        seed=config.sim_seed,
    )
    summary = result.summary()
    from repro.loads import PoissonLoad  # local: avoid import-cycle pressure

    analytic = VariableLoadModel(PoissonLoad(config.sim_kbar), utility)
    reference = analytic.performance_gap(config.sim_capacity)
    residual = policy.residual(
        summary["gap"], reference, ci_halfwidth=summary["gap_ci"]
    )
    return residual, {
        "simulated_gap": summary["gap"],
        "gap_ci": summary["gap_ci"],
        "analytic_gap": reference,
    }


def ensemble_architectures_vs_scalar(
    config: PaperConfig,
    *,
    replications: int,
    horizon: float,
    policy: TolerancePolicy,
) -> Tuple[float, Dict[str, float]]:
    """Simulated ``B_hat`` and ``R_hat`` against the analytic B(C), R(C)."""
    utility = config.utility("adaptive")
    result = paired_gap(
        PoissonProcess(config.sim_kbar),
        Link(config.sim_capacity),
        utility,
        replications,
        horizon,
        warmup=config.sim_warmup,
        seed=config.sim_seed + 1,
    )
    summary = result.summary()
    from repro.loads import PoissonLoad

    analytic = VariableLoadModel(PoissonLoad(config.sim_kbar), utility)
    be_ref = analytic.best_effort(config.sim_capacity)
    res_ref = analytic.reservation(config.sim_capacity)
    residual = max(
        policy.residual(
            summary["best_effort"], be_ref, ci_halfwidth=summary["best_effort_ci"]
        ),
        policy.residual(
            summary["reservation"], res_ref, ci_halfwidth=summary["reservation_ci"]
        ),
    )
    return residual, {
        "best_effort": summary["best_effort"],
        "best_effort_ref": be_ref,
        "reservation": summary["reservation"],
        "reservation_ref": res_ref,
    }


def ensemble_blocking_vs_erlang(
    *,
    rate: float,
    capacity: float,
    replications: int,
    horizon: float,
    warmup: float,
    seed: int,
    policy: TolerancePolicy,
) -> Tuple[float, Dict[str, float]]:
    """Lost-calls-cleared blocking fraction against the Erlang-B formula.

    An independent closed form the simulator was *not* built from:
    M/M/c/c blocking only depends on the offered load and server
    count, so agreement validates the event mechanics end to end.
    """
    simulator = EnsembleSimulator(
        PoissonProcess(rate),
        Link(capacity),
        ThresholdAdmission(capacity),
        lost_calls_cleared=True,
    )
    result = simulator.run(replications, horizon, warmup=warmup, seed=seed)
    arrivals = float(result.arrivals.sum())
    blocked = arrivals - float(result.admissions.sum())
    simulated = blocked / arrivals
    reference = erlang_b(int(capacity), rate)
    # binomial standard error of the blocking fraction as the CI proxy
    ci = 1.96 * float(np.sqrt(simulated * (1.0 - simulated) / arrivals))
    residual = policy.residual(simulated, reference, ci_halfwidth=ci)
    return residual, {
        "simulated_blocking": simulated,
        "erlang_b": reference,
        "arrivals": arrivals,
    }


def ensemble_determinism_residual(config: PaperConfig) -> Tuple[float, str]:
    """Two runs from the same seed must be event-for-event identical.

    The replication-stream protocol promises that a seed fully
    determines every draw; any drift (ordering, hidden global RNG
    state) breaks cache-addressing and CRN pairing silently.
    """
    simulator = EnsembleSimulator(
        PoissonProcess(config.sim_kbar), Link(config.sim_capacity)
    )

    def run():
        return simulator.run(
            4, config.sim_horizon / 4.0, warmup=0.0, seed=config.sim_seed
        )

    first, second = run(), run()
    identical = (
        np.array_equal(first.arrivals, second.arrivals)
        and np.array_equal(first.admissions, second.admissions)
        and np.array_equal(np.asarray(first.events), np.asarray(second.events))
    )
    detail = (
        f"arrivals={first.arrivals.sum():.0f} (replayed identically)"
        if identical
        else (
            f"arrivals {first.arrivals.sum():.0f} vs "
            f"{second.arrivals.sum():.0f} diverged under one seed"
        )
    )
    return (0.0 if identical else float("inf")), detail
