"""Suite runner: evaluate the catalogue, optionally through the cache.

The verification suites are deterministic functions of the
:class:`PaperConfig` and the package source, which is exactly the
contract the PR-2 result cache addresses by — so a CI re-run on an
unchanged tree serves the report from disk, and any code or config
change silently re-addresses it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.experiments.registry import Experiment
from repro.runner.cache import ResultCache
from repro.verify.report import VerificationReport


def run_suite(
    suite: str,
    config: Optional[PaperConfig] = None,
    *,
    ids: Optional[Iterable[str]] = None,
) -> VerificationReport:
    """Evaluate one suite of the invariant catalogue."""
    # importing the catalogue registers it; deferred so that importing
    # repro.verify stays cheap for non-verify CLI paths
    from repro.verify import invariants  # noqa: F401
    from repro.verify.registry import REGISTRY

    return REGISTRY.run(suite, config or DEFAULT_CONFIG, ids=ids)


def suite_experiment(suite: str) -> Experiment:
    """The cache-addressing shim for one suite.

    The ``exp_id`` carries the suite name into the cache key, and the
    digest target is :func:`run_suite` itself — so both suites address
    distinct entries under the same code fingerprint.
    """
    return Experiment(
        exp_id=f"V.{suite}",
        description=f"repro.verify {suite} suite",
        run=lambda config=None, _suite=suite: run_suite(_suite, config),
        target=run_suite,
    )


def cached_suite(
    suite: str,
    config: Optional[PaperConfig] = None,
    *,
    cache: Optional[ResultCache] = None,
    force: bool = False,
) -> Tuple[VerificationReport, bool]:
    """Run a suite through the result cache.

    Returns ``(report, from_cache)``.  Selections (``ids``) are never
    cached — a partial run must not masquerade as the full suite.
    """
    store = cache if cache is not None else ResultCache()
    exp = suite_experiment(suite)
    if not force:
        entry = store.load(exp, config)
        if entry is not None and entry.get("result_kind") == "verification":
            return VerificationReport.from_dict(entry["result"]), True
    report = run_suite(suite, config)
    store.store(exp, config, report)
    return report, False
