"""The frozen-result manifest: schema, hashing, load/save.

A *snapshot* is a directory of published result artifacts plus one
``MANIFEST.json`` describing them.  The manifest is the evidence chain:
for every artifact it records the sha256 and byte count; for the whole
set it records which config produced the numbers (``config_digest``),
which code (``code_fingerprint``, informational — it changes on every
source edit), and which commit (``git_sha``).  A ``recompute`` block
tells :func:`repro.provenance.freeze.verify` which headline numbers to
re-derive from scratch and under which tolerance they must agree.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProvenanceError
from repro.ioutils import atomic_write_text

#: Manifest format version; a verifier refuses anything else.
PROVENANCE_SCHEMA = "repro.provenance/v1"

#: File name of the manifest inside a snapshot directory.
MANIFEST_NAME = "MANIFEST.json"


def sha256_file(path: pathlib.Path, *, chunk_bytes: int = 1 << 20) -> str:
    """Streaming sha256 of a file (constant memory, any size)."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


@dataclass(frozen=True)
class Manifest:
    """Parsed ``MANIFEST.json``: artifacts, fingerprints, recompute spec."""

    schema: str
    created: str
    git_sha: str
    config_digest: str
    code_fingerprint: str
    artifacts: Dict[str, Dict[str, object]]
    recompute: Dict[str, object]

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "created": self.created,
            "git_sha": self.git_sha,
            "config_digest": self.config_digest,
            "code_fingerprint": self.code_fingerprint,
            "artifacts": self.artifacts,
            "recompute": self.recompute,
        }

    def save(self, snapshot_dir) -> pathlib.Path:
        path = pathlib.Path(snapshot_dir) / MANIFEST_NAME
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, snapshot_dir) -> "Manifest":
        path = pathlib.Path(snapshot_dir) / MANIFEST_NAME
        if not path.is_file():
            raise ProvenanceError(
                f"{snapshot_dir} is not a provenance snapshot "
                f"(no {MANIFEST_NAME})"
            )
        try:
            raw = json.loads(path.read_text())
        except ValueError as exc:
            raise ProvenanceError(f"corrupt manifest {path}: {exc}") from None
        schema = raw.get("schema")
        if schema != PROVENANCE_SCHEMA:
            raise ProvenanceError(
                f"{path}: schema {schema!r} is not {PROVENANCE_SCHEMA!r}"
            )
        for key in ("git_sha", "config_digest", "code_fingerprint", "artifacts"):
            if key not in raw:
                raise ProvenanceError(f"{path}: missing manifest key {key!r}")
        return cls(
            schema=schema,
            created=str(raw.get("created", "")),
            git_sha=str(raw["git_sha"]),
            config_digest=str(raw["config_digest"]),
            code_fingerprint=str(raw["code_fingerprint"]),
            artifacts={
                str(k): dict(v) for k, v in dict(raw["artifacts"]).items()
            },
            recompute=dict(raw.get("recompute", {})),
        )


def utc_now() -> str:
    """ISO-8601 UTC timestamp for the ``created`` field."""
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )


@dataclass(frozen=True)
class ProvenanceCheck:
    """One verification step: hash, gate predicate, or recompute."""

    check_id: str
    passed: bool
    residual: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "check_id": self.check_id,
            "passed": bool(self.passed),
            "residual": float(self.residual),
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ProvenanceReport:
    """Every check of one verification run, pass or fail."""

    snapshot: str
    checks: Tuple[ProvenanceCheck, ...]
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[ProvenanceCheck]:
        return [check for check in self.checks if not check.passed]

    def to_dict(self) -> dict:
        return {
            "snapshot": self.snapshot,
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"provenance verify: {self.snapshot}"]
        for check in self.checks:
            mark = "ok  " if check.passed else "FAIL"
            line = f"  [{mark}] {check.check_id}"
            if check.detail:
                line += f"  {check.detail}"
            lines.append(line)
        for note in self.notes:
            lines.append(f"  note: {note}")
        verdict = "PASSED" if self.ok else "FAILED"
        lines.append(
            f"{verdict}: {len(self.checks) - len(self.failures)}"
            f"/{len(self.checks)} checks passed"
        )
        return "\n".join(lines)
