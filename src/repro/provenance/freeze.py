"""Freeze published results into a snapshot; verify them by recompute.

``freeze`` collects the repository's published result surface — the
golden figure pins, the committed ``BENCH_*.json`` gate files, and
freshly computed seeded trace-replay summaries — into one snapshot
directory with a sha256 :class:`~repro.provenance.manifest.Manifest`.

``verify`` is the other half of the evidence chain: it re-hashes every
artifact, re-evaluates the bench gate predicates from the frozen JSON,
and *recomputes* the headline numbers (golden figure gaps, trace-replay
summaries) from scratch with the current code, comparing under the
PR-5 tolerance policies.  A passing verify therefore certifies both
"the bytes are the ones we published" and "today's code still produces
those numbers" — exactly what a recompute-verify CI job needs.
"""

from __future__ import annotations

import json
import pathlib
import shutil
from typing import Dict, List, Mapping, Optional, Sequence

from repro import obs
from repro.errors import ProvenanceError
from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.ioutils import atomic_write_text
from repro.obs.events import git_sha
from repro.provenance.manifest import (
    MANIFEST_NAME,
    PROVENANCE_SCHEMA,
    Manifest,
    ProvenanceCheck,
    ProvenanceReport,
    sha256_file,
    utc_now,
)
from repro.runner import code_fingerprint, config_digest
from repro.verify.tolerance import GOLDEN

#: The three freezable artifact groups.
COMPONENTS = ("golden", "bench", "traces")

#: Repository-relative source of the golden pins.
GOLDEN_SOURCE = "tests/golden/figures.json"

#: File name of the recomputable replay summaries inside a snapshot.
TRACES_SUMMARY = "traces/replay_summary.json"

#: Gate predicates re-evaluated from the *frozen* bench JSON: the
#: correctness flags each bench asserts when it runs.  Timing numbers
#: are machine-bound and are hash-verified only.
_BENCH_GATES = {
    "BENCH_batch.json": (
        "every case matches the scalar path at rtol 1e-9",
        lambda d: all(c.get("matches_rtol_1e9") for c in d.get("cases", []))
        and bool(d.get("headline", {}).get("matches_rtol_1e9")),
    ),
    "BENCH_ensemble.json": (
        "headline run has exact scalar/ensemble parity",
        lambda d: bool(d.get("headline", {}).get("exact_parity")),
    ),
    "BENCH_meanfield.json": (
        "gate-population gap estimates are CI-compatible",
        lambda d: bool(d.get("gate", {}).get("gap_compatible")),
    ),
    "BENCH_service.json": (
        "served surfaces stay inside certified residual bounds",
        lambda d: float(
            d.get("accuracy", {}).get("worst_residual_bound_units", 2.0)
        )
        <= 1.0,
    ),
    "BENCH_traces.json": (
        "streaming replay handled >= 1e6 flows at constant memory",
        lambda d: bool(d.get("headline", {}).get("constant_memory"))
        and int(d.get("headline", {}).get("flows", 0)) >= 1_000_000,
    ),
}


def _trace_summaries(
    specs: Sequence[Mapping[str, object]]
) -> Dict[str, object]:
    from repro.traces.summary import replay_summary

    return {
        "schema": "repro.provenance.traces/v1",
        "tolerance": "golden (rtol 1e-7, atol 1e-9)",
        "replays": [replay_summary(spec) for spec in specs],
    }


def freeze(
    snapshot_dir,
    *,
    source_root=".",
    config: Optional[PaperConfig] = None,
    include: Sequence[str] = COMPONENTS,
    trace_specs: Optional[Sequence[Mapping[str, object]]] = None,
) -> Manifest:
    """Build a snapshot directory + manifest from the published results.

    ``golden`` copies ``tests/golden/figures.json``; ``bench`` copies
    every committed ``BENCH_*.json``; ``traces`` computes the seeded
    replay summaries fresh (they are derived, not copied, so a freeze
    is itself a first recompute).  Absent components are skipped with a
    note in the recompute spec; asking for none of them is an error.
    """
    unknown = set(include) - set(COMPONENTS)
    if unknown:
        raise ProvenanceError(
            f"unknown components {sorted(unknown)!r}; "
            f"expected a subset of {COMPONENTS}"
        )
    if not include:
        raise ProvenanceError("nothing to freeze: empty component list")
    source_root = pathlib.Path(source_root)
    snapshot = pathlib.Path(snapshot_dir)
    snapshot.mkdir(parents=True, exist_ok=True)
    cfg = DEFAULT_CONFIG if config is None else config
    artifacts: Dict[str, Dict[str, object]] = {}
    recompute: Dict[str, object] = {}

    with obs.span("provenance.freeze", snapshot=str(snapshot)):
        if "golden" in include:
            src = source_root / GOLDEN_SOURCE
            if not src.is_file():
                raise ProvenanceError(f"golden pins not found at {src}")
            dst = snapshot / "golden" / "figures.json"
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(src, dst)
            artifacts["golden/figures.json"] = _artifact_entry(dst)
            recompute["golden"] = {
                "path": "golden/figures.json",
                "figures": ["figure2", "figure3", "figure4"],
                "quantity": "delta",
                "shared_tables": "best_effort",
            }

        if "bench" in include:
            gates: List[str] = []
            for src in sorted(source_root.glob("BENCH_*.json")):
                dst = snapshot / "bench" / src.name
                dst.parent.mkdir(parents=True, exist_ok=True)
                shutil.copyfile(src, dst)
                artifacts[f"bench/{src.name}"] = _artifact_entry(dst)
                if src.name in _BENCH_GATES:
                    gates.append(src.name)
            recompute["bench"] = {"dir": "bench", "gated": gates}

        if "traces" in include:
            specs = (
                list(trace_specs)
                if trace_specs is not None
                else [dict(s) for s in _default_specs()]
            )
            summary = _trace_summaries(specs)
            dst = snapshot / TRACES_SUMMARY
            dst.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(dst, json.dumps(summary, indent=2) + "\n")
            artifacts[TRACES_SUMMARY] = _artifact_entry(dst)
            recompute["traces"] = {"path": TRACES_SUMMARY}

        manifest = Manifest(
            schema=PROVENANCE_SCHEMA,
            created=utc_now(),
            git_sha=git_sha(),
            config_digest=config_digest(cfg),
            code_fingerprint=code_fingerprint(),
            artifacts=artifacts,
            recompute=recompute,
        )
        manifest.save(snapshot)
        if obs.enabled():
            obs.counter("provenance.freezes").inc()
            obs.counter("provenance.artifacts.frozen").inc(len(artifacts))
    return manifest


def _default_specs():
    from repro.traces.summary import DEFAULT_REPLAY_SPECS

    return DEFAULT_REPLAY_SPECS


def _artifact_entry(path: pathlib.Path) -> Dict[str, object]:
    return {"sha256": sha256_file(path), "bytes": path.stat().st_size}


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------


def _check_hashes(
    snapshot: pathlib.Path, manifest: Manifest
) -> List[ProvenanceCheck]:
    checks = []
    for rel, entry in sorted(manifest.artifacts.items()):
        path = snapshot / rel
        if not path.is_file():
            checks.append(
                ProvenanceCheck(
                    check_id=f"hash:{rel}",
                    passed=False,
                    residual=float("inf"),
                    detail="artifact missing from snapshot",
                )
            )
            continue
        digest = sha256_file(path)
        ok = digest == str(entry.get("sha256"))
        checks.append(
            ProvenanceCheck(
                check_id=f"hash:{rel}",
                passed=ok,
                residual=0.0 if ok else float("inf"),
                detail="sha256 matches"
                if ok
                else f"sha256 {digest[:12]} != manifested "
                f"{str(entry.get('sha256'))[:12]}",
            )
        )
    return checks


def _check_golden(
    snapshot: pathlib.Path, spec: Mapping[str, object], cfg: PaperConfig
) -> List[ProvenanceCheck]:
    from repro.models import VariableLoadModel

    path = snapshot / str(spec["path"])
    try:
        frozen = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [
            ProvenanceCheck(
                check_id="golden:load",
                passed=False,
                residual=float("inf"),
                detail=f"cannot read frozen golden pins: {exc}",
            )
        ]
    figure_loads = {
        "figure2": "poisson",
        "figure3": "exponential",
        "figure4": "algebraic",
    }
    checks = []
    for figure in spec.get("figures", []):
        section = frozen.get(figure)
        if section is None:
            checks.append(
                ProvenanceCheck(
                    check_id=f"golden:{figure}",
                    passed=False,
                    residual=float("inf"),
                    detail="section missing from frozen figures.json",
                )
            )
            continue
        model = VariableLoadModel(
            cfg.load(figure_loads[figure]), cfg.utility("adaptive")
        )
        capacities = section["capacity"]
        got = [model.performance_gap(c) for c in capacities]
        residual = GOLDEN.residual(got, section["delta"])
        checks.append(
            ProvenanceCheck(
                check_id=f"golden:{figure}:delta",
                passed=residual <= 1.0,
                residual=residual,
                detail=f"recomputed delta at {len(capacities)} capacities, "
                f"residual {residual:.3g}",
            )
        )
    if spec.get("shared_tables"):
        section = frozen.get("algebraic_shared_tables")
        if section is None:
            checks.append(
                ProvenanceCheck(
                    check_id="golden:algebraic_shared_tables",
                    passed=False,
                    residual=float("inf"),
                    detail="section missing from frozen figures.json",
                )
            )
        else:
            shared = VariableLoadModel(
                cfg.load("algebraic"), cfg.utility("adaptive")
            )
            got = [shared.best_effort(c) for c in section["capacity"]]
            residual = GOLDEN.residual(got, section["best_effort"])
            checks.append(
                ProvenanceCheck(
                    check_id="golden:algebraic_shared_tables:best_effort",
                    passed=residual <= 1.0,
                    residual=residual,
                    detail=f"residual {residual:.3g}",
                )
            )
    return checks


def _check_bench(
    snapshot: pathlib.Path, spec: Mapping[str, object]
) -> List[ProvenanceCheck]:
    checks = []
    for name in spec.get("gated", []):
        description, predicate = _BENCH_GATES[name]
        path = snapshot / str(spec.get("dir", "bench")) / name
        try:
            frozen = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            checks.append(
                ProvenanceCheck(
                    check_id=f"bench:{name}",
                    passed=False,
                    residual=float("inf"),
                    detail=f"cannot read frozen bench file: {exc}",
                )
            )
            continue
        try:
            ok = bool(predicate(frozen))
        except (KeyError, TypeError, ValueError) as exc:
            ok = False
            description = f"predicate unreadable ({exc})"
        checks.append(
            ProvenanceCheck(
                check_id=f"bench:{name}",
                passed=ok,
                residual=0.0 if ok else float("inf"),
                detail=description,
            )
        )
    return checks


def _check_traces(
    snapshot: pathlib.Path, spec: Mapping[str, object]
) -> List[ProvenanceCheck]:
    from repro.traces.summary import SPEC_KEYS, replay_summary

    path = snapshot / str(spec["path"])
    try:
        frozen = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [
            ProvenanceCheck(
                check_id="traces:load",
                passed=False,
                residual=float("inf"),
                detail=f"cannot read frozen replay summaries: {exc}",
            )
        ]
    checks = []
    for entry in frozen.get("replays", []):
        label = f"traces:{entry.get('workload', '?')}:seed{entry.get('seed')}"
        try:
            replay_spec = {key: entry[key] for key in SPEC_KEYS}
        except KeyError as exc:
            checks.append(
                ProvenanceCheck(
                    check_id=label,
                    passed=False,
                    residual=float("inf"),
                    detail=f"frozen summary missing spec key {exc}",
                )
            )
            continue
        fresh = replay_summary(replay_spec)
        quantities = ("best_effort", "reservation", "gap", "mean_census")
        residual = GOLDEN.residual(
            [fresh[q] for q in quantities],
            [entry[q] for q in quantities],
        )
        flows_match = int(fresh["flows"]) == int(entry["flows"])
        passed = residual <= 1.0 and flows_match
        checks.append(
            ProvenanceCheck(
                check_id=label,
                passed=passed,
                residual=residual if flows_match else float("inf"),
                detail=(
                    f"recomputed {fresh['flows']} flows, residual "
                    f"{residual:.3g}"
                    if flows_match
                    else f"flow count drifted: recomputed {fresh['flows']}, "
                    f"frozen {entry['flows']}"
                ),
            )
        )
    return checks


def verify(
    snapshot_dir, *, config: Optional[PaperConfig] = None
) -> ProvenanceReport:
    """Re-hash, re-gate and recompute one snapshot; report every check.

    Structural problems (no manifest, bad schema) raise
    :class:`~repro.errors.ProvenanceError`; *drift* — hash mismatches,
    failed gate predicates, recomputed numbers outside tolerance — is
    returned as failing checks so the whole divergence is visible in
    one run.  The config digest is re-derived and compared: frozen
    numbers are only meaningful against the config that produced them.
    """
    snapshot = pathlib.Path(snapshot_dir)
    manifest = Manifest.load(snapshot)
    cfg = DEFAULT_CONFIG if config is None else config
    checks: List[ProvenanceCheck] = []
    notes: List[str] = []

    with obs.span("provenance.verify", snapshot=str(snapshot)):
        digest = config_digest(cfg)
        config_ok = digest == manifest.config_digest
        checks.append(
            ProvenanceCheck(
                check_id="config_digest",
                passed=config_ok,
                residual=0.0 if config_ok else float("inf"),
                detail="verifying config matches the freezing config"
                if config_ok
                else f"config drifted: {digest[:12]} != frozen "
                f"{manifest.config_digest[:12]}",
            )
        )
        if code_fingerprint() != manifest.code_fingerprint:
            notes.append(
                "code fingerprint differs from freeze time (expected "
                "across commits); recompute checks below are the "
                "authoritative drift signal"
            )

        checks.extend(_check_hashes(snapshot, manifest))
        if "golden" in manifest.recompute:
            checks.extend(
                _check_golden(snapshot, manifest.recompute["golden"], cfg)
            )
        if "bench" in manifest.recompute:
            checks.extend(_check_bench(snapshot, manifest.recompute["bench"]))
        if "traces" in manifest.recompute:
            checks.extend(
                _check_traces(snapshot, manifest.recompute["traces"])
            )

        report = ProvenanceReport(
            snapshot=str(snapshot), checks=tuple(checks), notes=tuple(notes)
        )
        if obs.enabled():
            obs.counter("provenance.verifies").inc()
            obs.counter("provenance.checks.evaluated").inc(len(checks))
            if not report.ok:
                obs.counter("provenance.checks.failed").inc(
                    len(report.failures)
                )
        obs.emit(
            "provenance.verify",
            snapshot=str(snapshot),
            ok=report.ok,
            checks=len(checks),
            failed=[c.check_id for c in report.failures],
        )
    return report
