"""Frozen result provenance: sha256-manifested, recompute-verified.

Published result sets (golden figure pins, bench gate files, seeded
trace-replay summaries) are frozen into a snapshot directory with a
``MANIFEST.json`` (schema ``repro.provenance/v1``) recording the
sha256 of every artifact plus the producing config digest, package
fingerprint and git sha.  ``repro provenance verify`` then re-hashes
the artifacts, re-evaluates the bench gate predicates, and *recomputes*
the headline numbers from scratch under the PR-5 tolerance policies —
exiting nonzero on any drift.
"""

from repro.provenance.freeze import COMPONENTS, freeze, verify
from repro.provenance.manifest import (
    MANIFEST_NAME,
    PROVENANCE_SCHEMA,
    Manifest,
    ProvenanceCheck,
    ProvenanceReport,
    sha256_file,
)

__all__ = [
    "COMPONENTS",
    "MANIFEST_NAME",
    "PROVENANCE_SCHEMA",
    "Manifest",
    "ProvenanceCheck",
    "ProvenanceReport",
    "freeze",
    "sha256_file",
    "verify",
]
