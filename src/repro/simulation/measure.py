"""Measurement: scoring simulation runs against the analytic model.

Everything here consumes a :class:`~repro.simulation.simulator.SimulationResult`
and a utility function, producing the quantities the paper's static
model predicts:

- the time-weighted empirical census distribution (vs ``P(k)``),
- flow-average utilities under both sharing disciplines (vs ``B(C)``
  and ``R(C)``),
- worst-of-S-samples utilities (vs the Section 5.1 sampling model),
- the arrival-census histogram (vs the size-biased ``Q(k)``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.loads.base import LoadDistribution
from repro.simulation.simulator import SimulationResult
from repro.utility.base import UtilityFunction


def census_distribution(
    result: SimulationResult, *, use_admitted: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Time-weighted empirical census pmf after warmup.

    Returns ``(values, probabilities)`` with values the distinct census
    levels observed.  ``use_admitted`` histograms the admitted count
    instead of the full census.
    """
    if not 0.0 <= result.warmup < result.horizon:
        raise ValueError(
            "warmup must be in [0, horizon): "
            f"warmup={result.warmup!r}, horizon={result.horizon!r}"
        )
    traj = result.trajectory
    series = traj.admitted if use_admitted else traj.census
    durations = traj.segment_durations()
    # clip each segment to the measurement window [warmup, horizon]
    starts = traj.times
    ends = starts + durations
    clipped = np.minimum(ends, result.horizon) - np.maximum(starts, result.warmup)
    weights = np.maximum(0.0, clipped)
    total = weights.sum()
    if total <= 0.0:
        raise ValueError(
            "no trajectory mass in the measurement window "
            f"[warmup={result.warmup!r}, horizon={result.horizon!r}]; "
            "lengthen the run"
        )
    values, inverse = np.unique(series, return_inverse=True)
    probs = np.bincount(inverse, weights=weights, minlength=len(values)) / total
    return values, probs


def empirical_mean_census(result: SimulationResult) -> float:
    """Time-average census after warmup."""
    values, probs = census_distribution(result)
    return float(np.dot(values, probs))


def census_total_variation(
    result: SimulationResult, load: LoadDistribution, *, k_max: Optional[int] = None
) -> float:
    """Total-variation distance between empirical census and ``P(k)``.

    ``k_max`` bounds the comparison support (default: well past both
    distributions' mass).
    """
    values, probs = census_distribution(result)
    hi = k_max if k_max is not None else int(max(values.max(), 4 * load.mean)) + 1
    empirical = np.zeros(hi + 1)
    for v, p in zip(values.astype(int), probs):
        if 0 <= v <= hi:
            empirical[v] += p
    ks = np.arange(hi + 1)
    analytic = np.asarray(load.pmf_array(ks.astype(float)), dtype=float)
    if load.support_min > 0:
        analytic[: load.support_min] = 0.0
    tv = 0.5 * float(np.abs(empirical - analytic).sum())
    # mass beyond the comparison window counts fully toward TV
    tv += 0.5 * float(load.sf(hi))
    return tv


def _cumulative_utility(
    result: SimulationResult, utility: UtilityFunction, which: str
) -> np.ndarray:
    """``int_0^{times[i]} pi(C / level(s)) ds`` along the trajectory.

    ``which`` selects the sharing discipline: ``"census"`` scores the
    best-effort share ``C / N(t)``, ``"admitted"`` the reservation
    share ``C / M(t)``.
    """
    traj = result.trajectory
    levels = traj.census if which == "census" else traj.admitted
    shares = np.where(levels > 0, result.capacity / np.maximum(levels, 1.0), 0.0)
    rates = np.where(levels > 0, utility(shares), 0.0)
    segment = rates * traj.segment_durations()
    cumulative = np.concatenate(([0.0], np.cumsum(segment)))
    return cumulative  # cumulative[i] = integral up to times[i]


def _integral_between(
    result: SimulationResult,
    utility: UtilityFunction,
    cumulative: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    which: str,
) -> np.ndarray:
    """Exact integral of the piecewise-constant rate over ``[a, b]``."""
    traj = result.trajectory
    levels = traj.census if which == "census" else traj.admitted

    def eval_cum(t: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(traj.times, t, side="right") - 1
        idx = np.clip(idx, 0, len(traj.times) - 1)
        seg_levels = levels[idx]
        shares = np.where(
            seg_levels > 0, result.capacity / np.maximum(seg_levels, 1.0), 0.0
        )
        rates = np.where(seg_levels > 0, utility(shares), 0.0)
        return cumulative[idx] + rates * (t - traj.times[idx])

    return eval_cum(b) - eval_cum(a)


def mean_utilities(
    result: SimulationResult, utility: UtilityFunction
) -> Tuple[float, float]:
    """Flow-average utilities ``(best_effort, reservation)``.

    Best-effort scores every completed flow by its lifetime-average
    ``pi(C/N(t))``.  Reservation scores admitted flows by their
    lifetime-average ``pi(C/M(t))`` from admission to departure and
    never-admitted flows as zero, then averages over *all* completed
    flows — exactly the paper's accounting.
    """
    mask = result.completed_mask()
    if not mask.any():
        raise ValueError("no completed flows in the measurement window")
    flows = result.flows
    arrivals = flows.arrival[mask]
    departures = flows.departure[mask]
    durations = np.maximum(departures - arrivals, 1e-12)

    cum_be = _cumulative_utility(result, utility, "census")
    be_integral = _integral_between(
        result, utility, cum_be, arrivals, departures, "census"
    )
    best_effort = float(np.mean(be_integral / durations))

    admitted = flows.admitted[mask]
    admit_times = flows.admit_time[mask]
    reservation_scores = np.zeros(int(mask.sum()))
    if admitted.any():
        cum_res = _cumulative_utility(result, utility, "admitted")
        res_a = admit_times[admitted]
        res_b = departures[admitted]
        res_durations = np.maximum(res_b - res_a, 1e-12)
        res_integral = _integral_between(
            result, utility, cum_res, res_a, res_b, "admitted"
        )
        reservation_scores[admitted] = res_integral / res_durations
    reservation = float(np.mean(reservation_scores))
    return best_effort, reservation


def sampled_worst_utilities(
    result: SimulationResult,
    utility: UtilityFunction,
    samples: int,
    *,
    seed: Optional[int] = None,
) -> Tuple[float, float]:
    """Worst-of-S-samples scoring (the Section 5.1 picture).

    Each completed flow samples the census at ``samples`` uniform
    times in its lifetime and is scored at the worst.  Returns
    ``(best_effort, reservation)`` flow averages; reservation scores
    use the admitted count (capped census) and zero for rejected flows.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples!r}")
    mask = result.completed_mask()
    if not mask.any():
        raise ValueError("no completed flows in the measurement window")
    rng = np.random.default_rng(seed)
    flows = result.flows
    arrivals = flows.arrival[mask]
    departures = flows.departure[mask]
    n = len(arrivals)

    u = rng.random((n, samples))
    times = arrivals[:, None] + u * (departures - arrivals)[:, None]
    census = result.trajectory.value_at(times.ravel(), "census").reshape(n, samples)
    worst = census.max(axis=1)
    be_scores = utility(np.where(worst > 0, result.capacity / np.maximum(worst, 1.0), 0.0))
    be_scores = np.where(worst > 0, be_scores, 0.0)

    admitted = flows.admitted[mask]
    res_scores = np.zeros(n)
    if admitted.any():
        admit_times = flows.admit_time[mask][admitted]
        dep = departures[admitted]
        u2 = rng.random((int(admitted.sum()), samples))
        t2 = admit_times[:, None] + u2 * (dep - admit_times)[:, None]
        adm_census = result.trajectory.value_at(t2.ravel(), "admitted").reshape(
            int(admitted.sum()), samples
        )
        worst2 = adm_census.max(axis=1)
        scores = utility(
            np.where(worst2 > 0, result.capacity / np.maximum(worst2, 1.0), 0.0)
        )
        res_scores[admitted] = np.where(worst2 > 0, scores, 0.0)
    return float(np.mean(be_scores)), float(np.mean(res_scores))


def retry_adjusted_utilities(
    result: SimulationResult,
    utility: UtilityFunction,
    *,
    alpha: float = 0.1,
) -> Tuple[float, float]:
    """Flow-average utilities with the Section 5.2 retry penalty.

    Returns ``(best_effort, reservation_with_penalty)``: the best-effort
    score is unchanged (nothing blocks), while each flow's reservation
    score is its admitted-window mean utility minus ``alpha`` per failed
    admission attempt — the dynamic counterpart of the static model's
    ``R~ = ... - alpha D``.  Run the simulator with a nonzero
    ``retry_rate`` for the attempts to exist.
    """
    if alpha < 0.0:
        raise ValueError(f"alpha must be >= 0, got {alpha!r}")
    best_effort, reservation = mean_utilities(result, utility)
    mask = result.completed_mask()
    mean_failures = float(result.flows.failed_attempts[mask].mean())
    return best_effort, reservation - alpha * mean_failures


def arrival_census_distribution(
    result: SimulationResult,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of the census seen at flow arrivals (after warmup).

    Under the engineered birth-death dynamics this should match the
    *birth-rate-weighted* census, which for the M/M/inf case equals the
    plain census ``P(k)`` (PASTA) — a useful cross-check on the
    size-biased machinery.
    """
    mask = result.completed_mask()
    seen = result.flows.census_at_arrival[mask]
    if len(seen) == 0:
        raise ValueError("no completed flows in the measurement window")
    values, counts = np.unique(seen, return_counts=True)
    return values, counts / counts.sum()
