"""The flow-level discrete-event simulator.

A continuous-time Markov simulation (Gillespie-style competing
exponentials) of flows arriving to and departing from a single shared
link, under a pluggable demand process and admission policy.  The
engine records the full census trajectory and per-flow lifecycle
events; scoring against a utility function happens *after* the run
(see :mod:`repro.simulation.measure`), so one trajectory can be
evaluated under many utilities, sample counts and architectures.

The paper's static variable-load model assumes flows see the
stationary census; this simulator is the dynamic ground truth those
assumptions are tested against (Section 3's premise, Section 5.1's
sampling picture).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.errors import ModelError, SimulationBudgetError
from repro.simulation.admission import AdmissionPolicy, AdmitAll
from repro.simulation.link import Link
from repro.simulation.processes import DemandProcess
from repro.simulation.streams import GeneratorDraws, ReplicationStream


@dataclass(frozen=True)
class Trajectory:
    """Piecewise-constant census history.

    ``census[i]`` and ``admitted[i]`` hold on ``[times[i], times[i+1])``
    (the final segment extends to the horizon).
    """

    times: np.ndarray
    census: np.ndarray
    admitted: np.ndarray
    horizon: float

    def __post_init__(self):
        if not (len(self.times) == len(self.census) == len(self.admitted)):
            raise ValueError("trajectory arrays must have equal length")

    def value_at(self, t: np.ndarray, which: str = "census") -> np.ndarray:
        """Census (or admitted count) at arbitrary time points."""
        source = self.census if which == "census" else self.admitted
        idx = np.searchsorted(self.times, np.asarray(t, dtype=float), side="right") - 1
        idx = np.clip(idx, 0, len(source) - 1)
        return source[idx]

    def segment_durations(self) -> np.ndarray:
        """Length of each constant segment (last one ends at horizon)."""
        ends = np.append(self.times[1:], self.horizon)
        return np.maximum(0.0, ends - self.times)


@dataclass(frozen=True)
class FlowLog:
    """Per-flow lifecycle facts (scoring comes later).

    ``admit_time`` is NaN for never-admitted flows; for flows admitted
    on arrival it equals ``arrival``; for flows admitted on a retry (or
    promoted from the waiting list) it is the admission instant.
    ``failed_attempts`` counts rejected admission attempts — the
    initial rejection plus every failed retry (Section 5.2's ``D``).
    """

    arrival: np.ndarray
    departure: np.ndarray
    admit_time: np.ndarray
    census_at_arrival: np.ndarray
    failed_attempts: np.ndarray = None

    def __post_init__(self):
        if self.failed_attempts is None:
            object.__setattr__(
                self, "failed_attempts", np.zeros(len(self.arrival))
            )

    def __len__(self) -> int:
        return len(self.arrival)

    @property
    def admitted(self) -> np.ndarray:
        """Boolean mask of flows that ever held a reservation."""
        return ~np.isnan(self.admit_time)

    @property
    def duration(self) -> np.ndarray:
        """Flow lifetimes."""
        return self.departure - self.arrival


@dataclass(frozen=True)
class SimulationResult:
    """Everything a run produced: trajectory, flow log, run metadata.

    ``events`` is the number of executed events and ``outcome`` how the
    run ended — always ``"completed"`` for a returned result, since
    event-budget exhaustion raises
    :class:`~repro.errors.SimulationBudgetError` instead of truncating.
    """

    trajectory: Trajectory
    flows: FlowLog
    capacity: float
    warmup: float
    horizon: float
    events: int = 0
    outcome: str = "completed"

    def __post_init__(self):
        # catch bad measurement windows at construction, before any
        # downstream scorer wastes work on an empty window
        if not 0.0 <= self.warmup < self.horizon:
            raise ValueError(
                "warmup must be in [0, horizon): "
                f"warmup={self.warmup!r}, horizon={self.horizon!r}"
            )

    def completed_mask(self) -> np.ndarray:
        """Flows that both arrived after warmup and departed in-run."""
        return (self.flows.arrival >= self.warmup) & (
            self.flows.departure <= self.horizon
        )


class FlowSimulator:
    """Gillespie-style simulator of the shared-link flow population.

    Parameters
    ----------
    process:
        Demand dynamics (arrival/departure rates, batch sizes).
    link:
        The shared link (capacity).
    admission:
        Accept/reject policy at arrival (default: admit all).
    retry_rate:
        Rate at which each waiting (rejected-but-present) flow
        re-attempts admission (Section 5.2's dynamics, made explicit).
        0 disables retries; rejected flows then stay unserved until
        they depart, exactly as in the paper's basic model.
    lost_calls_cleared:
        Classic teletraffic semantics: a rejected flow leaves the
        system immediately instead of lingering unserved.  With
        :class:`~repro.simulation.processes.PoissonProcess` demand and
        a threshold of ``c`` this is exactly the M/M/c/c loss system,
        whose blocking is the Erlang-B formula
        (:func:`repro.models.erlang.erlang_b`) — the cross-check the
        tests run.  Mutually exclusive with retries/readmission.
    """

    def __init__(
        self,
        process: DemandProcess,
        link: Link,
        admission: Optional[AdmissionPolicy] = None,
        *,
        retry_rate: float = 0.0,
        lost_calls_cleared: bool = False,
    ):
        if retry_rate < 0.0:
            raise ValueError(f"retry_rate must be >= 0, got {retry_rate!r}")
        self._process = process
        self._link = link
        self._admission = admission if admission is not None else AdmitAll()
        self._retry_rate = float(retry_rate)
        self._lost_calls_cleared = bool(lost_calls_cleared)
        if self._lost_calls_cleared and (
            retry_rate > 0.0 or self._admission.readmit_waiting
        ):
            raise ModelError(
                "lost_calls_cleared is mutually exclusive with retries "
                "and readmission — a cleared call is gone"
            )

    @property
    def link(self) -> Link:
        """The shared link."""
        return self._link

    @property
    def admission(self) -> AdmissionPolicy:
        """The admission policy in force."""
        return self._admission

    def run(
        self,
        horizon: float,
        *,
        warmup: float = 0.0,
        seed: Optional[int] = None,
        stream: Optional[ReplicationStream] = None,
        initial_census: Optional[int] = None,
        max_events: int = 20_000_000,
        progress: Optional[Callable[[int, float], None]] = None,
        progress_every: int = 100_000,
    ) -> SimulationResult:
        """Simulate until ``horizon`` and return the recorded history.

        ``warmup`` marks the transient to exclude from measurements
        (recorded in the result; the measurement helpers honour it).
        ``stream`` drives the run from a
        :class:`~repro.simulation.streams.ReplicationStream` instead of
        a fresh seeded generator — the draw sequence the batched
        ensemble engine replays, so a streamed scalar run is the parity
        oracle for ensemble replications (mutually exclusive with
        ``seed``; seeded runs keep their historical bit stream).
        ``initial_census`` seeds the starting population (default: the
        demand process's mean, rounded — shortens the transient).
        ``progress``, when given, is called as ``progress(events, t)``
        every ``progress_every`` events — the liveness hook for long
        runs (it adds one modulo per event, nothing more).
        """
        if horizon <= 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon!r}")
        if not 0.0 <= warmup < horizon:
            raise ValueError(
                f"warmup must be in [0, horizon), got {warmup!r} vs {horizon!r}"
            )
        if progress is not None and progress_every < 1:
            raise ValueError(
                f"progress_every must be >= 1, got {progress_every!r}"
            )
        if stream is not None and seed is not None:
            raise ValueError("seed and stream are mutually exclusive")
        draws = stream if stream is not None else GeneratorDraws(np.random.default_rng(seed))
        draws.bind(self._process, self._admission)
        capacity = self._link.capacity

        if initial_census is None:
            mean = getattr(self._process, "mean_census", None)
            if mean is None:
                load = getattr(self._process, "load", None)
                mean = load.mean if load is not None else 0.0
            initial_census = int(round(float(mean)))

        # flow bookkeeping: parallel lists indexed by flow id
        arrivals: list = []
        departures: list = []
        admit_times: list = []
        census_at_arrival: list = []
        failed_attempts: list = []

        def new_flow(t: float, census_now: int, admitted_now: int) -> int:
            flow_id = len(arrivals)
            arrivals.append(t)
            departures.append(np.nan)
            if self._admission.admits(admitted_now, capacity):
                admit_times.append(t)
                failed_attempts.append(0)
            else:
                admit_times.append(np.nan)
                failed_attempts.append(1)
            census_at_arrival.append(census_now)
            return flow_id

        active_admitted: list = []
        active_waiting: list = []
        t = 0.0
        for _ in range(int(initial_census)):
            fid = new_flow(0.0, len(active_admitted) + len(active_waiting),
                           len(active_admitted))
            if np.isnan(admit_times[fid]):
                if self._lost_calls_cleared:
                    departures[fid] = 0.0  # cleared before the run starts
                else:
                    active_waiting.append(fid)
            else:
                active_admitted.append(fid)

        traj_t: list = [0.0]
        traj_n: list = [len(active_admitted) + len(active_waiting)]
        traj_m: list = [len(active_admitted)]

        def record_state() -> None:
            traj_t.append(t)
            traj_n.append(len(active_admitted) + len(active_waiting))
            traj_m.append(len(active_admitted))

        events = 0
        wall_start = time.perf_counter()
        while t < horizon:
            self._process.advance_to(t)
            census = len(active_admitted) + len(active_waiting)
            birth = self._process.arrival_rate(census)
            death = self._process.departure_rate(census)
            retry = self._retry_rate * len(active_waiting)
            total = birth + death + retry
            if total <= 0.0:
                raise ModelError(
                    f"demand process is absorbed at census {census} "
                    f"(zero total rate) — check the process parameters"
                )
            t += draws.waiting_time(total)
            if t >= horizon:
                break
            events += 1
            if events > max_events:
                raise SimulationBudgetError(
                    events=max_events, reached_t=t, horizon=horizon
                )
            if progress is not None and events % progress_every == 0:
                progress(events, t)
            draw = draws.classify(total)
            if draw >= birth + death:
                # a waiting flow re-attempts admission
                pick = draws.pick(len(active_waiting))
                fid = active_waiting[pick]
                if self._admission.admits(len(active_admitted), capacity):
                    active_waiting.pop(pick)
                    admit_times[fid] = t
                    active_admitted.append(fid)
                else:
                    failed_attempts[fid] += 1
                record_state()
                continue
            if draw < birth:
                batch = draws.batch(self._process)
                for _ in range(batch):
                    fid = new_flow(
                        t,
                        len(active_admitted) + len(active_waiting),
                        len(active_admitted),
                    )
                    if np.isnan(admit_times[fid]):
                        if self._lost_calls_cleared:
                            departures[fid] = t  # cleared on the spot
                        else:
                            active_waiting.append(fid)
                    else:
                        active_admitted.append(fid)
            else:
                # uniformly random active flow departs (memorylessness)
                n_adm, n_wait = len(active_admitted), len(active_waiting)
                pick = draws.pick(n_adm + n_wait)
                if pick < n_adm:
                    fid = active_admitted.pop(pick)
                    freed_reservation = True
                else:
                    fid = active_waiting.pop(pick - n_adm)
                    freed_reservation = False
                departures[fid] = t
                if (
                    freed_reservation
                    and self._admission.readmit_waiting
                    and active_waiting
                ):
                    promoted = active_waiting.pop(
                        draws.promote_pick(len(active_waiting))
                    )
                    admit_times[promoted] = t
                    active_admitted.append(promoted)
            record_state()

        # close out still-active flows at the horizon (marked incomplete
        # by departure = +inf so completed_mask excludes them)
        for fid in active_admitted + active_waiting:
            departures[fid] = np.inf

        if obs.enabled():
            wall = time.perf_counter() - wall_start
            admitted_count = sum(1 for a in admit_times if not np.isnan(a))
            obs.counter("sim.events").inc(events)
            obs.counter("sim.flows.admitted").inc(admitted_count)
            obs.counter("sim.flows.rejected").inc(len(arrivals) - admitted_count)
            obs.counter("sim.admission.failed_attempts").inc(sum(failed_attempts))
            if wall > 0.0:
                obs.gauge("sim.event_rate").set(events / wall)

        trajectory = Trajectory(
            times=np.asarray(traj_t, dtype=float),
            census=np.asarray(traj_n, dtype=float),
            admitted=np.asarray(traj_m, dtype=float),
            horizon=horizon,
        )
        flows = FlowLog(
            arrival=np.asarray(arrivals, dtype=float),
            departure=np.asarray(departures, dtype=float),
            admit_time=np.asarray(admit_times, dtype=float),
            census_at_arrival=np.asarray(census_at_arrival, dtype=float),
            failed_attempts=np.asarray(failed_attempts, dtype=float),
        )
        return SimulationResult(
            trajectory=trajectory,
            flows=flows,
            capacity=capacity,
            warmup=warmup,
            horizon=horizon,
            events=events,
            outcome="completed",
        )
