"""Ensemble Monte Carlo engine: R replications as one vectorized run.

The scalar :class:`~repro.simulation.simulator.FlowSimulator` executes
one Gillespie trajectory with per-event Python bookkeeping; answering a
statistical question ("is the simulated ``delta`` gap within the CI of
the analytic one?") needs *many* trajectories with controlled error.
This module runs R independent replications as a single numpy-batched
computation:

- **Vectorized stepping.**  Waiting times, event types and census
  updates for every active replication are computed as array
  operations per step.  Because the census-level state ``(N, M)`` is
  two integers, the full scalar event semantics (threshold admission,
  batch arrivals, departures with promotion, retries,
  lost-calls-cleared) collapse to closed-form array updates.
- **Compressed active sets.**  Replications that hit their horizon are
  compacted out, so late steps only pay for the replications still
  running.
- **Era recording.**  Trajectories land in preallocated step-major
  ndarray blocks (grow-by-doubling), replacing the scalar engine's
  per-event ``list.append``; blocks are assembled into padded
  ``(R, L)`` arrays at the end.
- **Exact parity.**  Draws come from the same per-replication
  :mod:`~repro.simulation.streams` protocol the scalar engine can
  replay, so an ensemble replication is event-for-event identical to
  ``FlowSimulator.run(stream=...)`` on the same seed child — the
  parity oracle ``benchmarks/bench_ensemble.py`` enforces.
- **CRN pairing.**  :func:`paired_gap` drives best-effort and
  reservation ensembles from the *same* seed children, so the
  simulated ``delta(C) = R(C) - B(C)`` is estimated with common random
  numbers (in the paper's basic model the two runs share the census
  trajectory exactly, leaving only admission-accounting noise).
- **Precision-targeted stopping.**  :meth:`EnsembleSimulator.run_until`
  grows the ensemble in batches until a Student-t confidence interval
  on any per-replication statistic reaches a requested half-width.

Configurations the vectorized engine cannot express (stateful demand
processes, custom admission policies) fall back to per-replication
scalar runs over the same streams — identical results, metered under
``ensemble.fallback.*``.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ModelError, SimulationBudgetError
from repro.simulation.admission import AdmissionPolicy, AdmitAll, ThresholdAdmission
from repro.simulation.link import Link
from repro.simulation.processes import DemandProcess
from repro.simulation.simulator import FlowSimulator, Trajectory
from repro.simulation.stats import AdaptiveEstimate, RunningStat
from repro.simulation.streams import (
    DEFAULT_BLOCK,
    BatchedStreams,
    ReplicationStream,
    spawn_children,
)
from repro.utility.base import UtilityFunction

#: Hard ceiling on an era buffer's step capacity; eras double up to
#: here, then roll over into fresh blocks of this size.
_MAX_ERA_STEPS = 1 << 15


@dataclass(frozen=True)
class EnsembleResult:
    """Padded trajectories and counters for R replications.

    Row ``r`` of ``times``/``census``/``admitted`` holds replication
    ``r``'s piecewise-constant history in its first ``counts[r]``
    entries; the padding is ``(horizon, 0, 0)`` so every window-clipped
    segment weight beyond the valid prefix is exactly zero and the
    measurement methods need no masking.  ``arrivals``/``admissions``
    count flows arriving (and admitted on arrival) at event times
    inside the measurement window ``[warmup, horizon]``.
    """

    times: np.ndarray
    census: np.ndarray
    admitted: np.ndarray
    counts: np.ndarray
    arrivals: np.ndarray
    admissions: np.ndarray
    capacity: float
    warmup: float
    horizon: float
    engine: str = "vectorized"
    lost_calls_cleared: bool = False

    def __post_init__(self):
        if not (
            self.times.shape
            == self.census.shape
            == self.admitted.shape
        ) or self.times.ndim != 2:
            raise ValueError("trajectory arrays must share one (R, L) shape")
        if len(self.counts) != self.times.shape[0]:
            raise ValueError("counts must have one entry per replication")
        if not 0.0 <= self.warmup < self.horizon:
            raise ValueError(
                "warmup must be in [0, horizon): "
                f"warmup={self.warmup!r}, horizon={self.horizon!r}"
            )

    @property
    def replications(self) -> int:
        """Number of replications R."""
        return int(self.times.shape[0])

    @property
    def events(self) -> np.ndarray:
        """Executed events per replication (records minus the initial)."""
        return self.counts - 1

    def trajectory(self, r: int) -> Trajectory:
        """Replication ``r`` as a scalar-engine :class:`Trajectory`."""
        c = int(self.counts[r])
        return Trajectory(
            times=self.times[r, :c].copy(),
            census=self.census[r, :c].copy(),
            admitted=self.admitted[r, :c].copy(),
            horizon=self.horizon,
        )

    def _window_weights(self) -> np.ndarray:
        """Per-segment time weights clipped to ``[warmup, horizon]``."""
        ends = np.concatenate(
            [
                self.times[:, 1:],
                np.full((self.replications, 1), self.horizon),
            ],
            axis=1,
        )
        clipped = np.minimum(ends, self.horizon) - np.maximum(
            self.times, self.warmup
        )
        return np.maximum(0.0, clipped)

    def mean_census(self) -> np.ndarray:
        """Per-replication time-average census over the window."""
        w = self._window_weights()
        mass = w.sum(axis=1)
        if not (mass > 0.0).all():
            raise ValueError(
                "a replication has no trajectory mass in the measurement "
                f"window [warmup={self.warmup!r}, horizon={self.horizon!r}]"
            )
        return (w * self.census).sum(axis=1) / mass

    def census_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        """Pooled time-weighted census pmf across all replications."""
        w = self._window_weights().ravel()
        levels = self.census.ravel()
        keep = w > 0.0
        w, levels = w[keep], levels[keep]
        if w.size == 0:
            raise ValueError("no trajectory mass in the measurement window")
        values, inverse = np.unique(levels, return_inverse=True)
        probs = np.bincount(inverse, weights=w, minlength=len(values))
        return values, probs / probs.sum()

    def utility_estimates(
        self, utility: UtilityFunction
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-replication ``(B_hat, R_hat)`` flow-average utilities.

        Both are flow-time averages — the dynamic counterpart of the
        paper's ``B(C) = sum Q(k) pi(C/k)`` with ``Q`` the size-biased
        census: a flow-average is a time average weighted by how many
        flows experience each instant.  Best-effort gives every one of
        the ``N`` present flows ``pi(C/N)``; under reservations only
        the ``M`` admitted flows score (``pi(C/M)`` each) while the
        ``N - M`` waiting rejected flows contribute zero utility but
        full flow-time, so ``R_hat`` is total admitted utility over
        total flow-time.  Lost-calls-cleared is the one mode whose
        rejected flows leave no flow-time trace (they vanish at
        arrival), so there the in-window admitted-arrival fraction
        supplies the rejected-score-zero weighting instead.
        """
        w = self._window_weights()
        be = _size_biased_utility(
            self.census, w, self.capacity, utility
        )
        if self.lost_calls_cleared:
            frac = np.where(
                self.arrivals > 0,
                self.admissions / np.maximum(self.arrivals, 1),
                1.0,
            )
            return be, frac * _size_biased_utility(
                self.admitted, w, self.capacity, utility
            )
        shares = np.where(
            self.admitted > 0, self.capacity / np.maximum(self.admitted, 1.0), 0.0
        )
        scores = np.where(self.admitted > 0, utility(shares), 0.0)
        mass = (w * self.census).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            res = (w * self.admitted * scores).sum(axis=1) / mass
        return be, np.where(mass > 0.0, res, 0.0)


def _size_biased_utility(
    levels: np.ndarray,
    weights: np.ndarray,
    capacity: float,
    utility: UtilityFunction,
) -> np.ndarray:
    """``sum(w * n * pi(C/n)) / sum(w * n)`` per replication row."""
    shares = np.where(levels > 0, capacity / np.maximum(levels, 1.0), 0.0)
    scores = np.where(levels > 0, utility(shares), 0.0)
    mass = (weights * levels).sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = (weights * levels * scores).sum(axis=1) / mass
    return np.where(mass > 0.0, out, 0.0)


@dataclass(frozen=True)
class PairedGapResult:
    """CRN-paired per-replication utility estimates and their gap."""

    best_effort: np.ndarray
    reservation: np.ndarray
    gap: np.ndarray
    level: float = 0.95

    def _stat(self, values: np.ndarray) -> Tuple[float, float]:
        stat = RunningStat()
        stat.push(values)
        return stat.mean, stat.ci_halfwidth(self.level)

    @property
    def gap_mean(self) -> float:
        """Mean simulated ``delta = R_hat - B_hat``."""
        return self._stat(self.gap)[0]

    @property
    def gap_ci(self) -> float:
        """CI half-width of the gap at ``level``."""
        return self._stat(self.gap)[1]

    def summary(self) -> dict:
        """Means and CI half-widths for all three estimates."""
        be_m, be_h = self._stat(self.best_effort)
        res_m, res_h = self._stat(self.reservation)
        gap_m, gap_h = self._stat(self.gap)
        return {
            "replications": int(len(self.gap)),
            "level": self.level,
            "best_effort": be_m,
            "best_effort_ci": be_h,
            "reservation": res_m,
            "reservation_ci": res_h,
            "gap": gap_m,
            "gap_ci": gap_h,
        }


class EnsembleSimulator:
    """Vectorized R-replication twin of :class:`FlowSimulator`.

    Accepts the same (process, link, admission, retry, clearing)
    configuration; :meth:`run` executes R replications seeded from
    ``SeedSequence.spawn`` children and returns an
    :class:`EnsembleResult`.  Configurations outside the vectorized
    engine's reach run scalar per-replication over the identical
    streams, so results never depend on which engine executed them.
    """

    def __init__(
        self,
        process: DemandProcess,
        link: Link,
        admission: Optional[AdmissionPolicy] = None,
        *,
        retry_rate: float = 0.0,
        lost_calls_cleared: bool = False,
        block: int = DEFAULT_BLOCK,
    ):
        if retry_rate < 0.0:
            raise ValueError(f"retry_rate must be >= 0, got {retry_rate!r}")
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block!r}")
        self._process = process
        self._link = link
        self._admission = admission if admission is not None else AdmitAll()
        self._retry_rate = float(retry_rate)
        self._lost_calls_cleared = bool(lost_calls_cleared)
        self._block = int(block)
        if self._lost_calls_cleared and (
            retry_rate > 0.0 or self._admission.readmit_waiting
        ):
            raise ModelError(
                "lost_calls_cleared is mutually exclusive with retries "
                "and readmission — a cleared call is gone"
            )

    @property
    def link(self) -> Link:
        """The shared link."""
        return self._link

    @property
    def admission(self) -> AdmissionPolicy:
        """The admission policy in force."""
        return self._admission

    def vectorization_fallback(self) -> Optional[str]:
        """Why the vectorized engine cannot run (None = it can).

        The array engine needs vectorized rates from a stateless demand
        process and threshold-shaped admission (``admits(m, C)`` equal
        to ``m < threshold(C)``) — true for the built-in policies, not
        checkable for arbitrary subclasses.
        """
        if self._process.is_stateful():
            return "stateful_process"
        if not getattr(self._process, "vector_rates", False):
            return "scalar_rates"
        if not isinstance(self._admission, (AdmitAll, ThresholdAdmission)):
            return "custom_admission"
        return None

    def _default_initial_census(self) -> int:
        mean = getattr(self._process, "mean_census", None)
        if mean is None:
            load = getattr(self._process, "load", None)
            mean = load.mean if load is not None else 0.0
        return int(round(float(mean)))

    def run(
        self,
        replications: int,
        horizon: float,
        *,
        warmup: float = 0.0,
        seed: Optional[int] = None,
        initial_census: Optional[int] = None,
        max_events: int = 20_000_000,
        jobs: int = 1,
    ) -> EnsembleResult:
        """Run ``replications`` independent trajectories to ``horizon``.

        ``seed`` feeds ``SeedSequence.spawn``: replication ``r`` sees
        the stream of seed child ``r`` regardless of ``jobs``, so the
        result is byte-identical whether computed inline or fanned out
        over worker processes.
        """
        if replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {replications!r}"
            )
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        children = spawn_children(
            seed if seed is not None else np.random.SeedSequence(), replications
        )
        return self._run(
            children,
            horizon,
            warmup=warmup,
            initial_census=initial_census,
            max_events=max_events,
            jobs=jobs,
        )

    def run_until(
        self,
        statistic: Callable[[EnsembleResult], np.ndarray],
        horizon: float,
        *,
        ci_halfwidth: float,
        level: float = 0.95,
        warmup: float = 0.0,
        seed: Optional[int] = None,
        initial_census: Optional[int] = None,
        max_events: int = 20_000_000,
        batch_size: int = 16,
        min_replications: int = 8,
        max_replications: int = 1024,
        jobs: int = 1,
    ) -> AdaptiveEstimate:
        """Grow the ensemble until the statistic's CI is tight enough.

        ``statistic`` maps an :class:`EnsembleResult` to one value per
        replication; batches of ``batch_size`` replications are run and
        folded into a Welford accumulator until the Student-t CI
        half-width at ``level`` drops to ``ci_halfwidth`` (with at
        least ``min_replications``) or ``max_replications`` is spent —
        the returned :class:`~repro.simulation.stats.AdaptiveEstimate`
        says which, via ``converged``.  Seeding is identical to
        :meth:`run`, so an adaptive run that stops at R replications
        saw exactly the ensemble ``run(R, ...)`` would produce.
        """
        if ci_halfwidth <= 0.0:
            raise ValueError(
                f"ci_halfwidth must be > 0, got {ci_halfwidth!r}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        if not 2 <= min_replications <= max_replications:
            raise ValueError(
                "need 2 <= min_replications <= max_replications, got "
                f"{min_replications!r} vs {max_replications!r}"
            )
        children = spawn_children(
            seed if seed is not None else np.random.SeedSequence(),
            max_replications,
        )
        stat = RunningStat()
        used = 0
        while used < max_replications:
            batch = min(batch_size, max_replications - used)
            try:
                result = self._run(
                    children[used : used + batch],
                    horizon,
                    warmup=warmup,
                    initial_census=initial_census,
                    max_events=max_events,
                    jobs=jobs,
                )
            except SimulationBudgetError as exc:
                # completed batches are paid for: surface the Welford
                # state so equal-budget comparisons can still read it
                if used > 0:
                    partial = AdaptiveEstimate(
                        mean=stat.mean,
                        ci_halfwidth=stat.ci_halfwidth(level),
                        level=level,
                        replications=used,
                        converged=False,
                        target=ci_halfwidth,
                    )
                    obs.emit(
                        "ensemble.adaptive.partial",
                        replications=used,
                        ci_halfwidth=float(partial.ci_halfwidth),
                        target=float(ci_halfwidth),
                    )
                    raise SimulationBudgetError(
                        events=exc.events,
                        reached_t=exc.reached_t,
                        horizon=exc.horizon,
                        partial=partial,
                    ) from exc
                raise
            values = np.asarray(statistic(result), dtype=float).ravel()
            if len(values) != batch:
                raise ValueError(
                    "statistic must return one value per replication: got "
                    f"{len(values)} for a batch of {batch}"
                )
            stat.push(values)
            used += batch
            stop = (
                used >= min_replications
                and stat.ci_halfwidth(level) <= ci_halfwidth
            )
            # each stopping decision is journalled so an adaptive run's
            # precision trajectory can be audited after the fact
            obs.emit(
                "ensemble.adaptive.decision",
                replications=used,
                batch=batch,
                ci_halfwidth=float(stat.ci_halfwidth(level)),
                target=float(ci_halfwidth),
                stop=stop,
            )
            if stop:
                break
        halfwidth = stat.ci_halfwidth(level)
        converged = used >= min_replications and halfwidth <= ci_halfwidth
        if obs.enabled():
            obs.counter("ensemble.adaptive.runs").inc()
            if not converged:
                obs.counter("ensemble.adaptive.budget_exhausted").inc()
        return AdaptiveEstimate(
            mean=stat.mean,
            ci_halfwidth=halfwidth,
            level=level,
            replications=used,
            converged=converged,
            target=ci_halfwidth,
        )

    # -- internal machinery -------------------------------------------

    def _run(
        self,
        children: Sequence[np.random.SeedSequence],
        horizon: float,
        *,
        warmup: float,
        initial_census: Optional[int],
        max_events: int,
        jobs: int = 1,
    ) -> EnsembleResult:
        if horizon <= 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon!r}")
        if not 0.0 <= warmup < horizon:
            raise ValueError(
                f"warmup must be in [0, horizon), got {warmup!r} vs {horizon!r}"
            )
        if jobs > 1 and len(children) > 1:
            return self._run_pooled(
                children,
                horizon,
                warmup=warmup,
                initial_census=initial_census,
                max_events=max_events,
                jobs=jobs,
            )
        fallback = self.vectorization_fallback()
        if fallback is not None:
            return self._run_scalar(
                children,
                horizon,
                warmup=warmup,
                initial_census=initial_census,
                max_events=max_events,
                reason=fallback,
            )
        return self._run_vectorized(
            children,
            horizon,
            warmup=warmup,
            initial_census=initial_census,
            max_events=max_events,
        )

    def _run_pooled(
        self,
        children: Sequence[np.random.SeedSequence],
        horizon: float,
        *,
        warmup: float,
        initial_census: Optional[int],
        max_events: int,
        jobs: int,
    ) -> EnsembleResult:
        """Fan replications over worker processes, chunk-deterministic.

        Chunks are merged in submission order (never completion order)
        and each worker isolates its own obs sinks and ships a snapshot
        home — the :func:`repro.runner.executor.run_many` discipline —
        so ``jobs > 1`` reproduces ``jobs = 1`` byte for byte.
        """
        observe = obs.enabled()
        n_chunks = min(jobs, len(children))
        bounds = np.linspace(0, len(children), n_chunks + 1).astype(int)
        wall_start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    _ensemble_worker,
                    self,
                    list(children[lo:hi]),
                    horizon,
                    warmup,
                    initial_census,
                    max_events,
                    observe,
                )
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            raws = [f.result() for f in futures]
        parts: List[EnsembleResult] = [raw["result"] for raw in raws]
        if observe and obs.enabled():
            for raw in raws:
                if raw.get("metrics"):
                    obs.registry().absorb_snapshot(raw["metrics"])
            wall = time.perf_counter() - wall_start
            total_events = int(sum(p.events.sum() for p in parts))
            if wall > 0.0:
                obs.gauge("ensemble.pooled_event_rate").set(total_events / wall)
        return _merge_results(parts)

    def _scalar_twin(self) -> FlowSimulator:
        return FlowSimulator(
            self._process,
            self._link,
            self._admission,
            retry_rate=self._retry_rate,
            lost_calls_cleared=self._lost_calls_cleared,
        )

    def _run_scalar(
        self,
        children: Sequence[np.random.SeedSequence],
        horizon: float,
        *,
        warmup: float,
        initial_census: Optional[int],
        max_events: int,
        reason: str,
    ) -> EnsembleResult:
        """Per-replication scalar runs over the ensemble's own streams."""
        if obs.enabled():
            obs.counter("ensemble.fallback.scalar").inc(len(children))
            obs.counter(f"ensemble.fallback.{reason}").inc(len(children))
        simulator = self._scalar_twin()
        trajectories: List[Trajectory] = []
        arrivals = np.zeros(len(children), dtype=np.int64)
        admissions = np.zeros(len(children), dtype=np.int64)
        for r, child in enumerate(children):
            stream = ReplicationStream(child, block=self._block)
            result = simulator.run(
                horizon,
                warmup=warmup,
                stream=stream,
                initial_census=initial_census,
                max_events=max_events,
            )
            trajectories.append(result.trajectory)
            flows = result.flows
            in_window = flows.arrival >= warmup
            on_arrival = (~np.isnan(flows.admit_time)) & (
                flows.admit_time == flows.arrival
            )
            arrivals[r] = int(in_window.sum())
            admissions[r] = int((in_window & on_arrival).sum())
        counts = np.array([len(tr.times) for tr in trajectories], dtype=np.int64)
        length = int(counts.max())
        times = np.full((len(children), length), horizon, dtype=float)
        census = np.zeros((len(children), length), dtype=float)
        admitted = np.zeros((len(children), length), dtype=float)
        for r, tr in enumerate(trajectories):
            c = counts[r]
            times[r, :c] = tr.times
            census[r, :c] = tr.census
            admitted[r, :c] = tr.admitted
        return EnsembleResult(
            times=times,
            census=census,
            admitted=admitted,
            counts=counts,
            arrivals=arrivals,
            admissions=admissions,
            capacity=self._link.capacity,
            warmup=warmup,
            horizon=horizon,
            engine="scalar",
            lost_calls_cleared=self._lost_calls_cleared,
        )

    def _run_vectorized(
        self,
        children: Sequence[np.random.SeedSequence],
        horizon: float,
        *,
        warmup: float,
        initial_census: Optional[int],
        max_events: int,
    ) -> EnsembleResult:
        """Span- and resource-profiled wrapper of the batched loop."""
        from repro.obs import resources

        with obs.span(
            "ensemble.run_vectorized", replications=len(children)
        ), resources.profile_block(
            "ensemble.run_vectorized", replications=len(children)
        ):
            return self._run_vectorized_inner(
                children,
                horizon,
                warmup=warmup,
                initial_census=initial_census,
                max_events=max_events,
            )

    def _run_vectorized_inner(
        self,
        children: Sequence[np.random.SeedSequence],
        horizon: float,
        *,
        warmup: float,
        initial_census: Optional[int],
        max_events: int,
    ) -> EnsembleResult:
        """The batched Gillespie loop; see the module docstring."""
        process = self._process
        capacity = self._link.capacity
        thr = float(self._admission.threshold(capacity))
        retry_rate = self._retry_rate
        readmit = self._admission.readmit_waiting
        cleared = self._lost_calls_cleared
        reps = len(children)
        wall_start = time.perf_counter()

        streams = BatchedStreams(
            children, process, self._admission, block=self._block
        )
        uniforms = streams.uniforms_per_event
        batch_slot = streams.batch_slot

        if initial_census is None:
            initial_census = self._default_initial_census()
        pop0 = int(initial_census)
        # sequential admission at t = 0 collapses to a closed form:
        # admits-while-below-threshold accepts ceil(thr) flows at most
        adm0 = pop0 if math.isinf(thr) else min(pop0, max(0, int(math.ceil(thr))))
        n0 = adm0 if cleared else pop0

        # compacted per-active-replication state
        rows = np.arange(reps)
        t = np.zeros(reps)
        census = np.full(reps, n0, dtype=np.int64)
        admitted = np.full(reps, adm0, dtype=np.int64)

        counts = np.ones(reps, dtype=np.int64)  # the t=0 record
        # lost-calls-cleared is the one mode whose arrival counts are
        # not recoverable from the census afterwards (cleared flows
        # never enter N), so only it pays for in-loop counters
        arrivals_win = np.zeros(reps, dtype=np.int64)
        admits_win = np.zeros(reps, dtype=np.int64)
        no_threshold = math.isinf(thr)
        # under admit-all with no retries every flow is admitted, so
        # M == N and the admitted side needs no bookkeeping at all
        track_admitted = (not no_threshold) or retry_rate > 0.0 or readmit
        general_births = cleared or (batch_slot is not None)

        # era bookkeeping: step-major blocks, one column per active row
        eras: List[tuple] = []
        cap = self._block
        t_buf = np.empty((cap, reps))
        n_buf = np.empty((cap, reps), dtype=np.int64)
        m_buf = np.empty((cap, reps), dtype=np.int64)
        step = 0  # steps recorded in the current era
        offset = 1  # record count shared by every active row at era start
        steps_total = 0

        def close_era() -> None:
            nonlocal step, offset
            if step > 0:
                eras.append((rows, offset, t_buf[:step], n_buf[:step], m_buf[:step]))
                offset += step
                step = 0
                # replication-block progress marker: one event per era,
                # so a long run's journal shows the live/active-row
                # decay without paying per-event costs
                obs.emit(
                    "ensemble.era",
                    active=int(rows.size),
                    replications=reps,
                    records=int(offset),
                    steps_total=int(steps_total),
                )

        exp_blk = streams.exp
        uni_blk = streams.uni
        with np.errstate(divide="ignore", invalid="ignore"):
            while rows.size > 0:
                if streams.ptr >= streams.block:
                    streams.refill()
                    exp_blk = streams.exp
                    uni_blk = streams.uni
                pointer = streams.ptr
                streams.ptr = pointer + 1

                birth = process.arrival_rates(census)
                death = process.departure_rates(census)
                if retry_rate > 0.0:
                    total = birth + death + retry_rate * (census - admitted)
                else:
                    total = birth + death
                t_new = t + exp_blk[:, pointer] * (1.0 / total)

                live = t_new < horizon  # False also for inf and NaN
                if not live.all():
                    finished = ~live
                    if not np.all(np.asarray(total)[finished] > 0.0):
                        level = census[finished][
                            ~(np.asarray(total)[finished] > 0.0)
                        ][0]
                        raise ModelError(
                            f"demand process is absorbed at census {int(level)} "
                            f"(zero total rate) — check the process parameters"
                        )
                    close_era()
                    counts[rows[finished]] = offset
                    rows = rows[live]
                    if rows.size == 0:
                        break
                    streams.compact(live)
                    exp_blk = streams.exp
                    uni_blk = streams.uni
                    t = t_new[live]
                    census = census[live]
                    admitted = admitted[live]
                    if np.ndim(birth) > 0:
                        birth = birth[live]
                    death = death[live]
                    total = total[live]
                    t_buf = np.empty((cap, rows.size))
                    n_buf = np.empty((cap, rows.size), dtype=np.int64)
                    m_buf = np.empty((cap, rows.size), dtype=np.int64)
                else:
                    t = t_new

                steps_total += 1
                if steps_total > max_events:
                    raise SimulationBudgetError(
                        events=max_events,
                        reached_t=float(t.min()),
                        horizon=horizon,
                    )

                base = pointer * uniforms
                draw = uni_blk[:, base] * total
                is_birth = draw < birth
                if retry_rate > 0.0:
                    is_retry = draw >= birth + death
                    is_death = ~(is_birth | is_retry)
                else:
                    is_death = ~is_birth

                if general_births:
                    # births: sequential threshold admission of a batch
                    # collapses to clip(ceil(thr - M), 0, batch)
                    if batch_slot is not None:
                        batch = process.batches_from_uniform(
                            uni_blk[:, base + batch_slot]
                        )
                    else:
                        batch = 1
                    if no_threshold:
                        n_admit = batch
                    else:
                        n_admit = np.minimum(
                            np.maximum(np.ceil(thr - admitted), 0.0), batch
                        ).astype(np.int64)
                    census = census + np.where(
                        is_birth, n_admit if cleared else batch, 0
                    )
                    if track_admitted:
                        admitted = admitted + np.where(is_birth, n_admit, 0)
                elif track_admitted:
                    # unit batch: one arrival admits iff M < thr
                    census = census + is_birth
                    admitted = admitted + (is_birth & (admitted < thr))
                else:
                    # admit-all without retries keeps M == N throughout
                    census = census + is_birth - is_death

                if track_admitted:
                    # deaths: the departing flow is uniform over the
                    # census, admitted iff its index lands below M
                    pick = np.minimum(
                        (uni_blk[:, base + 1] * census).astype(np.int64),
                        census - 1,
                    )
                    dep_admitted = is_death & (pick < admitted)
                    census = census - is_death
                    admitted = admitted - dep_admitted
                    if readmit:
                        admitted = admitted + (
                            dep_admitted & (census - admitted > 0)
                        )
                    if retry_rate > 0.0:
                        admitted = admitted + (is_retry & (admitted < thr))
                    m_buf[step] = admitted
                elif general_births:
                    census = census - is_death

                if cleared:
                    in_window = is_birth & (t >= warmup)
                    arrivals_win[rows[in_window]] += (
                        batch[in_window] if np.ndim(batch) > 0 else 1
                    )
                    admits_win[rows[in_window]] += n_admit[in_window]

                t_buf[step] = t
                n_buf[step] = census
                step += 1
                if step == cap:
                    close_era()
                    cap = min(cap * 2, _MAX_ERA_STEPS)
                    t_buf = np.empty((cap, rows.size))
                    n_buf = np.empty((cap, rows.size), dtype=np.int64)
                    m_buf = np.empty((cap, rows.size), dtype=np.int64)

        # assemble padded (R, L) arrays; every era's columns share one
        # offset, so each era lands in a single sliced fancy assignment
        length = int(counts.max())
        times = np.full((reps, length), horizon, dtype=float)
        census_out = np.zeros((reps, length), dtype=float)
        admitted_out = np.zeros((reps, length), dtype=float)
        times[:, 0] = 0.0
        census_out[:, 0] = n0
        admitted_out[:, 0] = adm0
        for era_rows, era_off, tb, nb, mb in eras:
            span = tb.shape[0]
            times[era_rows, era_off : era_off + span] = tb.T
            census_out[era_rows, era_off : era_off + span] = nb.T
            if track_admitted:
                admitted_out[era_rows, era_off : era_off + span] = mb.T
        if not track_admitted:
            admitted_out = census_out.copy()

        if not cleared:
            # arrivals are exactly the census increments at birth events
            # (only clearing discards flows before they enter N), so the
            # window counters fall out of the assembled trajectories
            d_n = np.diff(census_out, axis=1)
            d_m = np.diff(admitted_out, axis=1)
            births = (d_n > 0) & (times[:, 1:] >= warmup)
            arrivals_win = (d_n * births).sum(axis=1).astype(np.int64)
            admits_win = (d_m * births).sum(axis=1).astype(np.int64)
        if warmup == 0.0:
            arrivals_win = arrivals_win + pop0
            admits_win = admits_win + adm0

        if obs.enabled():
            wall = time.perf_counter() - wall_start
            total_events = int(counts.sum() - reps)
            obs.counter("ensemble.replications").inc(reps)
            obs.counter("ensemble.events").inc(total_events)
            if wall > 0.0:
                obs.gauge("ensemble.event_rate").set(total_events / wall)

        return EnsembleResult(
            times=times,
            census=census_out,
            admitted=admitted_out,
            counts=counts,
            arrivals=arrivals_win,
            admissions=admits_win,
            capacity=capacity,
            warmup=warmup,
            horizon=horizon,
            engine="vectorized",
            lost_calls_cleared=cleared,
        )


def _merge_results(parts: Sequence[EnsembleResult]) -> EnsembleResult:
    """Concatenate chunk results, re-padding to the widest chunk."""
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    length = max(p.times.shape[1] for p in parts)

    def pad(p: EnsembleResult, source: np.ndarray, fill: float) -> np.ndarray:
        out = np.full((source.shape[0], length), fill, dtype=float)
        out[:, : source.shape[1]] = source
        return out

    return EnsembleResult(
        times=np.concatenate([pad(p, p.times, p.horizon) for p in parts]),
        census=np.concatenate([pad(p, p.census, 0.0) for p in parts]),
        admitted=np.concatenate([pad(p, p.admitted, 0.0) for p in parts]),
        counts=np.concatenate([p.counts for p in parts]),
        arrivals=np.concatenate([p.arrivals for p in parts]),
        admissions=np.concatenate([p.admissions for p in parts]),
        capacity=first.capacity,
        warmup=first.warmup,
        horizon=first.horizon,
        engine=first.engine,
        lost_calls_cleared=first.lost_calls_cleared,
    )


def _ensemble_worker(
    simulator: EnsembleSimulator,
    children: List[np.random.SeedSequence],
    horizon: float,
    warmup: float,
    initial_census: Optional[int],
    max_events: int,
    observe: bool,
) -> dict:
    """Worker-process entry point: isolate obs, run a chunk, snapshot."""
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Tracer

    if observe:
        obs.enable(MetricsRegistry(), Tracer())
    else:
        obs.disable()
    result = simulator._run(
        children,
        horizon,
        warmup=warmup,
        initial_census=initial_census,
        max_events=max_events,
        jobs=1,
    )
    out: dict = {"result": result}
    if observe:
        out["metrics"] = obs.snapshot()
        obs.disable()
    return out


def paired_gap(
    process: DemandProcess,
    link: Link,
    utility: UtilityFunction,
    replications: int,
    horizon: float,
    *,
    warmup: float = 0.0,
    seed: Optional[int] = None,
    best_effort: Optional[AdmissionPolicy] = None,
    reservation: Optional[AdmissionPolicy] = None,
    initial_census: Optional[int] = None,
    max_events: int = 20_000_000,
    jobs: int = 1,
    block: int = DEFAULT_BLOCK,
    level: float = 0.95,
) -> PairedGapResult:
    """CRN-paired estimate of the simulated ``delta(C) = R(C) - B(C)``.

    Runs a best-effort ensemble (default :class:`AdmitAll`) and a
    reservation ensemble (default the paper's
    ``ThresholdAdmission.from_utility(utility)`` with readmission, so
    that the admitted count is exactly ``min(N, k_max)`` as the static
    model assumes) from the *same* ``SeedSequence`` children:
    replication ``r`` of both ensembles replays one stream, and since
    the census dynamics depend only on ``N`` in the paper's basic
    model, the two census trajectories coincide *exactly* — the
    per-replication gap ``R_hat_r - B_hat_r`` carries only the
    admission-accounting difference, with far lower variance than
    independent seeding would give.
    """
    be_policy = best_effort if best_effort is not None else AdmitAll()
    res_policy = (
        reservation
        if reservation is not None
        else ThresholdAdmission.from_utility(utility, readmit_waiting=True)
    )
    children = spawn_children(
        seed if seed is not None else np.random.SeedSequence(), replications
    )
    kwargs = dict(
        warmup=warmup,
        initial_census=initial_census,
        max_events=max_events,
        jobs=jobs,
    )
    be_run = EnsembleSimulator(process, link, be_policy, block=block)._run(
        children, horizon, **kwargs
    )
    res_run = EnsembleSimulator(process, link, res_policy, block=block)._run(
        children, horizon, **kwargs
    )
    be_values, _ = be_run.utility_estimates(utility)
    _, res_values = res_run.utility_estimates(utility)
    return PairedGapResult(
        best_effort=be_values,
        reservation=res_values,
        gap=res_values - be_values,
        level=level,
    )
