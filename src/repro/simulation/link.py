"""The shared link: equal-share bandwidth allocation.

The paper's single-link model splits capacity evenly among whichever
flows are transmitting: all requesting flows under best-effort, the
admitted subset under reservations.  This class keeps that arithmetic
(and its edge cases) in one place so both the simulator and ad-hoc
analyses agree on it.
"""

from __future__ import annotations

from repro.utility.base import UtilityFunction


class Link:
    """A single bottleneck link of fixed capacity."""

    def __init__(self, capacity: float):
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self._capacity = float(capacity)

    @property
    def capacity(self) -> float:
        """Total link bandwidth ``C``."""
        return self._capacity

    def share(self, transmitting: int) -> float:
        """Equal bandwidth share with ``transmitting`` active flows.

        Zero flows get the whole link "each" by convention — the value
        is never used because there is no flow to score.
        """
        if transmitting < 0:
            raise ValueError(f"flow count must be >= 0, got {transmitting!r}")
        if transmitting == 0:
            return self._capacity
        return self._capacity / transmitting

    def instantaneous_utility(
        self, utility: UtilityFunction, transmitting: int
    ) -> float:
        """``pi(C / k)`` for each of ``k`` equal-share flows."""
        if transmitting <= 0:
            return 0.0
        return utility.value(self.share(transmitting))

    def __repr__(self) -> str:
        return f"Link(capacity={self._capacity!r})"
