"""Replication randomness: draw protocols shared by both engines.

The scalar :class:`~repro.simulation.simulator.FlowSimulator` and the
batched :mod:`~repro.simulation.ensemble` engine must be able to
consume *exactly the same* random numbers so that an ensemble
replication is event-for-event identical to a scalar run — that is the
parity oracle the ensemble's speedup is verified against, and the
mechanism behind common-random-number (CRN) pairing.

Two draw sources implement one engine-facing protocol:

- :class:`GeneratorDraws` wraps a ``numpy.random.Generator`` with the
  simulator's historical draw sequence (``exponential``, ``random``,
  ``integers``), so seeded runs reproduce pre-stream trajectories
  bit-for-bit.
- :class:`ReplicationStream` serves draws from fixed-size blocks with
  a *constant per-event layout*: every event consumes one standard
  exponential plus ``U`` uniforms (classification, pick, optional
  batch size, optional promotion pick), whether or not each slot is
  used.  The constant layout is what lets the ensemble engine advance
  one shared block pointer for every replication at once.

Streams are seeded through :class:`numpy.random.SeedSequence` children
(``SeedSequence(seed).spawn(R)``), so an ensemble is reproducible for
any replication count and embarrassingly parallel: worker ``w`` can
rebuild exactly its slice of streams from the root seed alone.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence]

#: Draws buffered per refill: one generator call per ``DEFAULT_BLOCK``
#: events amortises RNG overhead without hoarding memory.
DEFAULT_BLOCK = 512


def spawn_children(
    seed: SeedLike, replications: int
) -> List[np.random.SeedSequence]:
    """Independent per-replication seed children of one root seed.

    ``SeedSequence.spawn`` is deterministic: child ``r`` depends only
    on ``(seed, r)``, so any worker process can reconstruct its slice
    of an ensemble's streams from the root seed.
    """
    if replications < 0:
        raise ValueError(f"replications must be >= 0, got {replications!r}")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return root.spawn(replications)


def spawn_streams(
    seed: SeedLike, replications: int, *, block: int = DEFAULT_BLOCK
) -> List["ReplicationStream"]:
    """One :class:`ReplicationStream` per replication from a root seed."""
    return [
        ReplicationStream(child, block=block)
        for child in spawn_children(seed, replications)
    ]


def event_layout(process, admission) -> dict:
    """The per-event draw layout for a (process, admission) pair.

    Slot 0 is the event-type classification uniform, slot 1 the
    departure/retry pick, slot 2 the promotion pick (reserved whether
    or not the admission policy readmits), and slot 3 the batch-size
    draw for batch-arrival processes.  The layout deliberately depends
    only on the *process*: two runs of the same demand under different
    admission policies then consume identical draws, so CRN-paired
    best-effort/reservation ensembles share their census trajectory
    exactly in the paper's basic model.
    """
    del admission  # layout is admission-independent by design (CRN)
    uses_batch = bool(getattr(process, "uses_batch_draw", False))
    return {
        "uniforms": 3 + int(uses_batch),
        "batch_slot": 3 if uses_batch else None,
        "promote_slot": 2,
    }


class GeneratorDraws:
    """Legacy draw source: the simulator's historical RNG sequence.

    ``waiting_time`` consumes one ``Generator.exponential`` draw,
    ``classify`` one ``Generator.random`` and the picks one bounded
    ``Generator.integers`` each — exactly the calls (and therefore the
    bit stream) the pre-ensemble engine made, so existing seeds keep
    producing identical trajectories.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def bind(self, process, admission) -> None:
        """No-op: the legacy source draws lazily, per use."""

    def waiting_time(self, total: float) -> float:
        return float(self._rng.exponential(1.0 / total))

    def classify(self, total: float) -> float:
        return float(self._rng.random()) * total

    def pick(self, n: int) -> int:
        return int(self._rng.integers(n))

    def batch(self, process) -> int:
        return int(process.batch_size(self._rng))

    def promote_pick(self, n: int) -> int:
        return int(self._rng.integers(n))


class ReplicationStream:
    """Block-buffered draw source with a constant per-event layout.

    The underlying generator is consumed in a deterministic block
    order — a block of standard exponentials, then a block of event
    uniforms, repeating — so the batched ensemble engine can refill
    one row of its shared buffers with the very same generator calls
    and read the very same values this stream would serve scalar-side.

    A stream is single-use: it must be bound to one (process,
    admission) configuration before the first draw and feeds exactly
    one run.
    """

    def __init__(self, seed: SeedLike, *, block: int = DEFAULT_BLOCK):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block!r}")
        self.seed_sequence = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._gen = np.random.default_rng(self.seed_sequence)
        self._block = int(block)
        self._exp_buf: Optional[np.ndarray] = None
        self._exp_ptr = 0
        self._uni_buf: Optional[np.ndarray] = None
        self._uni_ptr = 0
        self._uniforms_per_event = 0
        self._batch_slot: Optional[int] = None
        self._promote_slot: Optional[int] = None
        self._event: Optional[np.ndarray] = None
        self._bound = False
        self._started = False

    @property
    def block(self) -> int:
        """Draws buffered per refill."""
        return self._block

    def bind(self, process, admission) -> None:
        """Fix the per-event draw layout for one (process, admission).

        Binding twice with a different layout would silently desync the
        stream from its ensemble twin, so rebinding a started stream is
        an error.
        """
        layout = event_layout(process, admission)
        if self._started and layout["uniforms"] != self._uniforms_per_event:
            raise RuntimeError(
                "ReplicationStream already consumed draws under a different "
                "event layout; streams are single-use"
            )
        self._uniforms_per_event = layout["uniforms"]
        self._batch_slot = layout["batch_slot"]
        self._promote_slot = layout["promote_slot"]
        self._bound = True

    def waiting_time(self, total: float) -> float:
        """One standard-exponential draw scaled to the current rate."""
        if not self._bound:
            raise RuntimeError("ReplicationStream.bind must be called before use")
        self._started = True
        if self._exp_buf is None or self._exp_ptr >= self._exp_buf.size:
            self._exp_buf = self._gen.standard_exponential(self._block)
            self._exp_ptr = 0
        z = self._exp_buf[self._exp_ptr]
        self._exp_ptr += 1
        return float(z) * (1.0 / total)

    def classify(self, total: float) -> float:
        """Pop this event's uniform slots; return the type draw."""
        if self._uni_buf is None or self._uni_ptr >= self._uni_buf.size:
            self._uni_buf = self._gen.random(self._block * self._uniforms_per_event)
            self._uni_ptr = 0
        end = self._uni_ptr + self._uniforms_per_event
        self._event = self._uni_buf[self._uni_ptr : end]
        self._uni_ptr = end
        return float(self._event[0]) * total

    def pick(self, n: int) -> int:
        """Uniform index in ``[0, n)`` from this event's pick slot."""
        return min(int(float(self._event[1]) * n), n - 1)

    def batch(self, process) -> int:
        """Arrival batch size from this event's batch slot."""
        if self._batch_slot is None:
            return 1
        return int(process.batch_from_uniform(float(self._event[self._batch_slot])))

    def promote_pick(self, n: int) -> int:
        """Uniform index in ``[0, n)`` from this event's promotion slot."""
        u = float(self._event[self._promote_slot])
        return min(int(u * n), n - 1)


class BatchedStreams:
    """The ensemble twin: per-replication blocks, one shared pointer.

    Row ``r`` is refilled with exactly the generator calls
    :class:`ReplicationStream` would make for seed child ``r`` — a
    block of standard exponentials, then a block of event uniforms —
    so ``exp[r, p]`` and ``uni[r, p*U + s]`` are bit-identical to the
    scalar stream's ``p``-th event draws.  Because every event consumes
    a fixed number of draws, all active replications share the same
    block position, and per-step access is a plain column slice (a
    view, no gather).  Replications that hit their horizon are
    :meth:`compact`-ed away; surviving rows keep their generators, so
    late blocks only pay for the replications still running.
    """

    def __init__(
        self,
        children: Sequence[np.random.SeedSequence],
        process,
        admission,
        *,
        block: int = DEFAULT_BLOCK,
    ):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block!r}")
        layout = event_layout(process, admission)
        self.uniforms_per_event = layout["uniforms"]
        self.batch_slot = layout["batch_slot"]
        self.promote_slot = layout["promote_slot"]
        self.block = int(block)
        self._gens = [np.random.default_rng(child) for child in children]
        n = len(self._gens)
        self.exp = np.empty((n, self.block))
        self.uni = np.empty((n, self.block * self.uniforms_per_event))
        self.ptr = self.block  # force a refill on first use

    def refill(self) -> None:
        """Refill every live row's blocks (exponentials, then uniforms)."""
        u_len = self.block * self.uniforms_per_event
        for r, gen in enumerate(self._gens):
            self.exp[r] = gen.standard_exponential(self.block)
            self.uni[r] = gen.random(u_len)
        self.ptr = 0

    def compact(self, live: np.ndarray) -> None:
        """Drop finished rows; survivors keep their order and draws."""
        self._gens = [g for g, keep in zip(self._gens, live) if keep]
        self.exp = self.exp[live]
        self.uni = self.uni[live]
