"""Holding-time (flow duration) distributions for the M/G/inf engine.

The Gillespie engine assumes exponential holding times (memorylessness
lets departures pick a uniformly random flow).  Real session lengths
are famously not exponential — they are heavy-tailed.  The calendar
engine in :class:`~repro.simulation.general.GeneralHoldingSimulator`
accepts any of these distributions and demonstrates the classical
*insensitivity* result: with Poisson arrivals the stationary census is
Poisson(rate x mean holding) no matter which of them you pick — solid
ground under the paper's Poisson load case.
"""

from __future__ import annotations

import abc
import math

import numpy as np


class HoldingTime(abc.ABC):
    """A positive flow-duration distribution."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected duration."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` iid durations."""


class ExponentialHolding(HoldingTime):
    """Exponential durations — the memoryless baseline."""

    def __init__(self, mean: float = 1.0):
        if mean <= 0.0:
            raise ValueError(f"mean duration must be > 0, got {mean!r}")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self._mean, size=size)

    def __repr__(self) -> str:
        return f"ExponentialHolding(mean={self._mean!r})"


class DeterministicHolding(HoldingTime):
    """Fixed durations — the opposite extreme from heavy tails."""

    def __init__(self, duration: float = 1.0):
        if duration <= 0.0:
            raise ValueError(f"duration must be > 0, got {duration!r}")
        self._duration = float(duration)

    @property
    def mean(self) -> float:
        return self._duration

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self._duration)

    def __repr__(self) -> str:
        return f"DeterministicHolding(duration={self._duration!r})"


class ParetoHolding(HoldingTime):
    """Pareto durations — heavy-tailed session lengths.

    ``P(T > t) = (t_min/t)^shape`` for ``t >= t_min``; needs
    ``shape > 1`` for a finite mean ``t_min shape/(shape-1)``.
    """

    def __init__(self, shape: float = 1.5, t_min: float = 1.0):
        if shape <= 1.0:
            raise ValueError(f"shape must be > 1 for a finite mean, got {shape!r}")
        if t_min <= 0.0:
            raise ValueError(f"t_min must be > 0, got {t_min!r}")
        self._shape = float(shape)
        self._t_min = float(t_min)

    @property
    def shape(self) -> float:
        """Tail exponent of the survival function."""
        return self._shape

    @property
    def mean(self) -> float:
        return self._t_min * self._shape / (self._shape - 1.0)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        u = rng.random(size)
        return self._t_min * (1.0 - u) ** (-1.0 / self._shape)

    def __repr__(self) -> str:
        return f"ParetoHolding(shape={self._shape!r}, t_min={self._t_min!r})"


class LogNormalHolding(HoldingTime):
    """Log-normal durations — the classic telephony/session-length fit."""

    def __init__(self, mean: float = 1.0, sigma: float = 1.0):
        if mean <= 0.0:
            raise ValueError(f"mean duration must be > 0, got {mean!r}")
        if sigma <= 0.0:
            raise ValueError(f"sigma must be > 0, got {sigma!r}")
        self._mean = float(mean)
        self._sigma = float(sigma)
        # choose mu so that E[T] = exp(mu + sigma^2/2) equals mean
        self._mu = math.log(self._mean) - 0.5 * self._sigma**2

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self._mu, self._sigma, size=size)

    def __repr__(self) -> str:
        return f"LogNormalHolding(mean={self._mean!r}, sigma={self._sigma!r})"
