"""Event queue for the flow-level simulator.

A small binary-heap calendar: events carry a time, a monotonically
increasing sequence number (stable FIFO order for simultaneous events)
and an opaque payload.  The general-holding-time engines schedule each
flow's departure here; the birth-death engine does not need a calendar
(competing exponentials are memoryless) but shares the event types for
uniform tracing.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.Enum):
    """What happened at an event instant."""

    ARRIVAL = "arrival"
    DEPARTURE = "departure"
    SESSION = "session"


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled simulation event, ordered by (time, seq)."""

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Binary-heap event calendar with stable ordering."""

    def __init__(self):
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns it (useful for cancellation sets)."""
        if time < 0.0:
            raise ValueError(f"event time must be >= 0, got {time!r}")
        event = Event(time=time, seq=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """Earliest event without removing it, or None when empty."""
        return self._heap[0] if self._heap else None
