"""Calendar-driven M/G/inf simulator: general holding times.

The Gillespie engine needs memoryless departures; this engine runs on
the event calendar instead, so flow durations can follow *any*
distribution.  Its purpose is the classical insensitivity check: with
Poisson arrivals, the stationary census is Poisson(rate x E[T])
whatever the holding-time law — so the paper's Poisson load case does
not secretly depend on exponential session lengths.  (Admission
control is supported so the R(C) side can be checked too.)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.simulation.admission import AdmissionPolicy, AdmitAll
from repro.simulation.events import EventKind, EventQueue
from repro.simulation.holding import HoldingTime
from repro.simulation.link import Link
from repro.simulation.simulator import FlowLog, SimulationResult, Trajectory


class GeneralHoldingSimulator:
    """Poisson arrivals, arbitrary holding times, shared link.

    Parameters
    ----------
    arrival_rate:
        Poisson flow arrival rate.
    holding:
        Flow-duration distribution.
    link:
        The shared link.
    admission:
        Accept/reject policy at arrival (default admit-all).
    """

    def __init__(
        self,
        arrival_rate: float,
        holding: HoldingTime,
        link: Link,
        admission: Optional[AdmissionPolicy] = None,
    ):
        if arrival_rate <= 0.0:
            raise ModelError(f"arrival rate must be > 0, got {arrival_rate!r}")
        self._rate = float(arrival_rate)
        self._holding = holding
        self._link = link
        self._admission = admission if admission is not None else AdmitAll()

    @property
    def mean_census(self) -> float:
        """``rate * E[T]`` — the insensitivity prediction."""
        return self._rate * self._holding.mean

    def run(
        self,
        horizon: float,
        *,
        warmup: float = 0.0,
        seed: Optional[int] = None,
        max_events: int = 20_000_000,
    ) -> SimulationResult:
        """Simulate to ``horizon`` via the event calendar."""
        if horizon <= 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon!r}")
        if not 0.0 <= warmup < horizon:
            raise ValueError(
                f"warmup must be in [0, horizon), got {warmup!r} vs {horizon!r}"
            )
        rng = np.random.default_rng(seed)
        capacity = self._link.capacity

        queue = EventQueue()
        queue.push(rng.exponential(1.0 / self._rate), EventKind.ARRIVAL)

        arrivals: list = []
        departures: list = []
        admit_times: list = []
        census_at_arrival: list = []

        active_admitted = 0
        active_waiting = 0
        traj_t = [0.0]
        traj_n = [0.0]
        traj_m = [0.0]

        events = 0
        while queue:
            event = queue.pop()
            t = event.time
            if t >= horizon:
                break
            events += 1
            if events > max_events:
                raise ModelError(
                    f"exceeded {max_events} events before the horizon; "
                    "reduce horizon or raise max_events"
                )
            if event.kind is EventKind.ARRIVAL:
                census = active_admitted + active_waiting
                arrivals.append(t)
                census_at_arrival.append(census)
                duration = float(self._holding.sample(rng, 1)[0])
                departures.append(t + duration)
                if self._admission.admits(active_admitted, capacity):
                    admit_times.append(t)
                    active_admitted += 1
                    admitted_flag = True
                else:
                    admit_times.append(np.nan)
                    active_waiting += 1
                    admitted_flag = False
                queue.push(t + duration, EventKind.DEPARTURE, payload=admitted_flag)
                queue.push(
                    t + rng.exponential(1.0 / self._rate), EventKind.ARRIVAL
                )
            else:  # departure
                if event.payload:
                    active_admitted -= 1
                else:
                    active_waiting -= 1
            traj_t.append(t)
            traj_n.append(float(active_admitted + active_waiting))
            traj_m.append(float(active_admitted))

        # flows still active at the horizon are incomplete
        departures = [d if d <= horizon else np.inf for d in departures]

        trajectory = Trajectory(
            times=np.asarray(traj_t, dtype=float),
            census=np.asarray(traj_n, dtype=float),
            admitted=np.asarray(traj_m, dtype=float),
            horizon=horizon,
        )
        flows = FlowLog(
            arrival=np.asarray(arrivals, dtype=float),
            departure=np.asarray(departures, dtype=float),
            admit_time=np.asarray(admit_times, dtype=float),
            census_at_arrival=np.asarray(census_at_arrival, dtype=float),
        )
        return SimulationResult(
            trajectory=trajectory,
            flows=flows,
            capacity=capacity,
            warmup=warmup,
            horizon=horizon,
        )
