"""Flow-level discrete-event simulation substrate.

The paper's variable-load model assumes flows experience a stationary
census; this subpackage provides the dynamics that assumption abstracts
away, so it can be validated (and stressed) empirically:

- :class:`FlowSimulator` — Gillespie-style CTMC engine over a shared
  link with pluggable demand and admission.
- demand processes: :class:`BirthDeathProcess` (exact target census for
  any ``P(k)``), :class:`PoissonProcess` (M/M/inf),
  :class:`ParetoBatchProcess` (bursty, heavy-tailed census).
- admission: :class:`AdmitAll` (best-effort-only),
  :class:`ThresholdAdmission` (reservation-capable at ``k_max(C)``).
- measurement: census distributions, flow-average utilities, and
  worst-of-S-samples scoring, all comparable 1:1 with the analytic
  model's ``B(C)``, ``R(C)`` and the Section 5.1 extension.
- ensembles: :class:`EnsembleSimulator` runs R replications as one
  vectorized computation with per-replication ``SeedSequence`` streams,
  CRN-paired gap estimation (:func:`paired_gap`) and CI-targeted
  adaptive stopping (``run_until``).
"""

from repro.simulation.admission import AdmissionPolicy, AdmitAll, ThresholdAdmission
from repro.simulation.ensemble import (
    EnsembleResult,
    EnsembleSimulator,
    PairedGapResult,
    paired_gap,
)
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.general import GeneralHoldingSimulator
from repro.simulation.holding import (
    DeterministicHolding,
    ExponentialHolding,
    HoldingTime,
    LogNormalHolding,
    ParetoHolding,
)
from repro.simulation.link import Link
from repro.simulation.measure import (
    arrival_census_distribution,
    census_distribution,
    census_total_variation,
    empirical_mean_census,
    mean_utilities,
    retry_adjusted_utilities,
    sampled_worst_utilities,
)
from repro.simulation.processes import (
    BirthDeathProcess,
    DemandProcess,
    ParetoBatchProcess,
    PoissonProcess,
    RegimeSwitchingProcess,
)
from repro.simulation.simulator import (
    FlowLog,
    FlowSimulator,
    SimulationResult,
    Trajectory,
)
from repro.simulation.stats import AdaptiveEstimate, RunningStat
from repro.simulation.streams import (
    GeneratorDraws,
    ReplicationStream,
    spawn_children,
    spawn_streams,
)

__all__ = [
    "AdaptiveEstimate",
    "AdmissionPolicy",
    "AdmitAll",
    "BirthDeathProcess",
    "DemandProcess",
    "EnsembleResult",
    "EnsembleSimulator",
    "Event",
    "EventKind",
    "EventQueue",
    "GeneratorDraws",
    "DeterministicHolding",
    "ExponentialHolding",
    "FlowLog",
    "FlowSimulator",
    "GeneralHoldingSimulator",
    "HoldingTime",
    "LogNormalHolding",
    "ParetoHolding",
    "Link",
    "PairedGapResult",
    "ParetoBatchProcess",
    "PoissonProcess",
    "RegimeSwitchingProcess",
    "ReplicationStream",
    "RunningStat",
    "SimulationResult",
    "ThresholdAdmission",
    "Trajectory",
    "arrival_census_distribution",
    "census_distribution",
    "census_total_variation",
    "empirical_mean_census",
    "mean_utilities",
    "paired_gap",
    "retry_adjusted_utilities",
    "sampled_worst_utilities",
    "spawn_children",
    "spawn_streams",
]
