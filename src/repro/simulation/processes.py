"""Flow demand processes for the simulator.

The paper deliberately refuses to commit to arrival dynamics — it
models only the stationary census ``P(k)``.  The simulator closes that
gap from both ends:

- :class:`BirthDeathProcess` *engineers* dynamics whose stationary
  census is **exactly** a requested ``P(k)``: flows depart individually
  at rate ``mu`` and arrive at the state-dependent rate
  ``lambda_k = mu (k+1) P(k+1) / P(k)`` (detailed balance).  For the
  Poisson census this reduces to the familiar M/M/inf constant arrival
  rate; for the algebraic census the births are self-exciting — crowds
  attract crowds — which is exactly the flavour of correlation the
  self-similarity literature cited by the paper reports.
- :class:`PoissonProcess` and :class:`ParetoBatchProcess` go the other
  way: plausible traffic generators whose *measured* census can then be
  fed back into the analytic model.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from repro.loads.base import LoadDistribution


class DemandProcess(abc.ABC):
    """Interface the simulation engines drive demand through."""

    #: True when :meth:`batch_size` consumes one uniform per arrival
    #: (the stream-driven engines then reserve a draw slot for it).
    uses_batch_draw: bool = False

    #: True when :meth:`arrival_rates`/:meth:`departure_rates` are
    #: genuinely vectorised; the base-class fallbacks loop over the
    #: scalar methods and the ensemble engine meters their use under
    #: ``ensemble.fallback.vector_rates``.
    vector_rates: bool = False

    @abc.abstractmethod
    def arrival_rate(self, census: int) -> float:
        """Instantaneous flow arrival rate given the current census."""

    @abc.abstractmethod
    def departure_rate(self, census: int) -> float:
        """Aggregate flow departure rate given the current census."""

    @abc.abstractmethod
    def batch_size(self, rng: np.random.Generator) -> int:
        """Number of flows arriving together at an arrival instant."""

    def batch_from_uniform(self, u: float) -> int:
        """Batch size as a deterministic function of one uniform draw.

        The stream-driven engines (scalar-with-stream and the batched
        ensemble) route all randomness through explicit uniforms so
        replications are reproducible and pairable; processes that
        arrive in batches override this together with
        ``uses_batch_draw = True``.
        """
        return 1

    def batches_from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`batch_from_uniform` (one value per draw)."""
        return np.ones(np.shape(u), dtype=np.int64)

    def arrival_rates(self, census: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`arrival_rate` over a census array.

        Fallback implementation loops over the scalar method; concrete
        time-homogeneous processes override with array expressions.
        """
        return np.array(
            [self.arrival_rate(int(k)) for k in np.asarray(census)], dtype=float
        )

    def departure_rates(self, census: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`departure_rate` over a census array."""
        return np.array(
            [self.departure_rate(int(k)) for k in np.asarray(census)], dtype=float
        )

    def advance_to(self, t: float) -> None:
        """Advance internal (wall-clock) state to simulation time ``t``.

        No-op for time-homogeneous processes; regime-switching demand
        overrides it to move its modulator.  The engine calls this once
        per event before querying rates, so modulator dynamics are
        resolved at event granularity (exact when regime dwell times
        are long against the event spacing).
        """

    def is_stateful(self) -> bool:
        """True when the process mutates internal state during a run.

        Stateful processes (anything overriding :meth:`advance_to`)
        cannot be shared across replications of an ensemble — each
        replication needs its own instance via a process factory.
        """
        return type(self).advance_to is not DemandProcess.advance_to


class BirthDeathProcess(DemandProcess):
    """Census dynamics with an exact target stationary distribution.

    Parameters
    ----------
    load:
        Target census ``P(k)``.
    mu:
        Per-flow departure rate (sets the time scale only; the
        stationary census is ``P`` for every ``mu > 0``).
    census_cap:
        Reflecting upper boundary for the chain (the arrival rate is
        zeroed there).  Defaults to a point with negligible tail mass;
        raise it for heavy-tailed loads if extreme excursions matter.
    """

    def __init__(
        self,
        load: LoadDistribution,
        *,
        mu: float = 1.0,
        census_cap: Optional[int] = None,
    ):
        if mu <= 0.0:
            raise ValueError(f"departure rate mu must be > 0, got {mu!r}")
        self._load = load
        self._mu = float(mu)
        if census_cap is None:
            cap = int(16 * load.mean)
            while load.sf(cap) > 1e-6 and cap < 1 << 22:
                cap *= 2
            census_cap = cap
        self._cap = int(census_cap)
        # precompute birth rates lambda_k = mu (k+1) P(k+1)/P(k)
        ks = np.arange(self._cap + 2, dtype=float)
        pk = np.asarray(load.pmf_array(ks), dtype=float)
        rates = np.zeros(self._cap + 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = pk[1:] / pk[:-1]
        for k in range(self._cap + 1):
            if pk[k] > 0.0 and np.isfinite(ratio[k]):
                rates[k] = self._mu * (k + 1) * float(ratio[k])
            elif pk[k] == 0.0 and k < load.support_min:
                # below the support: push the chain up into it
                rates[k] = self._mu * max(1.0, load.mean)
        self._birth_rates = rates
        # vector lookup table: index cap holds the reflecting zero so
        # arrival_rates is a single clipped gather
        self._birth_rates_vec = rates.copy()
        self._birth_rates_vec[self._cap] = 0.0
        self._support_min = int(load.support_min)

    @property
    def load(self) -> LoadDistribution:
        """The target stationary census."""
        return self._load

    @property
    def mu(self) -> float:
        """Per-flow departure rate."""
        return self._mu

    @property
    def census_cap(self) -> int:
        """Reflecting boundary of the chain."""
        return self._cap

    def arrival_rate(self, census: int) -> float:
        if census >= self._cap:
            return 0.0
        return float(self._birth_rates[census])

    def departure_rate(self, census: int) -> float:
        # the chain is confined to k >= support_min by zeroing the death
        # rate at the floor; detailed balance on k > support_min still
        # requires the full rate mu*k there (each flow departs at mu)
        if census <= self._load.support_min:
            return 0.0
        return self._mu * census

    def batch_size(self, rng: np.random.Generator) -> int:
        return 1

    vector_rates = True

    def arrival_rates(self, census: np.ndarray) -> np.ndarray:
        idx = np.minimum(census, self._cap)
        return self._birth_rates_vec[idx]

    def departure_rates(self, census: np.ndarray) -> np.ndarray:
        return np.where(census <= self._support_min, 0.0, self._mu * census)


class PoissonProcess(DemandProcess):
    """Plain M/M/inf demand: Poisson arrivals, exponential holding.

    Stationary census is Poisson with mean ``rate/mu`` regardless of
    the holding-time distribution (insensitivity), making this the
    canonical generator for the paper's Poisson load case.
    """

    def __init__(self, rate: float, *, mu: float = 1.0):
        if rate <= 0.0:
            raise ValueError(f"arrival rate must be > 0, got {rate!r}")
        if mu <= 0.0:
            raise ValueError(f"departure rate mu must be > 0, got {mu!r}")
        self._rate = float(rate)
        self._mu = float(mu)

    @property
    def mean_census(self) -> float:
        """``rate/mu`` — the stationary mean number of flows."""
        return self._rate / self._mu

    def arrival_rate(self, census: int) -> float:
        return self._rate

    def departure_rate(self, census: int) -> float:
        return self._mu * census

    def batch_size(self, rng: np.random.Generator) -> int:
        return 1

    vector_rates = True

    def arrival_rates(self, census: np.ndarray) -> np.ndarray:
        # constant rate: a scalar broadcasts through the engine's
        # arithmetic without allocating an array per step
        return self._rate  # type: ignore[return-value]

    def departure_rates(self, census: np.ndarray) -> np.ndarray:
        return self._mu * census


class RegimeSwitchingProcess(DemandProcess):
    """Demand alternating between regimes (nonstationary loads, live).

    The analytic nonstationary extension models time-shared regimes as
    a :class:`~repro.extensions.nonstationary.MixtureLoad`; this process
    realises the dynamics: a hidden modulator jumps between component
    :class:`BirthDeathProcess` parameter sets at rate ``switch_rate``,
    spending time in regime ``i`` proportional to its mixture weight.

    When regime dwell times are long relative to the census relaxation
    time, the time-average census converges to the mixture — giving the
    simulator a way to *test* the mixture abstraction rather than
    assume it.  The modulator runs on the engine's wall clock via
    :meth:`advance_to`; switches landing between events take effect at
    the next event, a negligible lag at the slow switch rates the
    mixture abstraction needs anyway.
    """

    def __init__(
        self,
        components,
        *,
        switch_rate: float = 0.01,
        mu: float = 1.0,
        seed: int = 0,
    ):
        if not components:
            raise ValueError("need at least one (weight, load) regime")
        weights = np.array([w for w, _ in components], dtype=float)
        if np.any(weights <= 0.0):
            raise ValueError(f"regime weights must be > 0, got {list(weights)!r}")
        if switch_rate <= 0.0:
            raise ValueError(f"switch_rate must be > 0, got {switch_rate!r}")
        self._weights = weights / weights.sum()
        self._processes = [
            BirthDeathProcess(load, mu=mu) for _, load in components
        ]
        self._loads = [load for _, load in components]
        self._switch_rate = float(switch_rate)
        self._rng = np.random.default_rng(seed)
        self._regime = int(self._rng.choice(len(self._weights), p=self._weights))
        self._next_switch = self._rng.exponential(1.0 / self._switch_rate)

    @property
    def regime(self) -> int:
        """Index of the currently active regime."""
        return self._regime

    @property
    def mean_census(self) -> float:
        """Mixture mean (used to seed the initial census)."""
        return float(
            sum(w * load.mean for w, load in zip(self._weights, self._loads))
        )

    def advance_to(self, t: float) -> None:
        """Move the modulator to wall-clock time ``t``."""
        while t >= self._next_switch:
            self._regime = int(
                self._rng.choice(len(self._weights), p=self._weights)
            )
            self._next_switch += self._rng.exponential(1.0 / self._switch_rate)

    def arrival_rate(self, census: int) -> float:
        return self._processes[self._regime].arrival_rate(census)

    def departure_rate(self, census: int) -> float:
        return self._processes[self._regime].departure_rate(census)

    def batch_size(self, rng: np.random.Generator) -> int:
        return 1


class ParetoBatchProcess(DemandProcess):
    """Bursty demand: Poisson sessions, Pareto-sized flow batches.

    Each session brings ``ceil(X)`` flows at once with
    ``X ~ Pareto(shape)``; holding times remain exponential.  The
    resulting census is over-dispersed with a polynomially heavy tail —
    a traffic-generator route to loads resembling the paper's algebraic
    case (cf. the self-similar traffic measurements it cites).
    """

    def __init__(self, session_rate: float, *, shape: float = 1.5, mu: float = 1.0):
        if session_rate <= 0.0:
            raise ValueError(f"session rate must be > 0, got {session_rate!r}")
        if shape <= 1.0:
            raise ValueError(
                f"Pareto shape must be > 1 so batches have finite mean, got {shape!r}"
            )
        if mu <= 0.0:
            raise ValueError(f"departure rate mu must be > 0, got {mu!r}")
        self._session_rate = float(session_rate)
        self._shape = float(shape)
        self._mu = float(mu)

    @property
    def mean_census(self) -> float:
        """``session_rate * E[batch] / mu`` (E[batch] ~ shape/(shape-1))."""
        mean_batch = self._shape / (self._shape - 1.0)
        return self._session_rate * mean_batch / self._mu

    def arrival_rate(self, census: int) -> float:
        return self._session_rate

    def departure_rate(self, census: int) -> float:
        return self._mu * census

    def batch_size(self, rng: np.random.Generator) -> int:
        return self.batch_from_uniform(rng.random())

    uses_batch_draw = True
    vector_rates = True

    def batch_from_uniform(self, u: float) -> int:
        return max(1, math.ceil((1.0 - u) ** (-1.0 / self._shape) - 0.5))

    def batches_from_uniform(self, u: np.ndarray) -> np.ndarray:
        sizes = np.ceil((1.0 - u) ** (-1.0 / self._shape) - 0.5)
        return np.maximum(1, sizes.astype(np.int64))

    def arrival_rates(self, census: np.ndarray) -> np.ndarray:
        return self._session_rate  # type: ignore[return-value]

    def departure_rates(self, census: np.ndarray) -> np.ndarray:
        return self._mu * census
