"""Admission-control policies for the simulator.

The reservation-capable architecture is, mechanically, an admission
decision at flow arrival.  A policy sees the current number of
*admitted* flows and the link capacity and answers accept/reject; the
paper's architecture corresponds to :class:`ThresholdAdmission` with
the fixed-load optimum ``k_max(C)`` as the threshold, and
best-effort-only to :class:`AdmitAll`.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.models.fixed_load import FixedLoadModel
from repro.utility.base import UtilityFunction


class AdmissionPolicy(abc.ABC):
    """Accept/reject decision at flow-arrival instants."""

    #: Whether a freed reservation slot is handed to a waiting
    #: (previously rejected, still present) flow.  The paper's basic
    #: model never readmits; its retrying extension effectively does.
    readmit_waiting: bool = False

    @abc.abstractmethod
    def admits(self, admitted: int, capacity: float) -> bool:
        """True if a flow arriving now receives a reservation."""

    def threshold(self, capacity: float) -> float:
        """Admission threshold at this capacity (inf = none)."""
        return float("inf")


class AdmitAll(AdmissionPolicy):
    """Best-effort-only: every flow is always admitted."""

    def admits(self, admitted: int, capacity: float) -> bool:
        return True

    def __repr__(self) -> str:
        return "AdmitAll()"


class ConstantThreshold:
    """Picklable ``capacity -> threshold`` returning a fixed value.

    The ensemble runner ships admission policies to worker processes,
    so the built-in threshold closures must survive pickling — a plain
    lambda would not.
    """

    def __init__(self, value: float):
        self.value = float(value)

    def __call__(self, capacity: float) -> float:
        return self.value


class FixedLoadThreshold:
    """Picklable ``capacity -> k_max(capacity)`` over a fixed-load model."""

    def __init__(self, model: FixedLoadModel):
        self.model = model

    def __call__(self, capacity: float) -> float:
        return self.model.k_max(capacity)


class ThresholdAdmission(AdmissionPolicy):
    """Admit while the admitted count is below ``k_max(capacity)``.

    Parameters
    ----------
    k_max:
        Either an integer/float threshold, or a callable
        ``capacity -> threshold``.
    readmit_waiting:
        Hand freed slots to waiting rejected flows (default False,
        matching the paper's basic model).
    """

    def __init__(self, k_max, *, readmit_waiting: bool = False):
        if callable(k_max):
            self._k_max_fn: Callable[[float], float] = k_max
        else:
            value = float(k_max)
            if value < 0:
                raise ValueError(f"k_max must be >= 0, got {k_max!r}")
            self._k_max_fn = ConstantThreshold(value)
        self.readmit_waiting = bool(readmit_waiting)

    @classmethod
    def from_utility(
        cls, utility: UtilityFunction, *, readmit_waiting: bool = False
    ) -> "ThresholdAdmission":
        """The paper's policy: threshold at the fixed-load optimum.

        Builds a :class:`FixedLoadModel` over ``utility`` and uses its
        ``k_max(C)`` — the utility-maximising admitted count — as the
        capacity-dependent threshold.
        """
        model = FixedLoadModel(utility)
        return cls(FixedLoadThreshold(model), readmit_waiting=readmit_waiting)

    def threshold(self, capacity: float) -> float:
        return float(self._k_max_fn(capacity))

    def admits(self, admitted: int, capacity: float) -> bool:
        return admitted < self.threshold(capacity)

    def __repr__(self) -> str:
        return f"ThresholdAdmission(readmit_waiting={self.readmit_waiting!r})"
