"""Streaming replication statistics for the ensemble engine.

Monte Carlo ensembles produce one estimate per replication; the
stopping rule needs running mean/variance and a confidence interval
without retaining the raw per-replication values.  :class:`RunningStat`
implements Welford's numerically stable online update (with a parallel
merge, so per-worker accumulators combine exactly), and the CI uses
Student's t quantiles via :func:`scipy.special.stdtrit` — correct at
the small replication counts where an adaptive rule actually stops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special


class RunningStat:
    """Welford online mean/variance accumulator with exact merging."""

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, value) -> None:
        """Fold in one observation, or an array of observations."""
        arr = np.asarray(value, dtype=float).ravel()
        for x in arr:
            self.count += 1
            delta = x - self.mean
            self.mean += delta / self.count
            self._m2 += delta * (x - self.mean)

    def merge(self, other: "RunningStat") -> None:
        """Fold another accumulator in (Chan et al. parallel update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN below two observations)."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        var = self.variance
        if math.isnan(var):
            return float("nan")
        return math.sqrt(var / self.count)

    def ci_halfwidth(self, level: float = 0.95) -> float:
        """Two-sided Student-t confidence half-width at ``level``."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level!r}")
        if self.count < 2:
            return float("inf")
        tq = float(special.stdtrit(self.count - 1, 0.5 + level / 2.0))
        return tq * self.sem


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Outcome of a CI-targeted adaptive run.

    ``converged`` distinguishes stopping on precision from stopping on
    the replication ceiling, so callers never mistake a budget-capped
    estimate for one that met its target.
    """

    mean: float
    ci_halfwidth: float
    level: float
    replications: int
    converged: bool
    target: float

    def __post_init__(self):
        if self.target <= 0.0:
            raise ValueError(f"target must be > 0, got {self.target!r}")
