"""Config-facing capacity sweep: the CLI and cache entry point.

The engine itself speaks processes and links; this module speaks
:class:`~repro.experiments.params.PaperConfig`, so the ``repro
meanfield`` subcommand can address the PR-2 result cache the same way
every experiment does — the cache digest covers the code version and
the whole config, and any ``--population``/``--capacities`` override
re-addresses the entry automatically.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.meanfield.engine import MeanFieldSimulator
from repro.simulation import BirthDeathProcess, Link


def capacity_sweep(
    config, *, load: str = "poisson", utility: str = "adaptive"
) -> Dict[str, np.ndarray]:
    """Sweep ``B(C)``/``R(C)``/gap over the config's capacity grid.

    One fluid solve serves the whole grid (the census dynamics never
    see the capacity), plus a diffusion point estimate with CIs at the
    config's simulation capacity under the simulation budget — the
    mean-field twin of the S1 validation point.  Raises
    :class:`~repro.errors.OutOfDomainError` outside the validity
    envelope; refusals are never cached.
    """
    process = BirthDeathProcess(config.load(load))
    utility_fn = config.utility(utility)
    capacities = np.asarray(config.capacities, dtype=float)

    sim = MeanFieldSimulator(process, Link(float(config.sim_capacity)))
    verdict = sim.validity()
    point = sim.paired_gap(
        utility_fn,
        config.sim_replications,
        config.sim_horizon,
        warmup=config.sim_warmup,
    ).summary()
    return {
        "population": np.asarray([config.kbar]),
        "cv": np.asarray([verdict["cv"]]),
        "relaxation_time": np.asarray([verdict["relaxation_time"]]),
        "capacity": capacities,
        "best_effort": sim.best_effort_batch(utility_fn, capacities),
        "reservation": sim.reservation_batch(utility_fn, capacities),
        "gap": sim.gap_batch(utility_fn, capacities),
        "point_capacity": np.asarray([config.sim_capacity]),
        "point_replications": np.asarray([config.sim_replications]),
        "point_horizon": np.asarray([config.sim_horizon]),
        "point_warmup": np.asarray([config.sim_warmup]),
        "point_level": np.asarray([point["level"]]),
        "point_best_effort": np.asarray([point["best_effort"]]),
        "point_best_effort_ci": np.asarray([point["best_effort_ci"]]),
        "point_reservation": np.asarray([point["reservation"]]),
        "point_reservation_ci": np.asarray([point["reservation_ci"]]),
        "point_gap": np.asarray([point["gap"]]),
        "point_gap_ci": np.asarray([point["gap_ci"]]),
    }


def sweep_experiment(load: str, utility: str):
    """The cache-addressing shim for one ``(load, utility)`` sweep.

    Mirrors :func:`repro.verify.runner.suite_experiment`: the
    ``exp_id`` carries the pair into the cache key and the digest
    target is :func:`capacity_sweep` itself.
    """
    from repro.experiments.registry import Experiment

    return Experiment(
        exp_id=f"MF.{load}.{utility}",
        description=f"mean-field capacity sweep ({load}/{utility})",
        run=lambda config, _l=load, _u=utility: capacity_sweep(
            config, load=_l, utility=_u
        ),
        target=capacity_sweep,
    )


__all__ = ["capacity_sweep", "sweep_experiment"]
