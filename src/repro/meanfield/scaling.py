"""Population scaling regimes shared by invariants, tests, and benches.

The mean-field engine's accuracy claims are statements about *limits*:
fluid error is O(1/N), diffusion CIs are O(1/sqrt(N)).  Checking them
requires a common vocabulary for "a population scale" — the mean flow
count N, how many replications a matched ensemble run would use, and
which error regime the scale is probing.  This module is that
vocabulary; ``repro.verify.strategies.populations()`` draws from it
and the L-block invariants sweep :data:`CANONICAL_SCALES`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: Scaling regimes a population scale can probe:
#:  - ``fluid``: N grows, replication budget fixed — tests the O(1/N)
#:    bias of the fluid fixed point.
#:  - ``diffusion``: N grows, per-replication window fixed — tests the
#:    O(1/sqrt(N)) Gaussian correction and CI calibration.
#:  - ``fixed_budget``: total simulated events held constant — the
#:    crossover-bench regime where the ensemble's cost grows with N.
SCALING_REGIMES = ("fluid", "diffusion", "fixed_budget")

#: Reference population against which replication budgets scale.
BASE_POPULATION = 50.0


@dataclass(frozen=True)
class PopulationScale:
    """One point on a population-scaling sweep."""

    population: float
    replications: int
    regime: str = "fluid"

    def __post_init__(self) -> None:
        if self.population <= 0.0:
            raise ModelError(f"population must be positive, got {self.population!r}")
        if self.replications <= 0:
            raise ModelError(f"replications must be positive, got {self.replications!r}")
        if self.regime not in SCALING_REGIMES:
            raise ModelError(
                f"unknown scaling regime {self.regime!r}; expected one of {SCALING_REGIMES}"
            )

    def capacity(self, provisioning: float = 1.1) -> float:
        """Link capacity provisioned at ``provisioning`` x the mean census."""
        if provisioning <= 0.0:
            raise ModelError(f"provisioning factor must be positive, got {provisioning!r}")
        return provisioning * self.population

    def scaled_replications(self) -> int:
        """Replication budget adjusted for the regime.

        ``fixed_budget`` shrinks the replication count as N grows so
        the total simulated-event budget stays roughly constant —
        mirroring how the crossover bench matches budgets.
        """
        if self.regime != "fixed_budget":
            return self.replications
        scale = max(self.population / BASE_POPULATION, 1.0)
        return max(int(round(self.replications / scale)), 1)


#: Scales the L-block invariants sweep: geometric in N at a fixed
#: small replication budget, probing the fluid O(1/N) regime without
#: making `verify --suite fast` slow.
CANONICAL_SCALES = (
    PopulationScale(population=25.0, replications=8, regime="fluid"),
    PopulationScale(population=100.0, replications=8, regime="fluid"),
    PopulationScale(population=400.0, replications=8, regime="fluid"),
)


__all__ = [
    "BASE_POPULATION",
    "CANONICAL_SCALES",
    "PopulationScale",
    "SCALING_REGIMES",
]
