"""The mean-field engine: fluid + diffusion with the ensemble's contract.

:class:`MeanFieldSimulator` takes the exact configuration the ensemble
engine takes — a demand process, a link, admission policies — and
answers the same questions (``B_hat``, ``R_hat``, the CRN-paired gap)
from one ODE solve plus Gauss-Hermite quadrature instead of
O(events x replications) Gillespie stepping.  The census dynamics in
the paper's basic model do not depend on the link capacity, so a
single equilibrium serves an entire capacity grid: the ``*_batch``
entry points are vectorized functional evaluations over
``(quadrature node, capacity)``.

Validity is policed, never extrapolated: configurations whose census
law is not approximately Gaussian (heavy-tailed algebraic loads),
whose fixed point the fluid ODE cannot certify, or whose process the
drift field cannot represent (stateful, batch arrivals) raise
:class:`~repro.errors.OutOfDomainError` — the same
refuse-don't-extrapolate contract the emulator surfaces use — so the
caller can fall back to the ensemble.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConvergenceError, ModelError, OutOfDomainError
from repro.meanfield.diffusion import (
    GaussianCensus,
    MeanFieldEstimate,
    window_variance_factor,
    z_quantile,
)
from repro.meanfield.fluid import (
    DriftField,
    FluidFixedPoint,
    default_initial_census,
    solve_fixed_point,
)
from repro.simulation.admission import AdmissionPolicy, AdmitAll, ThresholdAdmission
from repro.simulation.link import Link
from repro.simulation.processes import DemandProcess
from repro.utility.base import UtilityFunction

#: Default ceiling on the census coefficient of variation.  The
#: diffusion replaces the exact census law with a Gaussian; once
#: fluctuations reach a quarter of the mean, Gaussian tails misstate
#: the blocking functionals by more than the LIMIT tolerance budget
#: (geometric loads sit at CV ~ 1 and are refused; Poisson at
#: ``kbar >= 16`` passes).
MAX_CV = 0.25


def _admitted_values(
    census: np.ndarray,
    capacity,
    utility: UtilityFunction,
    kmax,
) -> np.ndarray:
    """``g(n) = m pi(C/m)`` with ``m = min(n, kmax)`` (0 when empty).

    ``m pi(C/m)`` is total admitted utility at census ``n``; dividing
    its census expectation by ``E[N]`` reproduces the ensemble's
    flow-time average (readmitting threshold admission keeps the
    admitted count pinned at ``min(N, k_max)``).  Broadcasts over any
    common shape of ``census``/``capacity``/``kmax``.
    """
    m = np.minimum(census, kmax)
    shares = np.where(m > 0, capacity / np.maximum(m, 1.0), 0.0)
    scores = np.where(m > 0, utility(shares), 0.0)
    return m * scores


@dataclass(frozen=True)
class MeanFieldGapResult:
    """Paired BE/RES estimates and their gap, ensemble-summary shaped."""

    best_effort: MeanFieldEstimate
    reservation: MeanFieldEstimate
    gap: MeanFieldEstimate
    fixed_point: FluidFixedPoint

    def summary(self) -> dict:
        """Same keys as ``PairedGapResult.summary()`` — drop-in rows."""
        return {
            "replications": self.gap.replications,
            "level": self.gap.level,
            "best_effort": self.best_effort.mean,
            "best_effort_ci": self.best_effort.ci_halfwidth,
            "reservation": self.reservation.mean,
            "reservation_ci": self.reservation.ci_halfwidth,
            "gap": self.gap.mean,
            "gap_ci": self.gap.ci_halfwidth,
        }


class MeanFieldSimulator:
    """Fluid-diffusion twin of :class:`EnsembleSimulator`.

    One instance owns one equilibrium solve (cached); every utility
    functional, capacity grid, and budget-matched CI is evaluated
    against it in O(quadrature) time, independent of the population
    size the configuration represents.
    """

    def __init__(
        self,
        process: DemandProcess,
        link: Link,
        *,
        max_cv: float = MAX_CV,
    ):
        try:
            self._field = DriftField(process)
        except ModelError as exc:
            raise OutOfDomainError(
                f"mean-field engine cannot represent this process: {exc}"
            ) from exc
        self._process = process
        self._link = link
        self._max_cv = float(max_cv)
        self._fixed_point: Optional[FluidFixedPoint] = None
        self._census: Optional[GaussianCensus] = None

    @property
    def process(self) -> DemandProcess:
        """The demand process this engine was built over."""
        return self._process

    @property
    def link(self) -> Link:
        """The bottleneck link."""
        return self._link

    @property
    def field(self) -> DriftField:
        """The drift field derived from the process."""
        return self._field

    def equilibrium(self) -> FluidFixedPoint:
        """The (cached) fluid fixed point, solved on first use."""
        if self._fixed_point is None:
            with obs.span(
                "meanfield.equilibrium", process=type(self._process).__name__
            ):
                try:
                    trajectory_seed = default_initial_census(self._process)
                    fp = solve_fixed_point(self._field, trajectory_seed)
                except ConvergenceError as exc:
                    if obs.enabled():
                        obs.counter("meanfield.refusals").inc()
                    raise OutOfDomainError(
                        f"fluid census has no certifiable fixed point: {exc}"
                    ) from exc
            self._fixed_point = fp
            if obs.enabled():
                obs.counter("meanfield.solves").inc()
                obs.emit(
                    "meanfield.converged",
                    census=fp.census,
                    drift_jacobian=fp.drift_jacobian,
                    variance=fp.variance if fp.stable else None,
                    stable=fp.stable,
                )
        return self._fixed_point

    def census(self) -> GaussianCensus:
        """The (cached) stationary Gaussian census around the fixed point."""
        if self._census is None:
            self._require_envelope()
            self._census = GaussianCensus(self.equilibrium())
        return self._census

    def validity(self) -> Dict[str, object]:
        """The envelope verdict: ok flag, reasons, and diagnostics."""
        reasons = []
        diagnostics: Dict[str, object] = {"max_cv": self._max_cv}
        try:
            fp = self.equilibrium()
        except OutOfDomainError as exc:
            return {"ok": False, "reasons": [str(exc)], **diagnostics}
        diagnostics.update(
            census=fp.census,
            drift_jacobian=fp.drift_jacobian,
            relaxation_time=fp.relaxation_time,
        )
        if not fp.stable:
            reasons.append(
                f"fluid fixed point is not contracting (b'(n*) = "
                f"{fp.drift_jacobian:.3g} >= 0)"
            )
        else:
            cv = fp.stddev / fp.census if fp.census > 0.0 else float("inf")
            diagnostics["cv"] = cv
            if cv > self._max_cv:
                reasons.append(
                    f"census fluctuations too large for the Gaussian "
                    f"closure (CV = {cv:.3g} > {self._max_cv:.3g})"
                )
        return {"ok": not reasons, "reasons": reasons, **diagnostics}

    def _require_envelope(self) -> None:
        verdict = self.validity()
        if not verdict["ok"]:
            if obs.enabled():
                obs.counter("meanfield.refusals").inc()
            raise OutOfDomainError(
                "mean-field engine refuses this configuration: "
                + "; ".join(verdict["reasons"])  # type: ignore[arg-type]
            )

    # ------------------------------------------------------------------
    # point evaluations

    def fluid_values(
        self,
        utility: UtilityFunction,
        *,
        best_effort: Optional[AdmissionPolicy] = None,
        reservation: Optional[AdmissionPolicy] = None,
    ) -> Dict[str, float]:
        """Zeroth-order (pure fluid, no diffusion) B, R, and gap.

        Evaluates the functionals at the deterministic fixed point
        ``n*`` only — the N -> infinity limit the L-block invariants
        pin against the exact stationary census.
        """
        self._require_envelope()
        n_star = self.equilibrium().census
        capacity = self._link.capacity
        be_policy, res_policy = self._policies(utility, best_effort, reservation)
        node = np.asarray([n_star])
        be = float(
            _admitted_values(node, capacity, utility, be_policy.threshold(capacity))[0]
        ) / n_star
        res = float(
            _admitted_values(node, capacity, utility, res_policy.threshold(capacity))[0]
        ) / n_star
        return {"best_effort": be, "reservation": res, "gap": res - be}

    def utility_estimates(
        self,
        utility: UtilityFunction,
        *,
        replications: int,
        horizon: float,
        warmup: float = 0.0,
        level: float = 0.95,
        best_effort: Optional[AdmissionPolicy] = None,
        reservation: Optional[AdmissionPolicy] = None,
    ) -> Tuple[MeanFieldEstimate, MeanFieldEstimate]:
        """Diffusion-corrected ``(B_hat, R_hat)`` at an ensemble budget.

        The CI half-widths answer "what would a CRN ensemble run with
        this ``(replications, horizon, warmup)`` budget report?" — the
        delta-method variance of the flow-time-average ratio under the
        OU autocovariance, per independent replication window.
        """
        be, res, _ = self._estimates(
            utility, replications, horizon, warmup, level, best_effort, reservation
        )
        return be, res

    def paired_gap(
        self,
        utility: UtilityFunction,
        replications: int,
        horizon: float,
        *,
        warmup: float = 0.0,
        level: float = 0.95,
        best_effort: Optional[AdmissionPolicy] = None,
        reservation: Optional[AdmissionPolicy] = None,
    ) -> MeanFieldGapResult:
        """CRN-paired gap estimate mirroring ``simulation.paired_gap``.

        The gap CI is computed from the *paired* functional
        ``g_res(N) - g_be(N)`` on the shared census trajectory — the
        diffusion analogue of common random numbers, which is why it
        is far tighter than the difference of the marginal CIs.
        """
        be, res, gap = self._estimates(
            utility, replications, horizon, warmup, level, best_effort, reservation
        )
        return MeanFieldGapResult(
            best_effort=be,
            reservation=res,
            gap=gap,
            fixed_point=self.equilibrium(),
        )

    def _policies(
        self,
        utility: UtilityFunction,
        best_effort: Optional[AdmissionPolicy],
        reservation: Optional[AdmissionPolicy],
    ) -> Tuple[AdmissionPolicy, AdmissionPolicy]:
        be = best_effort if best_effort is not None else AdmitAll()
        res = (
            reservation
            if reservation is not None
            else ThresholdAdmission.from_utility(utility, readmit_waiting=True)
        )
        return be, res

    def _estimates(
        self,
        utility: UtilityFunction,
        replications: int,
        horizon: float,
        warmup: float,
        level: float,
        best_effort: Optional[AdmissionPolicy],
        reservation: Optional[AdmissionPolicy],
    ) -> Tuple[MeanFieldEstimate, MeanFieldEstimate, MeanFieldEstimate]:
        if not 0.0 <= warmup < horizon:
            raise ModelError(
                f"warmup must be in [0, horizon): warmup={warmup!r}, "
                f"horizon={horizon!r}"
            )
        census = self.census()
        capacity = self._link.capacity
        be_policy, res_policy = self._policies(utility, best_effort, reservation)
        nodes, weights = census.nodes()
        g_be = _admitted_values(nodes, capacity, utility, be_policy.threshold(capacity))
        g_res = _admitted_values(
            nodes, capacity, utility, res_policy.threshold(capacity)
        )
        mean_n = float(np.dot(weights, nodes))
        window = horizon - warmup
        factor = window_variance_factor(census.relaxation_time / window)
        z = z_quantile(level)

        def estimate(g: np.ndarray) -> MeanFieldEstimate:
            value = float(np.dot(weights, g)) / mean_n
            # delta-method influence of the ratio of time averages
            phi = (g - value * nodes) / mean_n
            var = float(np.dot(weights, phi**2)) - float(np.dot(weights, phi)) ** 2
            sem = math.sqrt(max(var, 0.0) * factor / replications)
            return MeanFieldEstimate(
                mean=value,
                ci_halfwidth=z * sem,
                level=level,
                replications=replications,
                horizon=horizon,
                warmup=warmup,
            )

        return estimate(g_be), estimate(g_res), estimate(g_res - g_be)

    # ------------------------------------------------------------------
    # capacity-grid evaluations

    def best_effort_batch(
        self, utility: UtilityFunction, capacities
    ) -> np.ndarray:
        """Diffusion-mean ``B(C)`` over a capacity grid (one solve)."""
        return self._batch_values(utility, capacities, "best_effort")

    def reservation_batch(
        self, utility: UtilityFunction, capacities
    ) -> np.ndarray:
        """Diffusion-mean ``R(C)`` over a capacity grid (one solve)."""
        return self._batch_values(utility, capacities, "reservation")

    def gap_batch(self, utility: UtilityFunction, capacities) -> np.ndarray:
        """Diffusion-mean ``delta(C) = R(C) - B(C)`` over a grid."""
        return self._batch_values(utility, capacities, "gap")

    def _batch_values(
        self, utility: UtilityFunction, capacities, which: str
    ) -> np.ndarray:
        census = self.census()
        caps = np.atleast_1d(np.asarray(capacities, dtype=float))
        be_policy, res_policy = self._policies(utility, None, None)
        with obs.span("meanfield.batch", points=int(caps.size), which=which):
            nodes, weights = census.nodes()
            mean_n = float(np.dot(weights, nodes))
            grid = np.broadcast_to(nodes[:, None], (nodes.size, caps.size))

            def values(policy: AdmissionPolicy) -> np.ndarray:
                kmax = np.asarray(
                    [policy.threshold(c) for c in caps], dtype=float
                )
                g = _admitted_values(grid, caps[None, :], utility, kmax[None, :])
                return weights @ g / mean_n

            if which == "best_effort":
                out = values(be_policy)
            elif which == "reservation":
                out = values(res_policy)
            else:
                out = values(res_policy) - values(be_policy)
        if obs.enabled():
            obs.counter("meanfield.batch.points").inc(int(caps.size))
        return out


def meanfield_gap(
    process: DemandProcess,
    link: Link,
    utility: UtilityFunction,
    replications: int,
    horizon: float,
    *,
    warmup: float = 0.0,
    level: float = 0.95,
    best_effort: Optional[AdmissionPolicy] = None,
    reservation: Optional[AdmissionPolicy] = None,
    max_cv: float = MAX_CV,
) -> MeanFieldGapResult:
    """Module-level twin of :func:`repro.simulation.paired_gap`.

    Same positional signature and summary keys; ``seed`` and event
    budgets have no analogue here because nothing is sampled.
    """
    sim = MeanFieldSimulator(process, link, max_cv=max_cv)
    return sim.paired_gap(
        utility,
        replications,
        horizon,
        warmup=warmup,
        level=level,
        best_effort=best_effort,
        reservation=reservation,
    )


__all__ = [
    "MAX_CV",
    "MeanFieldGapResult",
    "MeanFieldSimulator",
    "meanfield_gap",
]
