"""The fluid layer: census ODE derived from the simulator's processes.

The ensemble engine executes the census birth-death chain event by
event; at large populations the same chain concentrates on the
deterministic *fluid* trajectory

    dn/dt = b(n) = lambda(n) - delta(n),

where ``lambda``/``delta`` are exactly the arrival/departure rate
functions the simulator drives (:class:`~repro.simulation.processes
.DemandProcess`).  Nothing is re-specified here: :class:`DriftField`
evaluates the *process's own* vectorised rate tables at the two
neighbouring integer census levels and interpolates linearly, so the
fluid model and the event-driven model can never drift apart.

:func:`integrate` follows the ODE with an adaptive embedded
Bogacki-Shampine RK23 step and switches to an exponential-Euler step
(exact for locally linear drift, unconditionally stable for
contracting drift) whenever the local relaxation rate makes the
explicit step stiff — the engineered birth-death chains relax at rate
``~mu`` per flow, so near the fixed point ``|b'(n)| h`` easily exceeds
the explicit stability limit.  The fixed point itself is polished with
Newton iterations on ``b(n) = 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConvergenceError, ModelError
from repro.simulation.processes import DemandProcess

#: Lattice half-width used for the drift's finite-difference Jacobian:
#: the drift is piecewise linear between integer census levels, so a
#: full-cell secant is the meaningful derivative at fluid scale.
JACOBIAN_STEP = 1.0

#: Explicit RK23 stability guard: past this value of ``|b'(n)| h`` the
#: step switches to the exponential-Euler branch.  Kept well under the
#: RK23 stability limit (~2.5): for contracting drift the exponential
#: step is exact on the linearisation, so switching early lets the
#: step size grow geometrically through the terminal approach instead
#: of crawling at the explicit accuracy boundary.
STIFFNESS_SWITCH = 0.5


def _as_scalar_or_array(raw, like: np.ndarray) -> np.ndarray:
    """Broadcast a process rate result (scalar or array) to ``like``."""
    return np.broadcast_to(np.asarray(raw, dtype=float), like.shape)


class DriftField:
    """``b(n) = lambda(n) - delta(n)`` lifted off a demand process.

    Rates at a fractional census are linear interpolations of the
    process's own integer-census rates — the fluid field is *defined*
    by the simulator's dynamics, never re-modelled.

    Parameters
    ----------
    process:
        Any stationary, unit-arrival :class:`DemandProcess`.  Stateful
        processes (regime switching) have no autonomous drift field
        and batch-arrival processes would need the batch-size law
        folded in; both are refused.
    """

    def __init__(self, process: DemandProcess):
        if process.is_stateful():
            raise ModelError(
                "mean-field drift needs a time-homogeneous process; "
                f"{type(process).__name__} mutates state during a run"
            )
        if getattr(process, "uses_batch_draw", False):
            raise ModelError(
                "mean-field drift assumes unit arrivals; "
                f"{type(process).__name__} arrives in random batches"
            )
        self._process = process

    @property
    def process(self) -> DemandProcess:
        """The demand process the field was derived from."""
        return self._process

    def _interp(self, rates: Callable, n) -> np.ndarray:
        arr = np.maximum(np.atleast_1d(np.asarray(n, dtype=float)), 0.0)
        lo = np.floor(arr)
        frac = arr - lo
        lo_i = lo.astype(np.int64)
        r_lo = _as_scalar_or_array(rates(lo_i), arr)
        r_hi = _as_scalar_or_array(rates(lo_i + 1), arr)
        out = (1.0 - frac) * r_lo + frac * r_hi
        if np.ndim(n) == 0:
            return float(out[0])  # type: ignore[return-value]
        return out

    def arrival(self, n):
        """Interpolated ``lambda(n)`` from the process's arrival rates."""
        return self._interp(self._process.arrival_rates, n)

    def departure(self, n):
        """Interpolated ``delta(n)`` from the process's departure rates."""
        return self._interp(self._process.departure_rates, n)

    def drift(self, n):
        """``b(n) = lambda(n) - delta(n)``."""
        return self.arrival(n) - self.departure(n)

    def intensity(self, n):
        """``a(n) = lambda(n) + delta(n)`` — the diffusion coefficient.

        Unit jumps up at rate ``lambda`` and down at rate ``delta``
        give the CLT-scale variance flux ``lambda + delta`` (Kurtz's
        diffusion approximation for density-dependent chains).
        """
        return self.arrival(n) + self.departure(n)

    def jacobian(self, n: float, step: float = JACOBIAN_STEP) -> float:
        """Centred secant ``b'(n)`` across one census lattice cell."""
        lo = max(float(n) - step, 0.0)
        hi = float(n) + step
        if hi <= lo:
            return 0.0
        return float(self.drift(hi) - self.drift(lo)) / (hi - lo)


@dataclass(frozen=True)
class FluidFixedPoint:
    """The equilibrium census of the fluid ODE, with its linearisation.

    ``variance`` is the stationary variance of the Ornstein-Uhlenbeck
    diffusion obtained by linearising the chain around the fixed
    point: ``a(n*) / (2 |b'(n*)|)``.  For every linear-birth process
    this reproduces the exact stationary census variance (Poisson:
    ``n*``; geometric: ``n*/(1-q)``).
    """

    census: float
    drift_jacobian: float
    intensity: float
    converged: bool

    @property
    def stable(self) -> bool:
        """True when the linearised drift is contracting."""
        return self.drift_jacobian < 0.0

    @property
    def relaxation_time(self) -> float:
        """``1/|b'(n*)|`` — the census autocorrelation time."""
        if self.drift_jacobian == 0.0:
            return float("inf")
        return 1.0 / abs(self.drift_jacobian)

    @property
    def variance(self) -> float:
        """Stationary diffusion variance ``a(n*) / (2 |b'(n*)|)``."""
        if not self.stable:
            return float("inf")
        return self.intensity / (2.0 * abs(self.drift_jacobian))

    @property
    def stddev(self) -> float:
        """Stationary diffusion standard deviation."""
        return math.sqrt(self.variance)


@dataclass(frozen=True)
class FluidTrajectory:
    """One integrated fluid path (decimated to ``<= store`` samples)."""

    times: np.ndarray
    census: np.ndarray
    fixed_point: FluidFixedPoint
    steps: int
    stiff_steps: int

    @property
    def horizon(self) -> float:
        """Last integrated time."""
        return float(self.times[-1])


def _rk23_step(f: Callable[[float], float], n: float, h: float, k1: float):
    """One Bogacki-Shampine 3(2) step: returns (n3, error, k4)."""
    k2 = f(n + 0.5 * h * k1)
    k3 = f(n + 0.75 * h * k2)
    n3 = n + h * (2.0 * k1 + 3.0 * k2 + 4.0 * k3) / 9.0
    k4 = f(n3)
    n2 = n + h * (7.0 * k1 + 6.0 * k2 + 8.0 * k3 + 3.0 * k4) / 24.0
    return n3, abs(n3 - n2), k4


def _phi1(z: float) -> float:
    """``(e^z - 1)/z`` with the small-``z`` limit handled."""
    if abs(z) < 1e-8:
        return 1.0 + 0.5 * z
    return math.expm1(z) / z


def integrate(
    field: DriftField,
    initial_census: float,
    *,
    horizon: Optional[float] = None,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    max_steps: int = 20_000,
    store: int = 512,
) -> FluidTrajectory:
    """Integrate the census ODE to ``horizon`` (or to the fixed point).

    With ``horizon=None`` the integration runs until the local
    distance-to-equilibrium estimate ``|b(n)|/|b'(n)|`` drops under
    the tolerance, then Newton-polishes ``b(n) = 0``; an unstable or
    unreached fixed point raises :class:`ConvergenceError` rather than
    returning a value the diffusion layer would silently trust.  The
    default tolerances control the *path*; the fixed point itself is
    always polished to near machine precision, so equilibrium queries
    never need tighter settings.
    """
    if initial_census < 0.0:
        raise ModelError(
            f"initial census must be >= 0, got {initial_census!r}"
        )
    f = field.drift
    n = float(initial_census)
    t = 0.0
    jac = field.jacobian(n)
    # first step: a small fraction of the local relaxation time
    h = 0.05 / max(abs(jac), 1e-6)
    if horizon is not None:
        h = min(h, horizon / 8.0) if horizon > 0.0 else 0.0
    times = [t]
    states = [n]
    k1 = f(n)
    steps = stiff_steps = 0
    converged = horizon is not None and horizon == 0.0
    while steps < max_steps and not converged:
        if horizon is not None and t >= horizon:
            break
        if horizon is not None:
            h = min(h, horizon - t)
        jac = field.jacobian(n)
        tol = atol + rtol * max(1.0, abs(n))
        if horizon is None and abs(k1) <= tol * max(abs(jac), 1e-12):
            converged = True
            break
        if jac < 0.0 and abs(jac) * h > STIFFNESS_SWITCH:
            # stiff branch: exponential Euler, error from step doubling
            full = n + h * k1 * _phi1(jac * h)
            half_h = 0.5 * h
            mid = n + half_h * k1 * _phi1(jac * half_h)
            jac_mid = field.jacobian(mid)
            halves = mid + half_h * f(mid) * _phi1(jac_mid * half_h)
            err = abs(full - halves)
            accept = err <= tol
            if accept:
                t += h
                n = halves
                k1 = f(n)
                stiff_steps += 1
            h *= min(5.0, max(0.2, 0.9 * math.sqrt(tol / max(err, 1e-300))))
        else:
            n3, err, k4 = _rk23_step(f, n, h, k1)
            accept = err <= tol
            if accept:
                t += h
                n = max(n3, 0.0)
                k1 = k4 if n3 >= 0.0 else f(n)
            h *= min(5.0, max(0.2, 0.9 * (tol / max(err, 1e-300)) ** (1.0 / 3.0)))
        if accept:
            steps += 1
            times.append(t)
            states.append(n)
    if horizon is None:
        if not converged:
            raise ConvergenceError(
                f"fluid census did not reach equilibrium within {max_steps} "
                f"steps (reached n={n:.6g}, drift={k1:.3g}); the process "
                "may have no stable fixed point"
            )
        n = _newton_polish(field, n)
        times.append(t)
        states.append(n)
    jac_star = field.jacobian(n)
    fixed_point = FluidFixedPoint(
        census=float(n),
        drift_jacobian=float(jac_star),
        intensity=float(field.intensity(n)),
        converged=bool(converged or horizon is not None),
    )
    times_arr = np.asarray(times, dtype=float)
    states_arr = np.asarray(states, dtype=float)
    if len(times_arr) > store:
        keep = np.unique(
            np.linspace(0, len(times_arr) - 1, store).round().astype(int)
        )
        times_arr, states_arr = times_arr[keep], states_arr[keep]
    return FluidTrajectory(
        times=times_arr,
        census=states_arr,
        fixed_point=fixed_point,
        steps=steps,
        stiff_steps=stiff_steps,
    )


def _newton_polish(field: DriftField, n: float, iterations: int = 50) -> float:
    """Newton iterations on ``b(n) = 0`` from an integrated seed."""
    for _ in range(iterations):
        jac = field.jacobian(n)
        if jac == 0.0:
            break
        step = field.drift(n) / jac
        n = max(n - step, 0.0)
        if abs(step) <= 1e-13 * max(1.0, abs(n)):
            break
    return n


def solve_fixed_point(
    field: DriftField,
    initial_census: Optional[float] = None,
    **kwargs,
) -> FluidFixedPoint:
    """Integrate-then-polish to the stable equilibrium census.

    ``initial_census`` defaults to the process's stationary mean hint
    (``mean_census`` or its load's mean) — the same default the
    ensemble engine seeds replications with.
    """
    if initial_census is None:
        initial_census = default_initial_census(field.process)
    return integrate(field, initial_census, horizon=None, **kwargs).fixed_point


def default_initial_census(process: DemandProcess) -> float:
    """The ensemble engine's warm-start census, as a float."""
    mean = getattr(process, "mean_census", None)
    if mean is None:
        load = getattr(process, "load", None)
        mean = load.mean if load is not None else 1.0
    return max(float(mean), 1.0)


__all__ = [
    "DriftField",
    "FluidFixedPoint",
    "FluidTrajectory",
    "default_initial_census",
    "integrate",
    "solve_fixed_point",
]
