"""Fluid-diffusion mean-field engine (fifth peer engine).

Large populations make event-driven simulation slow exactly where it
is least necessary: the census process of the paper's flow model
concentrates on a deterministic fluid ODE trajectory with Gaussian
O(1/sqrt(N)) corrections (Fayolle et al.; Kang-Kelly-Lee).  This
package evaluates B, R, and the paired best-effort-vs-reservation gap
from one fixed-point solve plus quadrature — O(1) in the population —
while mirroring the ensemble engine's estimator contract so results
are drop-in comparable.

Layers
------
``fluid``
    :class:`DriftField` derives ``b(n) = lambda(n) - delta(n)`` from
    the *simulator's own* process rate functions; a stiff-aware
    adaptive RK23 / exponential-Euler integrator reaches the fixed
    point, Newton-polished.
``diffusion``
    :class:`GaussianCensus` linearises around the fixed point
    (Ornstein-Uhlenbeck), evaluates census functionals by
    Gauss-Hermite quadrature, and prices finite-budget CIs from the
    OU autocovariance.
``engine``
    :class:`MeanFieldSimulator` and :func:`meanfield_gap` — the
    ensemble-shaped API, capacity-grid batch entry points, and the
    refuse-don't-extrapolate validity envelope
    (:class:`~repro.errors.OutOfDomainError`).
``scaling``
    :class:`PopulationScale` and the canonical scaling sweeps shared
    by the L-block invariants, property tests, and the crossover
    bench.
"""

from repro.meanfield.diffusion import (
    GH_ORDER,
    GaussianCensus,
    MeanFieldEstimate,
    window_variance_factor,
    z_quantile,
)
from repro.meanfield.engine import (
    MAX_CV,
    MeanFieldGapResult,
    MeanFieldSimulator,
    meanfield_gap,
)
from repro.meanfield.fluid import (
    DriftField,
    FluidFixedPoint,
    FluidTrajectory,
    default_initial_census,
    integrate,
    solve_fixed_point,
)
from repro.meanfield.scaling import (
    BASE_POPULATION,
    CANONICAL_SCALES,
    PopulationScale,
    SCALING_REGIMES,
)

__all__ = [
    "BASE_POPULATION",
    "CANONICAL_SCALES",
    "DriftField",
    "FluidFixedPoint",
    "FluidTrajectory",
    "GH_ORDER",
    "GaussianCensus",
    "MAX_CV",
    "MeanFieldEstimate",
    "MeanFieldGapResult",
    "MeanFieldSimulator",
    "PopulationScale",
    "SCALING_REGIMES",
    "default_initial_census",
    "integrate",
    "meanfield_gap",
    "solve_fixed_point",
    "window_variance_factor",
    "z_quantile",
]
