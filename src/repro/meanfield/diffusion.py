"""The diffusion layer: Gaussian corrections around the fluid path.

Linearising the census chain about the fluid fixed point gives an
Ornstein-Uhlenbeck process

    dX = b'(n*) X dt + sqrt(a(n*)) dW,

whose stationary law is Normal(0, a/(2|b'|)) and whose autocorrelation
decays at the relaxation rate ``|b'(n*)|``.  Functionals of the census
(blocking B, reservation value R, the paired gap) are therefore
evaluated as Gauss-Hermite expectations against the Gaussian census,
and their *uncertainty at a finite simulation budget* follows from the
OU autocovariance: a time average of ``phi(N_t)`` over a window ``T``
has variance ``Var[phi] * c(tau/T)`` with the exact windowed factor

    c(r) = 2 r (1 - r (1 - e^{-1/r})),    r = tau / T,

which interpolates ``2 tau / T`` (long windows) and ``1`` (short).
This is what lets :class:`MeanFieldEstimate` mirror the ensemble's
:class:`~repro.simulation.stats.AdaptiveEstimate` contract: same
(mean, ci_halfwidth, level, replications) semantics, computed in
microseconds instead of simulated events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Tuple

import numpy as np
from scipy.special import ndtri

from repro.errors import ModelError
from repro.meanfield.fluid import FluidFixedPoint

#: Gauss-Hermite order used for census expectations.  The census
#: functionals are smooth away from the admission kink; 64 nodes holds
#: them to ~1e-12 against direct quadrature.
GH_ORDER = 64


@lru_cache(maxsize=8)
def _hermgauss(order: int) -> Tuple[np.ndarray, np.ndarray]:
    nodes, weights = np.polynomial.hermite.hermgauss(order)
    return nodes, weights / math.sqrt(math.pi)


def window_variance_factor(ratio: float) -> float:
    """Exact OU time-average variance factor ``c(tau / window)``.

    ``Var[ (1/T) \\int_0^T phi(N_t) dt ] = Var[phi] * c(tau/T)`` for an
    exponentially-decorrelating stationary process with autocorrelation
    time ``tau``.
    """
    if ratio <= 0.0:
        return 0.0
    r = float(ratio)
    if r > 1e6:  # window far shorter than tau: no averaging happens
        return 1.0
    return min(1.0, 2.0 * r * (1.0 - r * (1.0 - math.exp(-1.0 / r))))


class GaussianCensus:
    """Stationary Gaussian census implied by a fluid fixed point."""

    def __init__(self, fixed_point: FluidFixedPoint, *, order: int = GH_ORDER):
        if not fixed_point.converged:
            raise ModelError("cannot build a diffusion around an unconverged fluid point")
        if not fixed_point.stable:
            raise ModelError(
                "cannot build a diffusion around an unstable fluid point "
                f"(b'(n*) = {fixed_point.drift_jacobian:.3g} >= 0)"
            )
        self._fp = fixed_point
        self._order = order

    @property
    def mean(self) -> float:
        """Fluid equilibrium census ``n*``."""
        return self._fp.census

    @property
    def variance(self) -> float:
        """Stationary OU variance ``a(n*) / (2 |b'(n*)|)``."""
        return self._fp.variance

    @property
    def stddev(self) -> float:
        """Stationary OU standard deviation."""
        return self._fp.stddev

    @property
    def relaxation_time(self) -> float:
        """Census autocorrelation time ``1/|b'(n*)|``."""
        return self._fp.relaxation_time

    @property
    def coefficient_of_variation(self) -> float:
        """``stddev / mean`` — the diffusion-validity yardstick."""
        if self.mean <= 0.0:
            return float("inf")
        return self.stddev / self.mean

    def nodes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Census quadrature nodes (clamped at 0) and probability weights."""
        z, w = _hermgauss(self._order)
        census = self.mean + math.sqrt(2.0) * self.stddev * z
        return np.maximum(census, 0.0), w

    def expect(self, fn: Callable[[np.ndarray], np.ndarray]) -> float:
        """``E[fn(N)]`` under the stationary Gaussian census."""
        census, w = self.nodes()
        return float(np.dot(w, np.asarray(fn(census), dtype=float)))

    def moments(self, fn: Callable[[np.ndarray], np.ndarray]) -> Tuple[float, float]:
        """``(E[fn(N)], Var[fn(N)])`` in one quadrature pass."""
        census, w = self.nodes()
        vals = np.asarray(fn(census), dtype=float)
        mean = float(np.dot(w, vals))
        var = float(np.dot(w, (vals - mean) ** 2))
        return mean, var

    def time_average_sem(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        *,
        window: float,
        replications: int,
    ) -> float:
        """Standard error of ``replications`` independent ``window``-long
        time averages of ``fn(N_t)``."""
        if window <= 0.0 or replications <= 0:
            return float("inf")
        _, var = self.moments(fn)
        factor = window_variance_factor(self.relaxation_time / window)
        return math.sqrt(var * factor / replications)


@dataclass(frozen=True)
class MeanFieldEstimate:
    """A diffusion-corrected point estimate with an ensemble-shaped CI.

    Field-for-field comparable with the ensemble engine's
    ``AdaptiveEstimate``: ``ci_halfwidth`` is the half-width a CRN
    ensemble run of the same ``(replications, horizon)`` budget would
    report, derived from the OU autocovariance rather than from
    Welford accumulation.
    """

    mean: float
    ci_halfwidth: float
    level: float
    replications: int
    horizon: float
    warmup: float

    def __post_init__(self) -> None:
        if not 0.0 < self.level < 1.0:
            raise ModelError(f"confidence level must be in (0, 1), got {self.level!r}")
        if self.replications <= 0:
            raise ModelError(f"replications must be positive, got {self.replications!r}")

    @property
    def effective_window(self) -> float:
        """Averaging window per replication (horizon net of warmup)."""
        return max(self.horizon - self.warmup, 0.0)


def z_quantile(level: float) -> float:
    """Two-sided normal quantile for a confidence ``level``."""
    return float(ndtri(0.5 + 0.5 * level))


__all__ = [
    "GH_ORDER",
    "GaussianCensus",
    "MeanFieldEstimate",
    "window_variance_factor",
    "z_quantile",
]
