"""The paper's models: Sections 2-5 as composable classes.

- :class:`FixedLoadModel` — Section 2's ``V(k) = k pi(C/k)`` analysis.
- :class:`VariableLoadModel` — Section 3.1's ``B(C)``, ``R(C)``,
  ``delta(C)`` and ``Delta(C)``.
- :class:`WelfareModel` — Section 4's ``C(p)``, ``W(p)`` and the
  equalizing price ratio ``gamma(p)``.
- :class:`SamplingModel` — Section 5.1's worst-of-S-samples extension.
- :class:`RetryingModel` — Section 5.2's blocked-flows-retry extension.
- :class:`ArchitectureComparison` — all of the above behind one call.
"""

from repro.models.comparison import (
    ArchitectureComparison,
    ComparisonPoint,
    ComparisonReport,
)
from repro.models.erlang import carried_utility, erlang_b, erlang_b_inverse
from repro.models.extension_welfare import ExtensionWelfare
from repro.models.fixed_load import (
    Architecture,
    FixedLoadComparison,
    FixedLoadModel,
)
from repro.models.retrying import ALPHA_PAPER, RetryingModel
from repro.models.sampling import SamplingModel
from repro.models.variable_load import VariableLoadModel
from repro.models.welfare import ProvisioningDecision, WelfareModel

__all__ = [
    "ALPHA_PAPER",
    "Architecture",
    "ArchitectureComparison",
    "ComparisonPoint",
    "carried_utility",
    "erlang_b",
    "erlang_b_inverse",
    "ComparisonReport",
    "ExtensionWelfare",
    "FixedLoadComparison",
    "FixedLoadModel",
    "ProvisioningDecision",
    "RetryingModel",
    "SamplingModel",
    "VariableLoadModel",
    "WelfareModel",
]
