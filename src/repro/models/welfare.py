"""The variable capacity (welfare) model — Section 4 of the paper.

What capacity will a provider actually build?  The paper's answer: the
one maximising total welfare ``W = V(C) - p*C`` where ``p`` is the
price per unit of bandwidth and ``V`` the total utility the provider
can recover from customers.  Each architecture then gets its own
welfare-optimal capacity ``C(p)`` and welfare ``W(p)``, and instead of
comparing utilities at equal capacity we compare welfares at equal
price.

The headline quantity is the *equalizing price ratio*

    gamma(p) = p_hat / p   where   W_R(p_hat) = W_B(p),

i.e. how much more expensive per-unit bandwidth could be in the
reservation-capable architecture before best-effort-only becomes the
more cost-effective choice.  ``gamma -> 1`` as ``p -> 0`` means cheap
bandwidth erases the case for reservations; a ``gamma`` bounded away
from 1 (the algebraic load) means it never does.

Implementation notes
--------------------
For smooth utilities the optimum satisfies the first-order condition
``V'(C) = p`` (largest root, as in the paper's continuum treatment);
we find it by bracketing on the decreasing branch of ``V'``.  For the
rigid utility ``V_B`` and ``V_R`` are step functions of ``C`` with
jumps at multiples of ``b_hat``; the optima then have exact discrete
characterisations (the ``V_R`` increments are survival probabilities,
the ``V_B`` increments are ``P(k) k``), which we use directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import BracketError, ModelError
from repro.models.fixed_load import Architecture
from repro.models.variable_load import VariableLoadModel
from repro.numerics.optimize import maximize_scalar
from repro.numerics.solvers import find_root, invert_monotone
from repro.utility.rigid import RigidUtility


@dataclass(frozen=True)
class ProvisioningDecision:
    """A provider's welfare-maximising choice at one bandwidth price."""

    architecture: Architecture
    price: float
    capacity: float
    total_utility: float

    @property
    def welfare(self) -> float:
        """``V(C) - p*C`` at the chosen capacity."""
        return self.total_utility - self.price * self.capacity


class WelfareModel:
    """Welfare-optimal provisioning and the equalizing price ratio.

    Parameters
    ----------
    model:
        The variable-load model supplying ``V_B`` and ``V_R``.
    price_floor:
        Smallest price the solvers will touch; guards against the
        optimal capacity diverging in degenerate sweeps.
    """

    def __init__(self, model: VariableLoadModel, *, price_floor: float = 1e-12):
        self._model = model
        self._rigid = isinstance(model.utility, RigidUtility)
        self._price_floor = price_floor
        # rigid-case cumulative tables, built lazily
        self._rigid_tables: dict = {}

    @property
    def model(self) -> VariableLoadModel:
        """The underlying variable-load model."""
        return self._model

    # ------------------------------------------------------------------
    # rigid utility: exact discrete optimisation
    # ------------------------------------------------------------------

    def _rigid_arrays(self, n: int):
        """Cumulative ``V_B``/``V_R`` tables at capacities ``k * b_hat``."""
        cached = self._rigid_tables.get("arrays")
        if cached is not None and len(cached[0]) > n:
            return cached
        size = max(2 * n, 4096)
        load = self._model.load
        ks = np.arange(size, dtype=float)
        pk = np.asarray(load.pmf_array(ks), dtype=float)
        if load.support_min > 0:
            pk[: load.support_min] = 0.0
        kpk = ks * pk
        vb = np.cumsum(kpk)  # V_B at C = k * b_hat
        sf = np.asarray(load.sf_array(ks), dtype=float)
        # V_R at C = k*b_hat: V_B(k) + k * P(K > k)
        vr = vb + ks * sf
        tables = (ks, kpk, vb, vr, sf)
        self._rigid_tables["arrays"] = tables
        return tables

    def _rigid_optimum(self, price: float, architecture: Architecture):
        """Exact welfare optimum for the rigid utility.

        ``V_R`` increments per step of ``b_hat`` are ``sf(k-1)``
        (monotone decreasing): optimal ``k*`` is the last k with
        ``sf(k-1) >= p * b_hat``.  ``V_B`` increments are ``P(k) k``
        (unimodal): optimal ``k*`` is the argmax of the cumulative
        net welfare, located by direct scan.
        """
        b_hat = self._model.utility.b_hat
        unit_cost = price * b_hat
        # grow the table until increments are safely below the price
        n = 4096
        while True:
            ks, kpk, vb, vr, sf = self._rigid_arrays(n)
            size = len(ks)
            if architecture is Architecture.RESERVATION:
                increments = np.concatenate(([1.0], sf[:-1]))
            else:
                increments = kpk
            below = np.nonzero(increments < unit_cost)[0]
            # need the increments to have fallen below cost for good at
            # the end of the table, else extend it
            if len(below) > 0 and below[-1] == size - 1 and sf[-1] < unit_cost:
                break
            if size > 1 << 26:  # pragma: no cover - absurd prices only
                raise ModelError(
                    f"rigid welfare table exceeded {size} entries at price {price}"
                )
            n = size  # force table growth (arrays builder doubles)
            self._rigid_tables.pop("arrays", None)
            n *= 2
        values = vr if architecture is Architecture.RESERVATION else vb
        welfare = values - price * b_hat * ks
        k_star = int(np.argmax(welfare))
        return k_star * b_hat, float(values[k_star])

    # ------------------------------------------------------------------
    # smooth utilities: first-order condition on the decreasing branch
    # ------------------------------------------------------------------

    def _smooth_optimum(self, price: float, architecture: Architecture):
        """Largest root of ``V'(C) = p``; falls back to C = 0."""
        model = self._model
        if architecture is Architecture.RESERVATION:
            total, marginal = model.total_reservation, model.reservation_marginal
        else:
            total, marginal = model.total_best_effort, model.best_effort_marginal

        kbar = model.mean_load
        # locate (approximately) the peak of V' so we can bracket the
        # decreasing branch that contains the largest root
        c_peak, vprime_peak = maximize_scalar(
            marginal, 1e-6 * kbar, 8.0 * kbar, grid=48, label="V' peak"
        )
        if vprime_peak <= price:
            # bandwidth too expensive to be worth provisioning at all
            return 0.0, 0.0
        c_star = find_root(
            lambda c: marginal(c) - price,
            c_peak,
            max(2.0 * c_peak, 2.0 * kbar),
            expand=True,
            upper_limit=1e9,
            label=f"welfare FOC ({architecture.value}, p={price})",
        )
        value = total(c_star)
        if value - price * c_star < 0.0:
            return 0.0, 0.0
        return c_star, value

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def provision(self, price: float, architecture: Architecture) -> ProvisioningDecision:
        """Welfare-maximising capacity and utility at a bandwidth price."""
        if price <= 0.0:
            raise ValueError(f"price must be > 0, got {price!r}")
        if self._rigid:
            capacity, total = self._rigid_optimum(price, architecture)
        else:
            capacity, total = self._smooth_optimum(price, architecture)
        return ProvisioningDecision(
            architecture=architecture,
            price=price,
            capacity=capacity,
            total_utility=total,
        )

    def optimal_capacity(self, price: float, architecture: Architecture) -> float:
        """``C(p)`` for one architecture."""
        return self.provision(price, architecture).capacity

    def welfare(self, price: float, architecture: Architecture) -> float:
        """``W(p) = V(C(p)) - p C(p)`` for one architecture."""
        return self.provision(price, architecture).welfare

    def welfare_best_effort(self, price: float) -> float:
        """``W_B(p)``."""
        return self.welfare(price, Architecture.BEST_EFFORT)

    def welfare_reservation(self, price: float) -> float:
        """``W_R(p)``."""
        return self.welfare(price, Architecture.RESERVATION)

    def equalizing_price(self, price: float) -> float:
        """``p_hat`` with ``W_R(p_hat) = W_B(p)`` (``p_hat >= p``).

        ``W_R`` is nonincreasing in price, so this is a monotone
        inversion starting from ``p``.
        """
        target = self.welfare_best_effort(price)
        if target <= 0.0:
            raise ModelError(
                f"best-effort welfare is zero at price {price}; the "
                "equalizing price is unbounded there"
            )
        try:
            return invert_monotone(
                self.welfare_reservation,
                target,
                price,
                2.0 * price,
                increasing=False,
                upper_limit=1e6,
                label=f"equalizing price at p={price}",
            )
        except BracketError:
            # W_R(p) can be below target only through numerical noise
            # when the two architectures are indistinguishable
            return price

    def equalizing_ratio(self, price: float) -> float:
        """``gamma(p) = p_hat / p`` — the paper's complexity-cost bound."""
        return self.equalizing_price(price) / price

    # ------------------------------------------------------------------
    # fast sweep via the capacity-parametrised envelope
    # ------------------------------------------------------------------

    def envelope(
        self,
        architecture: Architecture,
        *,
        c_min: Optional[float] = None,
        c_max: Optional[float] = None,
        points: int = 160,
    ) -> dict:
        """Parametric ``(p, C, W)`` table swept over capacity.

        On the concave branch the first-order condition inverts
        exactly: every capacity ``C`` is optimal at price
        ``p = V'(C)``, with welfare ``W = V(C) - V'(C) * C``.  Sweeping
        a log grid of capacities yields whole ``C(p)``/``W(p)`` curves
        at two function evaluations per point — far cheaper than
        root-finding per price.  Only the decreasing-marginal suffix is
        kept, so the table is monotone in ``p`` and safe to
        interpolate.

        For the rigid utility the table enumerates the exact discrete
        jump structure instead.
        """
        kbar = self._model.mean_load
        if self._rigid:
            b_hat = self._model.utility.b_hat
            hi = int((c_max if c_max is not None else 96.0 * kbar) / b_hat)
            ks, kpk, vb, vr, sf = self._rigid_arrays(hi)
            ks = ks[: hi + 1]
            if architecture is Architecture.RESERVATION:
                values = vr[: hi + 1]
                increments = np.concatenate(([1.0], sf[:hi]))
            else:
                values = vb[: hi + 1]
                increments = kpk[: hi + 1]
            caps = ks * b_hat
            prices = increments / b_hat
        else:
            lo = c_min if c_min is not None else kbar / 16.0
            hi = c_max if c_max is not None else 96.0 * kbar
            caps = np.geomspace(lo, hi, points)
            if architecture is Architecture.RESERVATION:
                total_batch = self._model.total_reservation_batch
            else:
                total_batch = self._model.total_best_effort_batch
            values = total_batch(caps)
            # vectorised central difference mirroring the scalar
            # *_marginal step-size policy
            h = 1e-5 * np.maximum(1.0, caps)
            lo_c = np.maximum(0.0, caps - h)
            prices = (total_batch(caps + h) - total_batch(lo_c)) / (
                caps + h - lo_c
            )

        welfare = values - prices * caps
        # keep the decreasing-price (concave) branch: from the argmax of
        # price onward, enforcing strict monotonicity for interpolation
        start = int(np.argmax(prices))
        keep_c, keep_p, keep_w = [], [], []
        last_p = math.inf
        for i in range(start, len(caps)):
            if prices[i] <= 0.0:
                continue
            if prices[i] < last_p:
                keep_c.append(caps[i])
                keep_p.append(prices[i])
                keep_w.append(welfare[i])
                last_p = prices[i]
        return {
            "capacity": np.array(keep_c),
            "price": np.array(keep_p),
            "welfare": np.array(keep_w),
        }

    def ratio_curve(self, prices, **envelope_kwargs) -> dict:
        """``gamma(p)`` over a price grid via envelope interpolation.

        Builds one envelope per architecture, then for each requested
        price interpolates ``W_B(p)`` and inverts the ``W_R`` table.
        Prices outside the envelopes' common range yield NaN.
        """
        env_b = self.envelope(Architecture.BEST_EFFORT, **envelope_kwargs)
        env_r = self.envelope(Architecture.RESERVATION, **envelope_kwargs)
        # tables are sorted by decreasing price; flip for np.interp
        pb = env_b["price"][::-1]
        wb = env_b["welfare"][::-1]
        pr = env_r["price"][::-1]
        wr = env_r["welfare"][::-1]
        out_p = np.asarray(list(prices), dtype=float)
        gamma = np.full(len(out_p), math.nan)
        idx = np.flatnonzero((out_p >= pb[0]) & (out_p <= pb[-1]))
        if idx.size:
            targets = np.interp(np.log(out_p[idx]), np.log(pb), wb)
            # W_R decreasing in price: invert by interpolating price on
            # the (decreasing) welfare axis.  Targets above the table
            # stay NaN; targets below it clip to the last tabled ratio.
            below = targets < wr[-1]
            mid = (targets <= wr[0]) & ~below
            gamma[idx[below]] = pr[-1] / out_p[idx[below]]
            if np.any(mid):
                log_phat = np.interp(-targets[mid], -wr, np.log(pr))
                gamma[idx[mid]] = np.exp(log_phat) / out_p[idx[mid]]
        return {"price": out_p, "gamma": gamma}

    def equalizing_ratio_batch(self, prices, **envelope_kwargs) -> np.ndarray:
        """``gamma`` over a price grid (the ``ratio_curve`` values)."""
        return self.ratio_curve(prices, **envelope_kwargs)["gamma"]
