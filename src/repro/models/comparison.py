"""One-call orchestration of the paper's full comparison.

:class:`ArchitectureComparison` bundles the variable-load, welfare,
sampling and retrying models for a (load, utility) pair and produces
the complete set of quantities the paper reports — handy for the
examples and the experiment harness, and a natural top-level entry
point for library users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.loads.base import LoadDistribution
from repro.models.fixed_load import FixedLoadModel
from repro.models.retrying import RetryingModel
from repro.models.sampling import SamplingModel
from repro.models.variable_load import VariableLoadModel
from repro.models.welfare import WelfareModel
from repro.utility.base import UtilityFunction


@dataclass(frozen=True)
class ComparisonPoint:
    """All Section 3 quantities at a single capacity."""

    capacity: float
    k_max: int
    best_effort: float
    reservation: float
    performance_gap: float
    bandwidth_gap: float
    overload_probability: float

    def as_dict(self) -> dict:
        """Plain-dict view (stable keys, used by the CLI reports)."""
        return {
            "capacity": self.capacity,
            "k_max": self.k_max,
            "best_effort": self.best_effort,
            "reservation": self.reservation,
            "performance_gap": self.performance_gap,
            "bandwidth_gap": self.bandwidth_gap,
            "overload_probability": self.overload_probability,
        }


@dataclass
class ComparisonReport:
    """Full sweep output plus the models that produced it."""

    points: Sequence[ComparisonPoint]
    gamma_prices: np.ndarray = field(default_factory=lambda: np.empty(0))
    gamma_values: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def max_performance_gap(self) -> float:
        """Peak ``delta(C)`` over the sweep."""
        return max((pt.performance_gap for pt in self.points), default=0.0)

    @property
    def max_bandwidth_gap(self) -> float:
        """Peak ``Delta(C)`` over the sweep."""
        return max((pt.bandwidth_gap for pt in self.points), default=0.0)

    def bandwidth_gap_trend(self) -> str:
        """Coarse asymptotic verdict from the top third of the sweep.

        Returns ``"increasing"``, ``"decreasing"`` or ``"flat"`` — the
        property the paper keys its architecture recommendation on.
        """
        gaps = [pt.bandwidth_gap for pt in self.points]
        n = len(gaps)
        if n < 6:
            raise ValueError("need at least 6 sweep points for a trend verdict")
        tail = gaps[-(n // 3) :]
        span = max(tail) - min(tail)
        scale = max(max(tail), 1e-9)
        if span < 0.05 * scale:
            return "flat"
        return "increasing" if tail[-1] >= tail[0] else "decreasing"


class ArchitectureComparison:
    """The whole paper for one (load, utility) pair.

    >>> from repro.loads import GeometricLoad
    >>> from repro.utility import AdaptiveUtility
    >>> cmp = ArchitectureComparison(GeometricLoad.from_mean(100.0),
    ...                              AdaptiveUtility())
    >>> point = cmp.at(capacity=200.0)
    >>> point.reservation >= point.best_effort
    True
    """

    def __init__(
        self,
        load: LoadDistribution,
        utility: UtilityFunction,
        *,
        k_max_limit: Optional[int] = None,
    ):
        self._load = load
        self._utility = utility
        self._model = VariableLoadModel(load, utility, k_max_limit=k_max_limit)
        self._welfare: Optional[WelfareModel] = None
        self._k_max_limit = k_max_limit

    @property
    def load(self) -> LoadDistribution:
        """The offered-load distribution."""
        return self._load

    @property
    def utility(self) -> UtilityFunction:
        """The application utility function."""
        return self._utility

    @property
    def variable_load(self) -> VariableLoadModel:
        """The Section 3.1 model."""
        return self._model

    @property
    def fixed_load(self) -> FixedLoadModel:
        """A Section 2 model sharing this comparison's utility."""
        return FixedLoadModel(self._utility, k_max_limit=self._k_max_limit)

    @property
    def welfare(self) -> WelfareModel:
        """The Section 4 model (built lazily)."""
        if self._welfare is None:
            self._welfare = WelfareModel(self._model)
        return self._welfare

    def with_sampling(self, samples: int) -> SamplingModel:
        """Section 5.1 extension with ``samples`` census draws."""
        return SamplingModel(
            self._load, self._utility, samples, k_max_limit=self._k_max_limit
        )

    def with_retries(self, *, alpha: float = 0.1) -> RetryingModel:
        """Section 5.2 extension with retry penalty ``alpha``."""
        return RetryingModel(
            self._load, self._utility, alpha=alpha, k_max_limit=self._k_max_limit
        )

    def at(self, capacity: float) -> ComparisonPoint:
        """Every Section 3 quantity at one capacity."""
        m = self._model
        return ComparisonPoint(
            capacity=capacity,
            k_max=m.k_max(capacity),
            best_effort=m.best_effort(capacity),
            reservation=m.reservation(capacity),
            performance_gap=m.performance_gap(capacity),
            bandwidth_gap=m.bandwidth_gap(capacity),
            overload_probability=m.overload_probability(capacity),
        )

    def sweep(
        self,
        capacities: Sequence[float],
        *,
        prices: Optional[Sequence[float]] = None,
    ) -> ComparisonReport:
        """Full report over a capacity grid (and optional price grid)."""
        points = [self.at(float(c)) for c in capacities]
        if prices is not None:
            curve = self.welfare.ratio_curve(prices)
            return ComparisonReport(
                points=points,
                gamma_prices=curve["price"],
                gamma_values=curve["gamma"],
            )
        return ComparisonReport(points=points)

    def break_even_complexity_cost(self, price: float) -> float:
        """Fractional extra bandwidth cost reservations may carry.

        ``gamma(p) - 1``: if adding reservation capability raises the
        per-unit bandwidth cost by more than this fraction, best-effort
        is the better buy at price ``p`` (Section 4's decision rule).
        """
        return self.welfare.equalizing_ratio(price) - 1.0
