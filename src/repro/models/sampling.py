"""The sampling extension — Section 5.1 of the paper.

The basic model scores a flow at a single load level.  In reality the
load fluctuates during a flow's lifetime, and perceived quality tracks
the *worst* episode more than the average.  The extension: a flow
samples the census ``S`` times, each draw iid from the tagged-flow
(size-biased) view ``Q(k) = k P(k) / k_bar``, and its performance is
evaluated at the **maximum** of those samples.

Best-effort: utility is ``E[pi(C / max of S draws from Q)]``.

Reservations: the admission decision uses the *first* sample ``k1`` —
a flow arriving into census ``k1 > k_max`` is admitted with probability
``k_max / k1`` (only ``k_max`` of the ``k1`` contending flows hold
reservations).  Once admitted, every subsequent census the flow sees is
capped at ``k_max``, so its effective worst load is
``max(k1, min(k_max, k_2), ..., min(k_max, k_S)) <= k_max``.

Collapsing the order statistics gives a single pass over ``j``:

    R_S(C) = sum_{j < k_max} pi(C/j) [F(j)^S - F(j-1)^S]
           + pi(C/k_max) [F(k_max) - F(k_max - 1)^S]
           + pi(C/k_max) k_max P(K > k_max) / k_bar

with ``F`` the cdf of ``Q``.  Setting ``S = 1`` recovers the basic
model exactly (a property the tests exercise).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.loads.base import LoadDistribution
from repro.loads.weighted import SizeBiasedLoad
from repro.models.variable_load import (
    GAP_FLOOR,
    VariableLoadModel,
    solve_bandwidth_gaps,
)
from repro.numerics.batch import share_weighted_sums
from repro.numerics.solvers import invert_monotone
from repro.utility.base import UtilityFunction


class SamplingModel:
    """Worst-of-``S``-samples performance model (paper Section 5.1).

    Parameters
    ----------
    load:
        Census distribution ``P(k)``.
    utility:
        Application utility ``pi(b)``.
    samples:
        Number of independent census samples per flow (``S >= 1``).
    tol:
        Absolute truncation tolerance for the best-effort sum.
    """

    def __init__(
        self,
        load: LoadDistribution,
        utility: UtilityFunction,
        samples: int,
        *,
        tol: float = 1e-10,
        k_max_limit: Optional[int] = None,
    ):
        if samples < 1 or samples != int(samples):
            raise ValueError(f"samples must be a positive integer, got {samples!r}")
        self._load = load
        self._utility = utility
        self._samples = int(samples)
        self._tol = float(tol)
        self._base = VariableLoadModel(load, utility, k_max_limit=k_max_limit)
        self._biased = SizeBiasedLoad(load)
        self._kbar = load.mean
        # cached cdf of Q on 0..n (grown on demand)
        self._cdf = np.empty(0)

    @property
    def samples(self) -> int:
        """Number of census samples per flow."""
        return self._samples

    @property
    def base_model(self) -> VariableLoadModel:
        """The single-sample model this extends."""
        return self._base

    def k_max(self, capacity: float) -> int:
        """Admission threshold (same fixed-load optimum as the base)."""
        return self._base.k_max(capacity)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _ensure_cdf(self, n: int) -> None:
        """Grow the cached cdf of the size-biased census to cover <= n."""
        if len(self._cdf) >= n + 1:
            return
        size = 1 << max(10, (n + 1).bit_length())
        ks = np.arange(size, dtype=float)
        qk = ks * np.asarray(self._load.pmf_array(ks), dtype=float) / self._kbar
        if self._load.support_min > 0:
            qk[: self._load.support_min] = 0.0
        cdf = np.cumsum(qk)
        # guard against cumsum drift above 1
        np.clip(cdf, 0.0, 1.0, out=cdf)
        self._cdf = cdf

    def _sf_q_pow(self, n: int) -> float:
        """``P(max of S draws > n)`` with full tail precision."""
        sf1 = self._biased.sf(n)
        if sf1 > 1e-8:
            return 1.0 - (1.0 - sf1) ** self._samples
        s = float(self._samples)
        return s * sf1 - 0.5 * s * (s - 1.0) * sf1 * sf1

    def _truncation_point(self, capacity: float) -> int:
        """N with ``pi(C/N) * P(max > N) < tol`` (max-of-S tail bound).

        Delegates to the batch routine on a one-element grid so the
        scalar and batch paths cannot diverge at decision boundaries
        (libm vs numpy ``exp`` disagree by an ulp on occasion, which
        used to flip the level between the two mirrored loops).
        """
        return int(self._truncation_points_batch(np.array([float(capacity)]))[0])

    def _truncation_points_batch(self, caps: np.ndarray) -> np.ndarray:
        """Per-capacity truncation points, one tail evaluation per level.

        Mirrors :meth:`_truncation_point` decision-for-decision; the
        max-of-``S`` survival ``P(max > n)`` is capacity-independent,
        so each power-of-two level costs one scalar call regardless of
        grid size.
        """
        out = np.full(caps.size, -1, dtype=np.int64)
        open_ = np.ones(caps.size, dtype=bool)
        n = 1024
        while np.any(open_):
            sfp = self._sf_q_pow(n)
            vals = np.asarray(self._utility(caps[open_] / n), dtype=float)
            done = np.minimum(1.0, vals) * sfp < self._tol
            sel = np.flatnonzero(open_)[done]
            out[sel] = n
            open_[sel] = False
            if np.any(open_) and n > 1 << 26:
                bad = float(caps[np.flatnonzero(open_)[0]])
                raise RuntimeError(
                    f"sampling-model truncation exceeded 2^26 terms at C={bad}; "
                    "loosen tol or reduce the capacity range"
                )
            n <<= 1
        return out

    # ------------------------------------------------------------------
    # the model's quantities
    # ------------------------------------------------------------------

    def best_effort(self, capacity: float) -> float:
        """``B_S(C) = E[pi(C / max_S)]`` under best-effort-only.

        Already a per-flow average (the size-biased census *is* the
        tagged-flow view), so no ``k_bar`` normalisation is applied.
        """
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        n = self._truncation_point(capacity)
        self._ensure_cdf(n)
        cdf_pow = self._cdf[: n + 1] ** self._samples
        weights = np.diff(cdf_pow)  # pmf of the max at k = 1..n
        shares = capacity / np.arange(1, n + 1, dtype=float)
        return float(np.dot(weights, self._utility(shares)))

    def reservation(self, capacity: float) -> float:
        """``R_S(C)``: admit on first sample, cap subsequent censuses."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        kmax = self.k_max(capacity)
        if kmax < max(1, self._load.support_min):
            return 0.0
        self._ensure_cdf(kmax)
        s = self._samples
        # below-threshold worst loads: H(j) = F(j)^S for j < kmax
        cdf = self._cdf[: kmax + 1]
        cdf_pow = cdf**s
        inner = 0.0
        if kmax >= 2:
            weights = np.diff(cdf_pow[:-1])  # j = 1 .. kmax-1
            shares = capacity / np.arange(1, kmax, dtype=float)
            inner = float(np.dot(weights, self._utility(shares)))
        # worst load exactly kmax (admitted with first sample <= kmax)
        at_cap = float(cdf[kmax] - cdf_pow[kmax - 1])
        # overload-admitted flows (first sample k1 > kmax, prob kmax/k1):
        # sum_{k>kmax} Q(k) kmax / k = kmax * P(K > kmax) / k_bar
        over = kmax * self._load.sf(kmax) / self._kbar
        return inner + (at_cap + over) * self._utility.value(capacity / kmax)

    def performance_gap(self, capacity: float) -> float:
        """``delta_S(C) = R_S(C) - B_S(C)`` (clipped at zero)."""
        return max(0.0, self.reservation(capacity) - self.best_effort(capacity))

    def bandwidth_gap(
        self,
        capacity: float,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> float:
        """``Delta_S(C)`` solving ``B_S(C + Delta) = R_S(C)``."""
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=upper_limit,
            label=f"sampling bandwidth gap at C={capacity}",
        )
        return max(0.0, solution - capacity)

    # ------------------------------------------------------------------
    # batch evaluation (whole-grid sweeps)
    # ------------------------------------------------------------------

    def _validated_grid(self, capacities) -> np.ndarray:
        caps = np.asarray(capacities, dtype=float).ravel()
        if caps.size and float(np.min(caps)) < 0.0:
            raise ValueError(
                f"capacity must be >= 0, got {float(np.min(caps))!r}"
            )
        return caps

    def best_effort_batch(self, capacities) -> np.ndarray:
        """``B_S`` over a capacity grid via the shared series kernel.

        The max-of-``S`` pmf weights depend only on ``k``, so each
        truncation group runs as one chunked matrix product with the
        same terms the scalar path sums.
        """
        caps = self._validated_grid(capacities)
        totals = np.zeros(caps.size)
        live = np.flatnonzero(caps > 0.0)
        if live.size == 0:
            return totals
        points = self._truncation_points_batch(caps[live])
        for n in np.unique(points):
            n = int(n)
            idx = live[points == n]
            self._ensure_cdf(n)
            cdf_pow = self._cdf[: n + 1] ** self._samples
            weights = np.concatenate(([0.0], np.diff(cdf_pow)))
            totals[idx] = share_weighted_sums(
                caps[idx], weights, self._utility, k_start=1, k_stop=n + 1
            )
        return totals

    def reservation_batch(self, capacities) -> np.ndarray:
        """``R_S`` over a capacity grid: batch ``k_max`` + one masked sum."""
        caps = self._validated_grid(capacities)
        totals = np.zeros(caps.size)
        pos = np.flatnonzero(caps > 0.0)
        if pos.size == 0:
            return totals
        kmax = self._base.k_max_batch(caps[pos])
        floor = max(1, self._load.support_min)
        live = kmax >= floor
        if not np.any(live):
            return totals
        idx = pos[live]
        sub_caps = caps[idx]
        sub_kmax = kmax[live]
        top = int(sub_kmax.max())
        self._ensure_cdf(top)
        cdf = self._cdf[: top + 1]
        cdf_pow = cdf**self._samples
        weights = np.concatenate(([0.0], np.diff(cdf_pow)))
        inner = share_weighted_sums(
            sub_caps,
            weights,
            self._utility,
            k_start=1,
            k_stop=top + 1,
            kmax=sub_kmax - 1,
        )
        at_cap = cdf[sub_kmax] - cdf_pow[sub_kmax - 1]
        over = (
            sub_kmax
            * np.asarray(self._load.sf_array(sub_kmax), dtype=float)
            / self._kbar
        )
        pi_cap = np.asarray(self._utility(sub_caps / sub_kmax), dtype=float)
        totals[idx] = inner + (at_cap + over) * pi_cap
        return totals

    def performance_gap_batch(self, capacities) -> np.ndarray:
        """``delta_S`` over a capacity grid (clipped at zero)."""
        caps = self._validated_grid(capacities)
        return np.maximum(
            0.0, self.reservation_batch(caps) - self.best_effort_batch(caps)
        )

    def bandwidth_gap_batch(
        self,
        capacities,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> np.ndarray:
        """``Delta_S`` over a capacity grid via one vectorised inversion."""
        caps = self._validated_grid(capacities)
        return solve_bandwidth_gaps(
            self.best_effort_batch,
            caps,
            self.reservation_batch(caps),
            self.best_effort_batch(caps),
            gap_floor=gap_floor,
            upper_limit=upper_limit,
            scalar_fallback=lambda c: self.bandwidth_gap(
                c, gap_floor=gap_floor, upper_limit=upper_limit
            ),
            label="sampling bandwidth gap batch",
        )

    def sweep(self, capacities, *, include_gaps: bool = True) -> dict:
        """Figure-series sweep mirroring :meth:`VariableLoadModel.sweep`."""
        caps = np.asarray(list(capacities), dtype=float)
        b = self.best_effort_batch(caps)
        r = self.reservation_batch(caps)
        out = {
            "capacity": caps,
            "best_effort": b,
            "reservation": r,
            "performance_gap": np.maximum(0.0, r - b),
        }
        if include_gaps:
            out["bandwidth_gap"] = self.bandwidth_gap_batch(caps)
        return out
