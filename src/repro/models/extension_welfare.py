"""Welfare analysis over the Section 5 extension models.

Section 5 reports how sampling and retrying change the *welfare*
comparison, not just the fixed-capacity gaps — most strikingly that
with retries "the price ratio curve gamma(p), which in all previous
cases was monotonically increasing, now decreases for very small p":
cheaper bandwidth can make reservations *more* attractive.

:class:`ExtensionWelfare` runs the Section 4 machinery over any model
exposing per-flow ``best_effort(C)`` / ``reservation(C)`` (the
sampling, retrying and risk-averse models).  Unlike the basic model's
``V`` curves, the extensions' can be *non-concave* in capacity (the
sampling ``V_R`` is S-shaped), so optima come from the discrete
Legendre transform ``W(p) = max_i (V(C_i) - p C_i)`` over a capacity
grid — exact up to grid resolution, no smoothness assumed.  This also
sidesteps the retry model's low-capacity validity floor.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.numerics.solvers import invert_monotone


class ExtensionWelfare:
    """Grid-Legendre welfare curves for extension models.

    Parameters
    ----------
    model:
        Anything with ``best_effort(C)`` and ``reservation(C)``
        returning per-flow utilities (SamplingModel, RetryingModel,
        RiskAverseModel).
    mean_load:
        The mean offered load ``k_bar`` scaling per-flow utility to
        total utility.
    c_min, c_max, points:
        Capacity grid.  ``c_min`` must respect the model's validity
        floor (the retry fixed point diverges under heavy blocking, so
        ~2 * k_bar is a safe floor there).
    """

    def __init__(
        self,
        model,
        mean_load: float,
        *,
        c_min: Optional[float] = None,
        c_max: Optional[float] = None,
        points: int = 160,
    ):
        if mean_load <= 0.0:
            raise ModelError(f"mean_load must be > 0, got {mean_load!r}")
        self._model = model
        self._kbar = float(mean_load)
        self._c_min = c_min if c_min is not None else 2.0 * self._kbar
        self._c_max = c_max if c_max is not None else 64.0 * self._kbar
        if not 0.0 < self._c_min < self._c_max:
            raise ModelError(
                f"need 0 < c_min < c_max, got [{self._c_min}, {self._c_max}]"
            )
        self._points = int(points)
        self._caps = np.geomspace(self._c_min, self._c_max, self._points)
        self._totals: dict = {}

    def _table(self, which: str) -> np.ndarray:
        """Total utility ``k_bar * per_flow(C)`` along the grid."""
        cached = self._totals.get(which)
        if cached is None:
            per_flow = getattr(self._model, which)
            cached = np.array(
                [self._kbar * per_flow(float(c)) for c in self._caps]
            )
            self._totals[which] = cached
        return cached

    def _welfare(self, which: str, price: float) -> float:
        """Discrete Legendre transform ``max_i (V_i - p C_i)``.

        Raises when the argmax sits on the grid boundary — the true
        optimum then lies outside the grid and the caller should widen
        it (interior optima are exact up to grid resolution).
        """
        if price <= 0.0:
            raise ModelError(f"price must be > 0, got {price!r}")
        values = self._table(which) - price * self._caps
        best = int(np.argmax(values))
        if best == 0:
            raise ModelError(
                f"welfare optimum for {which!r} at price {price} sits at "
                f"c_min={self._c_min}; price too high for this grid"
            )
        if best == self._points - 1:
            raise ModelError(
                f"welfare optimum for {which!r} at price {price} sits at "
                f"c_max={self._c_max}; extend the grid for prices this low"
            )
        return float(values[best])

    def optimal_capacity(self, which: str, price: float) -> float:
        """Grid argmax capacity for one architecture at ``price``."""
        values = self._table(which) - price * self._caps
        return float(self._caps[int(np.argmax(values))])

    def price_range(self) -> tuple:
        """Price interval where both optima stay interior on the grid.

        Bounded by the secant slopes at the grid ends: prices above the
        first-segment slope push the optimum to c_min, prices below the
        last-segment slope push it to c_max.
        """
        lo = 0.0
        hi = math.inf
        for which in ("best_effort", "reservation"):
            totals = self._table(which)
            first_slope = (totals[1] - totals[0]) / (self._caps[1] - self._caps[0])
            last_slope = (totals[-1] - totals[-2]) / (
                self._caps[-1] - self._caps[-2]
            )
            lo = max(lo, last_slope)
            hi = min(hi, first_slope)
        if not 0.0 < lo < hi:
            raise ModelError(
                "the capacity grid yields no common interior price range; "
                "widen [c_min, c_max]"
            )
        return lo, hi

    def welfare_best_effort(self, price: float) -> float:
        """``W_B(p)``."""
        return self._welfare("best_effort", price)

    def welfare_reservation(self, price: float) -> float:
        """``W_R(p)``."""
        return self._welfare("reservation", price)

    def equalizing_ratio(self, price: float) -> float:
        """``gamma(p)`` with ``W_R(gamma p) = W_B(p)``.

        ``W_R`` from the Legendre transform is convex and strictly
        decreasing in price, so the inversion is a clean monotone
        root-find.
        """
        target = self.welfare_best_effort(price)
        _, hi = self.price_range()
        p_hat = invert_monotone(
            self.welfare_reservation,
            target,
            price,
            min(2.0 * price, hi),
            increasing=False,
            upper_limit=hi,
            label=f"extension equalizing price at p={price}",
            clip="lo",
        )
        return p_hat / price

    def ratio_curve(self, prices) -> dict:
        """``gamma(p)`` over a price grid (NaN outside the valid range)."""
        out_p = np.asarray(list(prices), dtype=float)
        gamma = np.full(len(out_p), math.nan)
        lo, hi = self.price_range()
        for i, p in enumerate(out_p):
            if lo < p < hi:
                try:
                    gamma[i] = self.equalizing_ratio(float(p))
                except ModelError:
                    pass
        return {"price": out_p, "gamma": gamma}
