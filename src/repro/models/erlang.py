"""Erlang-B: the telephony benchmark for the reservation architecture.

The paper frames reservations as the telephone network's discipline.
For rigid unit-demand flows with Poisson arrivals and
lost-calls-cleared dynamics, a century of teletraffic theory gives the
blocking probability in closed form — the Erlang-B formula

    B(c, a) = (a^c / c!) / sum_{j=0}^{c} a^j / j!

for ``c`` circuits and offered load ``a`` (arrival rate x mean
holding).  This module provides it (in the standard numerically stable
recurrence) together with the carried-load utility it implies, as an
independent cross-check on both the static model and the simulator:

- the static model's census-based ``R(C)`` uses the *admit-all-demand*
  census (rejected flows remain in the population), so its blocking is
  generally *higher* than Erlang-B's at the same mean;
- the simulator with ``lost_calls_cleared`` dynamics must match
  Erlang-B to Monte Carlo accuracy.
"""

from __future__ import annotations

from repro.errors import ModelError


def erlang_b(circuits: int, offered_load: float) -> float:
    """Erlang-B blocking probability, stable recurrence.

    ``B(0, a) = 1``; ``B(c, a) = a B(c-1, a) / (c + a B(c-1, a))``.
    """
    if circuits < 0 or circuits != int(circuits):
        raise ModelError(f"circuits must be a nonnegative integer, got {circuits!r}")
    if offered_load < 0.0:
        raise ModelError(f"offered load must be >= 0, got {offered_load!r}")
    if offered_load == 0.0:
        return 0.0
    blocking = 1.0
    for c in range(1, int(circuits) + 1):
        blocking = offered_load * blocking / (c + offered_load * blocking)
    return blocking


def erlang_b_inverse(offered_load: float, target_blocking: float) -> int:
    """Smallest circuit count with blocking at or below the target.

    The provisioning question telephone engineers actually asked — and
    the one the paper's opponents-of-reservations argument leans on
    ("a reservation-capable network will not deliver satisfactory
    service unless its blocking rate is low").
    """
    if not 0.0 < target_blocking < 1.0:
        raise ModelError(
            f"target blocking must be in (0, 1), got {target_blocking!r}"
        )
    if offered_load < 0.0:
        raise ModelError(f"offered load must be >= 0, got {offered_load!r}")
    if offered_load == 0.0:
        return 0
    blocking = 1.0
    c = 0
    # the recurrence marches one circuit at a time; blocking is
    # strictly decreasing in c so the first crossing is the answer
    while blocking > target_blocking:
        c += 1
        blocking = offered_load * blocking / (c + offered_load * blocking)
        if c > 100_000_000:  # pragma: no cover - absurd inputs only
            raise ModelError("erlang_b_inverse exceeded 1e8 circuits")
    return c


def carried_utility(circuits: int, offered_load: float) -> float:
    """Per-flow utility of a rigid-application loss system.

    Every carried (non-blocked) call gets full utility 1, every blocked
    call 0, so the per-flow average is simply ``1 - B(c, a)`` — the
    Erlang-dynamics counterpart of the static model's ``R(C)``.
    """
    return 1.0 - erlang_b(circuits, offered_load)
