"""The discrete variable load model — Section 3.1 of the paper.

The load is a probability distribution ``P(k)`` over the number of
flows requesting service.  With link capacity ``C``:

- **Best-effort-only** admits everyone; each of ``k`` flows receives
  ``C/k``, so the total utility is ``V_B(C) = sum_k P(k) k pi(C/k)``.
- **Reservation-capable** admits at most ``k_max(C)`` flows (the
  fixed-load optimum); each admitted flow receives
  ``C/min(k, k_max)`` and each rejected flow receives nothing:
  ``V_R(C) = sum_{k<=k_max} P(k) k pi(C/k)
           + k_max pi(C/k_max) P(K > k_max)``.

Both are reported normalised by the mean load, ``B(C) = V_B(C)/k_bar``
and ``R(C) = V_R(C)/k_bar``, exactly as in the paper's figures.  The
two headline quantities are the *performance gap*
``delta(C) = R(C) - B(C)`` and the *bandwidth gap* ``Delta(C)``
defined implicitly by ``B(C + Delta(C)) = R(C)`` — how much extra
capacity buys best-effort the reservation architecture's utility.

Numerics
--------
The infinite sum for ``V_B`` is truncated where an analytic bound on
the remainder (``pi(C/N) * sum_{k>=N} k P(k)``, both closed-form)
drops below tolerance.  Under heavy-tailed loads at large ``C`` that
truncation point can exceed any reasonable array size, so beyond a cap
the far tail is replaced by an Euler-Maclaurin integral of the smooth
pmf extension — exact integrand, no model-specific approximation.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.caching import BoundedCache
from repro.errors import ConvergenceError
from repro.loads.base import LoadDistribution
from repro.models.fixed_load import FixedLoadModel
from repro.numerics import series
from repro.numerics.batch import invert_monotone_batch, share_weighted_sums
from repro.numerics.quadrature import integrate
from repro.numerics.solvers import invert_monotone
from repro.utility.base import UtilityFunction

#: Default absolute tolerance on the (unnormalised) total utilities.
DEFAULT_TOL = 1e-9

#: Largest array length brute-force summation will allocate.
BRUTE_FORCE_CAP = 1 << 22

#: Normalised performance gaps below this are treated as exactly zero
#: when solving for the bandwidth gap (they are below the numerical
#: noise floor of the truncated sums).
GAP_FLOOR = 1e-12

#: Evaluation modes chosen by the series planner (:meth:`_plan_batch`):
#: full dense summation up to a level, dense head + shared polynomial
#: tail at a level, or the Euler-Maclaurin integral fallback.
_MODE_DENSE = 0
_MODE_TAIL = 1
_MODE_EM = 2

#: Smallest series level the planner will consider.  Levels below the
#: historical 1024 matter once the polynomial tail exists: a solver
#: probe at C ~ 80 clears the certified remainder bound already at
#: n = 256, quartering its dense head.  Loads whose tails die fast
#: (Poisson) become DENSE at 256 too — the omitted terms are below one
#: ulp of the total, so reported values do not move.
_PLAN_MIN_LEVEL = 256

#: Process-wide memo of planner capacity ceilings keyed by
#: ``(load, utility, tol)`` — loads and utilities hash by value, so
#: every model over the same family shares one table (and the bisection
#: cost below is paid once per family, not once per model instance).
_PLAN_CEILINGS: BoundedCache = BoundedCache(maxsize=128)


def _capacity_ceiling(predicate: Callable[[float], bool], b_hi: float) -> float:
    """``sup { b >= 0 : predicate(b) }`` for a monotone predicate.

    ``predicate`` must hold on ``[0, b*)`` and fail on ``(b*, b_hi]``
    (tail-bound predicates are monotone in the per-flow bandwidth).
    Returns ``inf`` when it holds everywhere up to ``b_hi``.  The
    bisection keeps the invariant ``predicate(lo) == True``, so any
    residual slack only sends capacities to a *higher* level — it can
    never admit a capacity whose tail bound misses the tolerance.
    """
    if predicate(b_hi):
        return math.inf
    lo, hi = 0.0, float(b_hi)
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if predicate(mid):
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, lo):
            break
    return lo


def solve_bandwidth_gaps(
    best_effort_batch,
    capacities: np.ndarray,
    targets: np.ndarray,
    base_values: np.ndarray,
    *,
    gap_floor: float = GAP_FLOOR,
    upper_limit: float = 1e9,
    scalar_fallback=None,
    label: str = "bandwidth gap batch",
) -> np.ndarray:
    """Solve ``B(C + Delta) = target`` over a grid in one vector call.

    Shared by the variable-load, retrying and sampling models: each
    supplies its own vectorised best-effort curve and its own targets.
    Elements whose gap is below ``gap_floor`` return exactly 0.0 (the
    scalar contract); elements the batch solver flags as unconverged
    are re-solved through ``scalar_fallback(capacity)`` and counted as
    ``batch.fallback_scalar``.
    """
    caps = np.asarray(capacities, dtype=float).ravel()
    gaps = np.zeros(caps.size)
    idx = np.flatnonzero((targets - base_values) > gap_floor)
    if idx.size == 0:
        return gaps
    sub = caps[idx]
    result = invert_monotone_batch(
        best_effort_batch,
        targets[idx],
        sub,
        sub + np.maximum(1.0, sub),
        increasing=True,
        upper_limit=upper_limit,
        label=label,
    )
    ok = result.converged & np.isfinite(result.roots)
    gaps[idx[ok]] = np.maximum(0.0, result.roots[ok] - sub[ok])
    bad = np.flatnonzero(~ok)
    if bad.size:
        if obs.enabled():
            obs.counter("batch.fallback_scalar").inc(int(bad.size))
        if scalar_fallback is not None:
            for j in bad:
                gaps[idx[j]] = scalar_fallback(float(sub[j]))
    return gaps


class VariableLoadModel:
    """Compare architectures under a distribution of offered loads.

    Parameters
    ----------
    load:
        The stationary flow-count distribution ``P(k)``.
    utility:
        The per-application utility ``pi(b)``.
    tol:
        Absolute truncation tolerance for the total-utility sums
        (unnormalised units, i.e. flows' worth of utility).
    k_max_limit:
        Passed through to :class:`FixedLoadModel` for the ``k_max``
        search; only needed for exotic utilities.
    k_max_override:
        Optional ``capacity -> threshold`` replacing the ``k_max``
        optimisation (required for elastic utilities, footnote 9).
    """

    def __init__(
        self,
        load: LoadDistribution,
        utility: UtilityFunction,
        *,
        tol: float = DEFAULT_TOL,
        k_max_limit: Optional[int] = None,
        k_max_override=None,
    ):
        if tol <= 0.0:
            raise ValueError(f"tol must be > 0, got {tol!r}")
        self._load = load
        self._utility = utility
        self._tol = float(tol)
        # certified Maclaurin expansion of pi (None for rigid/ramp
        # utilities) — enables the shared polynomial-tail evaluation
        self._maclaurin = utility.maclaurin(series.TAIL_DEGREE)
        # per-level planner ceilings, resolved lazily from the shared
        # process-wide memo (see _plan_ceilings)
        self._ceilings: Optional[tuple] = None
        self._fixed = FixedLoadModel(
            utility, k_max_limit=k_max_limit, k_max_override=k_max_override
        )
        self._kbar = load.mean
        # grown-on-demand cache of k, P(k) and k*P(k) arrays
        self._ks = np.empty(0)
        self._pk = np.empty(0)
        self._kpk = np.empty(0)
        # per-capacity totals: float keys rounded to the solver
        # x-tolerance (so gap-solver probes hit) and LRU-bounded (so
        # long sweeps cannot grow them without limit)
        self._b_cache = BoundedCache()
        self._r_cache = BoundedCache()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @property
    def load(self) -> LoadDistribution:
        """The offered-load distribution."""
        return self._load

    @property
    def utility(self) -> UtilityFunction:
        """The application utility function."""
        return self._utility

    @property
    def mean_load(self) -> float:
        """``k_bar``, the average number of flows requesting service."""
        return self._kbar

    def k_max(self, capacity: float) -> int:
        """Admission threshold used by the reservation architecture."""
        return self._fixed.k_max(capacity)

    def k_max_batch(self, capacities) -> np.ndarray:
        """Admission thresholds over a capacity grid (vectorised)."""
        return self._fixed.k_max_batch(capacities)

    # ------------------------------------------------------------------
    # internal summation machinery
    # ------------------------------------------------------------------

    def _ensure_terms(self, n: int) -> None:
        """Grow the cached ``k``/``P(k)``/``k P(k)`` arrays to cover k <= n."""
        if len(self._ks) >= n + 1:
            return
        size = 1 << max(10, (n + 1).bit_length())
        ks = np.arange(size, dtype=float)
        pk = np.asarray(self._load.pmf_array(ks), dtype=float)
        if self._load.support_min > 0:
            pk[: self._load.support_min] = 0.0
        self._ks, self._pk, self._kpk = ks, pk, ks * pk

    def _tail_bound(self, n: int, capacity: float) -> float:
        """Bound on ``sum_{k>=n} P(k) k pi(C/k)``.

        ``pi(C/k)`` is nonincreasing in ``k``, so the tail is at most
        ``pi(C/n) * mean_tail(n)`` — and trivially at most
        ``mean_tail(n)``.
        """
        mt = self._load.mean_tail(n)
        if mt <= 0.0:
            return 0.0
        return min(1.0, self._utility.value(capacity / n)) * mt

    def _truncation_point(self, capacity: float) -> Optional[int]:
        """Smallest power-of-two N with tail bound < tol, or None if > cap.

        Delegates to the batch routine on a one-element grid so the two
        paths *cannot* diverge: the scalar loop previously went through
        ``utility.value`` (libm ``exp``) while the batch went through
        the vectorised ``numpy`` ``exp``, and a one-ulp disagreement at
        a decision boundary flipped the truncation level between the
        two paths for the same capacity.
        """
        n = int(self._truncation_points_batch(np.array([float(capacity)]))[0])
        return None if n < 0 else n

    def _truncation_points_batch(self, caps: np.ndarray) -> np.ndarray:
        """Per-capacity truncation points with one ``mean_tail`` per level.

        Mirrors :meth:`_truncation_point` decision-for-decision but
        evaluates the utility bound for every still-open capacity as a
        single vector call, so a grid costs one scalar ``mean_tail``
        per power-of-two level instead of one per grid point.  Entries
        where the scalar path would return ``None`` come back as -1.
        """
        out = np.full(caps.size, -1, dtype=np.int64)
        open_ = np.ones(caps.size, dtype=bool)
        n = 1024
        while n <= BRUTE_FORCE_CAP and np.any(open_):
            mt = self._load.mean_tail(n)
            if mt <= 0.0:
                out[open_] = n
                break
            vals = np.asarray(self._utility(caps[open_] / n), dtype=float)
            done = np.minimum(1.0, vals) * mt < self._tol
            sel = np.flatnonzero(open_)[done]
            out[sel] = n
            open_[sel] = False
            n <<= 1
        return out

    def _plan_ceilings(self) -> tuple:
        """Per-level capacity ceilings ``(levels, c_dense, c_tail)``.

        Level ``n`` closes a capacity as DENSE when ``C <= c_dense``
        (the plain tail bound ``min(1, pi(C/n)) * mean_tail(n)`` clears
        the tolerance — the historical truncation rule) and as TAIL
        when ``C <= c_tail`` (the certified Maclaurin remainder bound
        fits in half the tolerance).  Both bounds are monotone in
        ``C/n``, so each rule collapses to one capacity threshold per
        level, found once by bisection and shared process-wide across
        every model over the same ``(load, utility, tol)``.  Planning a
        grid is then pure comparisons — no utility evaluations on the
        hot path at all.
        """
        cached = self._ceilings
        if cached is not None:
            return cached
        key = (self._load, self._utility, self._tol)
        cached = _PLAN_CEILINGS.get(key)
        if cached is None:
            levels, c_dense, c_tail = [], [], []
            n = _PLAN_MIN_LEVEL
            while n <= BRUTE_FORCE_CAP:
                mt = self._load.mean_tail(n)
                if mt <= 0.0:
                    cd, ct = math.inf, -math.inf
                else:
                    cd = n * _capacity_ceiling(
                        lambda b: min(1.0, self._utility.value(b)) * mt
                        < self._tol,
                        1e9,
                    )
                    if self._maclaurin is None:
                        ct = -math.inf
                    else:
                        mac = self._maclaurin
                        ct = n * _capacity_ceiling(
                            lambda b: float(mac.remainder_bound(b)) * mt
                            <= 0.5 * self._tol,
                            mac.radius,
                        )
                levels.append(n)
                c_dense.append(cd)
                c_tail.append(ct)
                if cd == math.inf:
                    # this level closes every capacity as DENSE; higher
                    # levels are unreachable
                    break
                n <<= 1
            cached = (
                np.asarray(levels, dtype=np.int64),
                np.asarray(c_dense, dtype=float),
                np.asarray(c_tail, dtype=float),
            )
            _PLAN_CEILINGS.put(key, cached)
        self._ceilings = cached
        return cached

    def _plan_batch(self, caps: np.ndarray) -> tuple:
        """Choose an evaluation mode and series level per capacity.

        Walks the power-of-two levels once for the whole grid, closing
        capacities against the precomputed ceilings: DENSE when the
        plain tail bound clears the tolerance, else TAIL when the
        utility's certified Maclaurin remainder fits in half the
        tolerance *and* the load can supply a moment-tail table at that
        level — the dense head then stops at ``n`` and the rest is the
        shared polynomial.  Whatever is still open past
        ``BRUTE_FORCE_CAP`` falls to the Euler-Maclaurin integral.
        DENSE is tested first so loads whose tails die fast (Poisson)
        keep plans equivalent to the historical truncation rule.

        Both the scalar and batch entry points evaluate through this
        one planner, so their results differ only by summation-order
        roundoff — never by plan.
        """
        level_arr, c_dense, c_tail = self._plan_ceilings()
        modes = np.full(caps.size, _MODE_EM, dtype=np.int64)
        levels = np.full(caps.size, -1, dtype=np.int64)
        open_ = np.ones(caps.size, dtype=bool)
        for i, n in enumerate(level_arr):
            if not np.any(open_):
                break
            dense_ok = open_ & (caps <= c_dense[i])
            tail_ok = open_ & ~dense_ok & (caps <= c_tail[i])
            if np.any(tail_ok) and (
                series.shared_moment_tail_table(self._load, int(n)) is None
            ):
                tail_ok = np.zeros_like(tail_ok)
            closed = dense_ok | tail_ok
            if np.any(closed):
                modes[dense_ok] = _MODE_DENSE
                modes[tail_ok] = _MODE_TAIL
                levels[closed] = n
                open_ &= ~closed
        return modes, levels

    def _plan(self, capacity: float) -> tuple:
        """Scalar view of :meth:`_plan_batch` (one-element grid)."""
        modes, levels = self._plan_batch(np.array([float(capacity)]))
        return int(modes[0]), int(levels[0])

    def _euler_maclaurin_tail(self, n0: int, capacity: float) -> float:
        """``sum_{k>=n0} P(k) k pi(C/k)`` via integral + EM correction.

        ``sum_{k>=n0} f(k) ~ int_{n0}^inf f + f(n0)/2 - f'(n0)/12`` for a
        smooth, decaying ``f``.  The integrand uses the load's smooth
        pmf extension and the *exact* utility; quadrature is split at
        the utility's breakpoints mapped into flow counts.
        """
        if self._utility.value(capacity / n0) == 0.0:
            # pi is nondecreasing and every share beyond n0 is smaller
            # than capacity/n0, so the whole tail is exactly zero: skip
            # the substitution entirely rather than hand quadrature an
            # identically-zero integrand whose breakpoints have mapped
            # outside (0, 1] (degenerate/empty split intervals).
            return 0.0

        def f(x: float) -> float:
            return self._load.continuous_pmf(x) * x * self._utility.value(capacity / x)

        # substitute x = n0/u so the semi-infinite integral becomes a
        # finite one (u in (0, 1]); quad to infinity hits roundoff at
        # tight tolerances on slowly decaying integrands
        def g(u: float) -> float:
            if u <= 0.0:
                return 0.0
            uu = u * u
            if uu == 0.0:
                # u below ~1.5e-154 squares to an exact 0.0 (subnormal
                # underflow); the integrand itself tends to 0 there
                # because the pmf decays faster than x^2 grows
                return 0.0
            x = n0 / u
            return f(x) * n0 / uu

        points = sorted(
            {
                n0 * b / capacity
                for b in self._utility.breakpoints()
                if 0.0 < n0 * b / capacity < 1.0
            }
        )
        tail = integrate(
            g,
            0.0,
            1.0,
            points=points,
            tol=min(1e-11, 0.01 * self._tol),
            label=f"EM tail (C={capacity}, n0={n0})",
        )
        h = max(1e-4 * n0, 1e-3)
        f_prime = (f(n0 + h) - f(n0 - h)) / (2.0 * h)
        return tail + 0.5 * f(float(n0)) - f_prime / 12.0

    def _dense_total(self, capacity: float, n: int) -> float:
        """Dense ``sum_{k<n} P(k) k pi(C/k)`` (the head of every mode)."""
        self._ensure_terms(n)
        shares = np.empty(n)
        shares[0] = 0.0  # k = 0 contributes nothing (kpk = 0)
        shares[1:] = capacity / self._ks[1:n]
        return float(np.dot(self._kpk[:n], self._utility(shares)))

    def total_best_effort(self, capacity: float) -> float:
        """Unnormalised ``V_B(C) = sum_k P(k) k pi(C/k)``."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        cached = self._b_cache.get(capacity)
        if cached is not None:
            return cached

        mode, n = self._plan(capacity)
        if mode == _MODE_DENSE:
            total = self._dense_total(capacity, n)
        elif mode == _MODE_TAIL:
            table = series.shared_moment_tail_table(self._load, n)
            tail = float(
                series.power_series_tail(
                    self._maclaurin.coefficients, table, capacity
                )
            )
            total = self._dense_total(capacity, n) + tail
        else:
            n0 = min(BRUTE_FORCE_CAP, 1 << max(12, int(32 * capacity).bit_length()))
            try:
                em = self._euler_maclaurin_tail(n0, capacity)
            except NotImplementedError as exc:
                raise ConvergenceError(
                    f"V_B(C={capacity}) needs a tail correction but the load "
                    f"has no smooth pmf extension: {exc}"
                ) from exc
            total = self._dense_total(capacity, n0) + em

        self._b_cache.put(capacity, total)
        return total

    def total_reservation(self, capacity: float) -> float:
        """Unnormalised ``V_R(C)`` with admission threshold ``k_max(C)``."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        cached = self._r_cache.get(capacity)
        if cached is not None:
            return cached

        kmax = self.k_max(capacity)
        if kmax < max(1, self._load.support_min):
            self._r_cache.put(capacity, 0.0)
            return 0.0
        self._ensure_terms(kmax)
        shares = np.empty(kmax + 1)
        shares[0] = 0.0
        shares[1:] = capacity / self._ks[1 : kmax + 1]
        admitted = float(np.dot(self._kpk[: kmax + 1], self._utility(shares)))
        overload = (
            kmax * self._utility.value(capacity / kmax) * self._load.sf(kmax)
        )
        total = admitted + overload
        self._r_cache.put(capacity, total)
        return total

    def total_reservation_at_threshold(self, capacity: float, threshold: int) -> float:
        """``V_R(C)`` with an *arbitrary* admission threshold.

        The paper's architecture uses the utility-maximising
        ``k_max(C)``; real admission controllers get the threshold
        wrong (measurement error, trunk-reservation margins).  This
        evaluates the reservation total at any threshold so that
        sensitivity can be quantified — by construction it is maximised
        at ``threshold = k_max(C)``.
        """
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if threshold < 0 or threshold != int(threshold):
            raise ValueError(f"threshold must be a nonneg integer, got {threshold!r}")
        if capacity == 0.0 or threshold == 0:
            return 0.0
        kmax = int(threshold)
        if kmax < self._load.support_min:
            return 0.0
        self._ensure_terms(kmax)
        shares = np.empty(kmax + 1)
        shares[0] = 0.0
        shares[1:] = capacity / self._ks[1 : kmax + 1]
        admitted = float(np.dot(self._kpk[: kmax + 1], self._utility(shares)))
        overload = kmax * self._utility.value(capacity / kmax) * self._load.sf(kmax)
        return admitted + overload

    def reservation_at_threshold(self, capacity: float, threshold: int) -> float:
        """Normalised reservation utility at an arbitrary threshold."""
        return self.total_reservation_at_threshold(capacity, threshold) / self._kbar

    # ------------------------------------------------------------------
    # batch evaluation (whole-grid sweeps)
    # ------------------------------------------------------------------

    def _validated_grid(self, capacities) -> np.ndarray:
        caps = np.asarray(capacities, dtype=float).ravel()
        if caps.size and float(np.min(caps)) < 0.0:
            raise ValueError(
                f"capacity must be >= 0, got {float(np.min(caps))!r}"
            )
        return caps

    @obs.timed("model.total_best_effort_batch")
    def total_best_effort_batch(self, capacities, *, cache: bool = True) -> np.ndarray:
        """``V_B`` over a capacity grid in a handful of numpy calls.

        Capacities are grouped by the planner's (mode, level) — levels
        are powers of two, so grids share a few groups — and each
        group's dense head runs as one chunked matrix product over
        terms identical to the scalar path's.  TAIL groups then add the
        shared polynomial tail, one Horner pass over the group's grid
        from the memoised moment table (no per-point series work).
        Capacities needing the Euler-Maclaurin integral fall back to
        the scalar path (counted as ``batch.fallback_scalar``).
        Results land in the same per-capacity cache the scalar path
        uses, so gap solvers mixing both paths never recompute.

        ``cache=False`` bypasses the per-capacity LRU entirely (neither
        read nor written).  The bandwidth-gap solver uses it for its
        Chandrupatla probes: each probe point is evaluated exactly once
        per solve, so caching them buys nothing and evicts the sweep's
        reusable entries; the per-point Python cache traffic is also a
        measurable slice of a solve's wall time.
        """
        caps = self._validated_grid(capacities)
        totals = np.zeros(caps.size)
        if cache:
            todo = []
            for i, c in enumerate(caps):
                if c == 0.0:
                    continue
                cached = self._b_cache.get(float(c))
                if cached is not None:
                    totals[i] = cached
                else:
                    todo.append(i)
            todo_idx = np.asarray(todo, dtype=np.int64)
        else:
            todo_idx = np.flatnonzero(caps != 0.0)
        if todo_idx.size == 0:
            return totals
        modes, levels = self._plan_batch(caps[todo_idx])
        for mode, n in sorted(set(zip(modes.tolist(), levels.tolist()))):
            idx = todo_idx[(modes == mode) & (levels == n)]
            if mode == _MODE_EM:
                if obs.enabled():
                    obs.counter("batch.fallback_scalar").inc(int(idx.size))
                for i in idx:
                    totals[i] = self.total_best_effort(float(caps[i]))
                continue
            self._ensure_terms(n)
            sums = share_weighted_sums(
                caps[idx], self._kpk[:n], self._utility, k_start=1, k_stop=n
            )
            if mode == _MODE_TAIL:
                table = series.shared_moment_tail_table(self._load, n)
                sums = sums + series.power_series_tail(
                    self._maclaurin.coefficients, table, caps[idx]
                )
            totals[idx] = sums
            if cache:
                for j, i in enumerate(idx):
                    self._b_cache.put(float(caps[i]), float(sums[j]))
        return totals

    @obs.timed("model.total_reservation_batch")
    def total_reservation_batch(self, capacities) -> np.ndarray:
        """``V_R`` over a capacity grid: batch ``k_max`` + one masked sum."""
        caps = self._validated_grid(capacities)
        totals = np.zeros(caps.size)
        todo = []
        for i, c in enumerate(caps):
            if c == 0.0:
                continue
            cached = self._r_cache.get(float(c))
            if cached is not None:
                totals[i] = cached
            else:
                todo.append(i)
        if not todo:
            return totals
        idx = np.asarray(todo, dtype=np.int64)
        kmax = self._fixed.k_max_batch(caps[idx])
        floor = max(1, self._load.support_min)
        live = kmax >= floor
        for j in np.flatnonzero(~live):
            self._r_cache.put(float(caps[idx[j]]), 0.0)
        if np.any(live):
            sub_idx = idx[live]
            sub_caps = caps[sub_idx]
            sub_kmax = kmax[live]
            top = int(sub_kmax.max())
            self._ensure_terms(top)
            admitted = share_weighted_sums(
                sub_caps,
                self._kpk[: top + 1],
                self._utility,
                k_start=1,
                k_stop=top + 1,
                kmax=sub_kmax,
            )
            sf = np.asarray(self._load.sf_array(sub_kmax), dtype=float)
            at_cap = np.asarray(
                self._utility(sub_caps / sub_kmax), dtype=float
            )
            sums = admitted + sub_kmax * at_cap * sf
            totals[sub_idx] = sums
            for j, i in enumerate(sub_idx):
                self._r_cache.put(float(caps[i]), float(sums[j]))
        return totals

    def best_effort_batch(self, capacities) -> np.ndarray:
        """Normalised ``B`` over a capacity grid."""
        return self.total_best_effort_batch(capacities) / self._kbar

    def reservation_batch(self, capacities) -> np.ndarray:
        """Normalised ``R`` over a capacity grid."""
        return self.total_reservation_batch(capacities) / self._kbar

    def performance_gap_batch(self, capacities) -> np.ndarray:
        """``delta`` over a capacity grid (clipped at zero)."""
        caps = self._validated_grid(capacities)
        return np.maximum(
            0.0, self.reservation_batch(caps) - self.best_effort_batch(caps)
        )

    def bandwidth_gap_batch(
        self,
        capacities,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> np.ndarray:
        """``Delta`` over a capacity grid via one vectorised inversion."""
        caps = self._validated_grid(capacities)
        return solve_bandwidth_gaps(
            lambda probes: self.total_best_effort_batch(probes, cache=False)
            / self._kbar,
            caps,
            self.reservation_batch(caps),
            self.best_effort_batch(caps),
            gap_floor=gap_floor,
            upper_limit=upper_limit,
            scalar_fallback=lambda c: self.bandwidth_gap(
                c, gap_floor=gap_floor, upper_limit=upper_limit
            ),
            label="bandwidth gap batch",
        )

    # ------------------------------------------------------------------
    # the paper's reported quantities
    # ------------------------------------------------------------------

    def best_effort(self, capacity: float) -> float:
        """Normalised best-effort utility ``B(C) = V_B(C)/k_bar``."""
        return self.total_best_effort(capacity) / self._kbar

    def reservation(self, capacity: float) -> float:
        """Normalised reservation utility ``R(C) = V_R(C)/k_bar``."""
        return self.total_reservation(capacity) / self._kbar

    def performance_gap(self, capacity: float) -> float:
        """``delta(C) = R(C) - B(C)`` (clipped at zero).

        Strictly positive in all the paper's cases; clipping only
        absorbs truncation noise when both sides are ~1.
        """
        return max(0.0, self.reservation(capacity) - self.best_effort(capacity))

    def overload_probability(self, capacity: float) -> float:
        """Probability the offered load exceeds the admission threshold."""
        kmax = self.k_max(capacity)
        if kmax < 1:
            return 1.0
        return self._load.sf(kmax)

    def blocking_fraction(self, capacity: float) -> float:
        """Expected fraction of flows denied a reservation.

        ``theta(C) = sum_{k>k_max} P(k) (k - k_max) / k_bar`` — the
        flow-weighted blocking rate, used by the retrying extension.
        """
        kmax = self.k_max(capacity)
        if kmax < 1:
            return 1.0
        # sum_{k>kmax} P(k) k = mean_tail(kmax+1); sum_{k>kmax} P(k) = sf(kmax)
        blocked = self._load.mean_tail(kmax + 1) - kmax * self._load.sf(kmax)
        return max(0.0, blocked) / self._kbar

    def bandwidth_gap(
        self,
        capacity: float,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> float:
        """``Delta(C)`` solving ``B(C + Delta) = R(C)``.

        Gaps whose normalised performance difference is below
        ``gap_floor`` return exactly 0.0 — they are beneath the noise
        floor of the truncated sums (and the paper describes them as
        vanishing superexponentially in those regimes).
        """
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=upper_limit,
            label=f"bandwidth gap at C={capacity}",
        )
        return max(0.0, solution - capacity)

    def capacity_for_best_effort(
        self, target: float, *, upper_limit: float = 1e9
    ) -> float:
        """Smallest capacity with ``B(C) >= target`` (inverse planning).

        The operator's question in the provisioning debate: how much
        bandwidth buys a given service level *without* reservations?
        ``target`` must be in ``(0, 1)``.
        """
        if not 0.0 < target < 1.0:
            raise ValueError(f"target utility must be in (0, 1), got {target!r}")
        return invert_monotone(
            self.best_effort,
            target,
            0.0,
            max(2.0 * self._kbar, 1.0),
            increasing=True,
            upper_limit=upper_limit,
            label=f"capacity for B = {target}",
        )

    def capacity_for_reservation(
        self, target: float, *, upper_limit: float = 1e9
    ) -> float:
        """Smallest capacity with ``R(C) >= target``."""
        if not 0.0 < target < 1.0:
            raise ValueError(f"target utility must be in (0, 1), got {target!r}")
        return invert_monotone(
            self.reservation,
            target,
            0.0,
            max(2.0 * self._kbar, 1.0),
            increasing=True,
            upper_limit=upper_limit,
            label=f"capacity for R = {target}",
        )

    # ------------------------------------------------------------------
    # derivative (used by the welfare model's first-order conditions)
    # ------------------------------------------------------------------

    def best_effort_marginal(self, capacity: float, *, step: Optional[float] = None) -> float:
        """``dV_B/dC`` by central difference (V_B is smooth in C).

        For rigid utilities V_B is piecewise-constant and this is not
        meaningful; the welfare model uses the exact jump structure
        instead.
        """
        h = step if step is not None else 1e-5 * max(1.0, capacity)
        lo = max(0.0, capacity - h)
        return (self.total_best_effort(capacity + h) - self.total_best_effort(lo)) / (
            capacity + h - lo
        )

    def reservation_marginal(self, capacity: float, *, step: Optional[float] = None) -> float:
        """``dV_R/dC`` by central difference (smooth utilities only)."""
        h = step if step is not None else 1e-5 * max(1.0, capacity)
        lo = max(0.0, capacity - h)
        return (self.total_reservation(capacity + h) - self.total_reservation(lo)) / (
            capacity + h - lo
        )

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------

    def sweep(
        self,
        capacities,
        *,
        include_gaps: bool = True,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> dict:
        """Evaluate the figure-panel series over a capacity grid.

        Returns a dict of numpy arrays keyed ``capacity``, ``best_effort``,
        ``reservation``, ``performance_gap`` and (optionally)
        ``bandwidth_gap`` — one point per requested capacity.  The whole
        grid is computed through the batch entry points (one vectorised
        pass per series); ``progress`` callbacks fire once per point
        after the corresponding series values exist.
        """
        caps = np.asarray(list(capacities), dtype=float)
        n = len(caps)
        b = self.best_effort_batch(caps)
        r = self.reservation_batch(caps)
        out = {
            "capacity": caps,
            "best_effort": b,
            "reservation": r,
            "performance_gap": np.maximum(0.0, r - b),
        }
        if include_gaps:
            out["bandwidth_gap"] = self.bandwidth_gap_batch(caps)
        if progress is not None:
            for i in range(n):
                progress(i + 1, n)
        return out
