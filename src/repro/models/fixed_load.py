"""The fixed load model — Section 2 of the paper.

A single link of capacity ``C`` carries exactly ``k`` identical flows,
each receiving the equal share ``C/k``.  The total utility is

    V(k) = k * pi(C/k).

If ``V`` is increasing in ``k``, admitting everyone maximises utility
and best-effort-only wins; if ``V`` peaks at a finite ``k_max(C)``,
denying service to flows beyond ``k_max`` — i.e. an admission-capable,
reservation-style architecture — is strictly better.  Which case
applies is decided entirely by the shape of ``pi``: a convex
neighbourhood of the origin forces a finite peak, everywhere-strict
concavity makes ``V`` increase forever.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.errors import ModelError
from repro.numerics.optimize import argmax_int
from repro.utility.base import UtilityFunction
from repro.utility.probes import UtilityClass, classify

#: Search cap multiplier: k_max is sought among k <= max(64, limit_factor*C).
DEFAULT_KMAX_LIMIT_FACTOR = 64.0


class Architecture(enum.Enum):
    """The two candidate network architectures of the paper."""

    BEST_EFFORT = "best-effort-only"
    RESERVATION = "reservation-capable"


@dataclass(frozen=True)
class FixedLoadComparison:
    """Outcome of the Section 2 comparison at one ``(C, k)`` point."""

    capacity: float
    offered_flows: int
    k_max: int
    best_effort_total: float
    reservation_total: float

    @property
    def advantage(self) -> float:
        """Reservation minus best-effort total utility (>= 0)."""
        return self.reservation_total - self.best_effort_total

    @property
    def preferred(self) -> Architecture:
        """Architecture with the higher total utility (ties -> best effort).

        A tie means admission control never had to act, so the simpler
        architecture is preferred.
        """
        if self.reservation_total > self.best_effort_total:
            return Architecture.RESERVATION
        return Architecture.BEST_EFFORT


class FixedLoadModel:
    """Evaluate both architectures under a fixed offered load.

    Parameters
    ----------
    utility:
        The per-application utility function ``pi``.
    k_max_limit:
        Upper bound (in flows) for the ``k_max`` search at capacity C;
        defaults to ``max(64, 64*C)``.  If the optimum hits this bound,
        the utility is effectively elastic at that capacity and
        :meth:`k_max` raises — admission control has no finite optimum.
    k_max_override:
        Optional callable ``capacity -> threshold`` replacing the
        optimisation entirely.  Needed to study admission control over
        *elastic* utilities (the paper's footnote 9), whose ``V(k)``
        has no interior maximum.
    """

    def __init__(
        self,
        utility: UtilityFunction,
        *,
        k_max_limit: Optional[int] = None,
        k_max_override=None,
    ):
        self._utility = utility
        self._k_max_limit = k_max_limit
        self._k_max_override = k_max_override
        self._k_max_cache: dict = {}

    @property
    def utility(self) -> UtilityFunction:
        """The application utility function."""
        return self._utility

    def total_utility(self, k: int, capacity: float) -> float:
        """``V(k) = k * pi(C/k)`` — the paper's fixed-load objective."""
        if k != int(k) or k < 0:
            raise ValueError(f"flow count must be a nonnegative integer, got {k!r}")
        return self._utility.fixed_load_total(int(k), capacity)

    def k_max(self, capacity: float) -> int:
        """Utility-maximising number of admitted flows at capacity ``C``.

        Uses the utility's analytic ``k_max`` hint when available (the
        rigid, ramp and power-law families know theirs exactly) and
        otherwise searches ``V(k)`` by integer maximisation.
        """
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0
        if self._k_max_override is not None:
            # footnote 9: elastic utilities have no interior optimum, so
            # callers studying them must choose the threshold themselves
            return int(self._k_max_override(capacity))
        key = capacity
        cached = self._k_max_cache.get(key)
        if cached is not None:
            if obs.enabled():
                obs.counter("model.k_max.cache_hits").inc()
            return cached
        if obs.enabled():
            obs.counter("model.k_max.searches").inc()

        limit = self._k_max_limit
        if limit is None:
            limit = max(64, int(DEFAULT_KMAX_LIMIT_FACTOR * capacity) + 64)

        hint = getattr(self._utility, "k_max", None)
        if hint is not None:
            # refine the analytic (continuum) hint over the integers
            center = int(round(float(hint(capacity))))
            lo = max(0, center - 3)
            hi = max(lo + 1, center + 3)
            candidates = range(lo, hi + 1)
            best = max(candidates, key=lambda k: self.total_utility(k, capacity))
            # walk outward in case the hint was off by more than 3
            value = self.total_utility(best, capacity)
            while best > 0 and self.total_utility(best - 1, capacity) > value:
                best -= 1
                value = self.total_utility(best, capacity)
            while self.total_utility(best + 1, capacity) > value:
                best += 1
                value = self.total_utility(best, capacity)
        else:
            best, _ = argmax_int(
                lambda k: self.total_utility(k, capacity),
                0,
                limit,
                label=f"k_max(C={capacity})",
            )
            if best >= limit:
                raise ModelError(
                    f"k_max search hit the limit {limit} at C={capacity}; the "
                    "utility appears elastic (V(k) increasing) — admission "
                    "control has no finite optimum (paper Section 2)"
                )
        self._k_max_cache[key] = best
        return best

    # ------------------------------------------------------------------
    # batch evaluation
    # ------------------------------------------------------------------

    def _totals_grid(self, ks, capacities) -> np.ndarray:
        """``V(k) = k pi(C/k)`` over broadcastable flow/capacity arrays."""
        ks = np.asarray(ks, dtype=float)
        caps = np.asarray(capacities, dtype=float)
        positive = ks > 0
        shares = np.where(positive, caps / np.maximum(ks, 1.0), 0.0)
        values = np.asarray(self._utility(shares), dtype=float)
        return np.where(positive, ks * values, 0.0)

    def k_max_batch(self, capacities) -> np.ndarray:
        """Admission thresholds for a whole capacity grid at once.

        The batch counterpart of :meth:`k_max`, returning an integer
        array.  With an analytic hint the per-capacity centres are
        refined by a vectorised window-and-walk, mirroring the scalar
        path.  Without one, ``V(k)`` is unimodal for every inelastic
        utility (the paper's premise), so the peak is located by a
        vectorised binary search on the discrete slope — the smallest
        ``k`` with ``V(k+1) <= V(k)`` — followed by the same local
        safeguard walk the scalar search ends with.  Elements whose
        optimum hits the search limit raise :class:`ModelError`
        exactly as the scalar path does.
        """
        caps = np.asarray(capacities, dtype=float).ravel()
        if caps.size and float(np.min(caps)) < 0.0:
            raise ValueError(
                f"capacity must be >= 0, got {float(np.min(caps))!r}"
            )
        result = np.zeros(caps.size, dtype=np.int64)
        if self._k_max_override is not None:
            for i, c in enumerate(caps):
                result[i] = 0 if c == 0.0 else int(self._k_max_override(float(c)))
            return result

        todo = []
        for i, c in enumerate(caps):
            if c == 0.0:
                continue
            cached = self._k_max_cache.get(float(c))
            if cached is not None:
                result[i] = cached
                if obs.enabled():
                    obs.counter("model.k_max.cache_hits").inc()
            else:
                todo.append(i)
        if not todo:
            return result
        if obs.enabled():
            obs.counter("model.k_max.searches").inc(len(todo))
            obs.counter("batch.k_max.points").inc(len(todo))

        idx = np.asarray(todo, dtype=np.int64)
        sub = caps[idx]
        col = sub.reshape(-1, 1)

        hint = getattr(self._utility, "k_max", None)
        if hint is not None:
            centers = np.array(
                [int(round(float(hint(float(c))))) for c in sub], dtype=np.int64
            )
            lo = np.maximum(0, centers - 3)
            window = lo.reshape(-1, 1) + np.arange(8)
            values = self._totals_grid(window, col)
            best = window[np.arange(len(sub)), np.argmax(values, axis=1)]
        else:
            limit = self._k_max_limit
            if limit is not None:
                limits = np.full(len(sub), int(limit), dtype=np.int64)
            else:
                limits = np.maximum(
                    64, (DEFAULT_KMAX_LIMIT_FACTOR * sub).astype(np.int64) + 64
                )
            search_lo = np.zeros(len(sub), dtype=np.int64)
            search_hi = limits.copy()
            while True:
                open_mask = search_lo < search_hi
                if not np.any(open_mask):
                    break
                mid = (search_lo + search_hi) // 2
                pair = self._totals_grid(
                    np.stack([mid, mid + 1], axis=1), col
                )
                descending = pair[:, 1] <= pair[:, 0]
                search_hi = np.where(open_mask & descending, mid, search_hi)
                search_lo = np.where(
                    open_mask & ~descending, mid + 1, search_lo
                )
            best = search_lo
            if np.any(best >= limits):
                bad = int(idx[np.argmax(best >= limits)])
                raise ModelError(
                    f"k_max search hit the limit {int(limits.max())} at "
                    f"C={caps[bad]}; the utility appears elastic (V(k) "
                    "increasing) — admission control has no finite optimum "
                    "(paper Section 2)"
                )

        # safeguard walk (vectorised): nudge until locally optimal, which
        # the scalar path guarantees by construction
        value = self._totals_grid(best, sub)
        while True:
            down = best > 0
            if np.any(down):
                lower = self._totals_grid(np.maximum(best - 1, 0), sub)
                move = down & (lower > value)
                if np.any(move):
                    best = np.where(move, best - 1, best)
                    value = np.where(move, lower, value)
                    continue
            upper = self._totals_grid(best + 1, sub)
            move = upper > value
            if not np.any(move):
                break
            best = np.where(move, best + 1, best)
            value = np.where(move, upper, value)

        result[idx] = best
        for j, i in enumerate(idx):
            self._k_max_cache[float(caps[i])] = int(best[j])
        return result

    def compare(self, offered_flows: int, capacity: float) -> FixedLoadComparison:
        """Compare the two architectures at one fixed load point.

        Best-effort admits all ``k`` flows; the reservation architecture
        admits ``min(k, k_max(C))`` and the rest get zero utility.
        """
        if offered_flows < 0 or offered_flows != int(offered_flows):
            raise ValueError(
                f"offered flow count must be a nonnegative integer, got {offered_flows!r}"
            )
        k = int(offered_flows)
        kmax = self.k_max(capacity)
        admitted = min(k, kmax)
        return FixedLoadComparison(
            capacity=capacity,
            offered_flows=k,
            k_max=kmax,
            best_effort_total=self.total_utility(k, capacity),
            reservation_total=self.total_utility(admitted, capacity),
        )

    def needs_admission_control(self, *, horizon: float = 8.0) -> bool:
        """Section 2 verdict: does this utility ever want flows denied?

        True for inelastic utilities (convex neighbourhood of the
        origin, or a dead zone), false for everywhere-concave ones.
        """
        verdict = classify(self._utility, horizon=horizon)
        if verdict is UtilityClass.INDETERMINATE:
            # fall back to a direct probe: does V(k) peak before 8x C?
            capacity = 64.0
            kmax = self.k_max(capacity)
            tail = self.total_utility(int(8 * capacity), capacity)
            return self.total_utility(kmax, capacity) > tail + 1e-12
        return verdict is UtilityClass.INELASTIC

    @staticmethod
    def rigid_k_max(capacity: float, b_hat: float = 1.0) -> int:
        """Closed form for the rigid case: ``floor(C / b_hat)``."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        return int(math.floor(capacity / b_hat))
