"""The retrying extension — Section 5.2 of the paper.

The basic model writes a rejected reservation off as zero utility.  In
reality the user tries again: they eventually get in, but the delay
costs them something.  The extension charges a utility penalty
``alpha`` per retry and lets the retries themselves inflate the
offered load.

Following the paper, the retry process is not modelled explicitly;
instead the total offered load (originals plus retries) is assumed to
follow the same distribution family with an inflated average: if the
intrinsic demand has mean ``L`` and each flow retries ``D`` times on
average, the offered census is ``P_{L~}`` with

    L~ = L * (1 + D),     D = theta / (1 - theta),

where ``theta`` is the per-attempt flow-weighted blocking probability
at offered load ``L~`` — a one-dimensional fixed point.  Each retry is
a fresh attempt facing the same blocking odds (geometric retries).
The average utility per *intrinsic* flow is then

    R~_L(C) = (L~ / L) * R_{L~}(C) - alpha * D,

the paper's Section 5.2 expression: admitted utility is accounted at
the inflated census and re-based to intrinsic flows, minus the retry
penalty.  Best-effort utility is unchanged — nothing is ever blocked.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.caching import BoundedCache
from repro.errors import ModelError
from repro.loads.base import LoadDistribution
from repro.models.variable_load import (
    GAP_FLOOR,
    VariableLoadModel,
    solve_bandwidth_gaps,
)
from repro.numerics.series import fixed_point
from repro.numerics.solvers import invert_monotone
from repro.utility.base import UtilityFunction

#: Retry penalty used throughout the paper's Section 5.2 numbers.
ALPHA_PAPER = 0.1

#: Blocking probabilities above this make the retry fixed point
#: meaningless (offered load would diverge); we raise instead.
THETA_CEILING = 0.9


class RetryingModel:
    """Reservation model with blocked flows retrying (paper Section 5.2).

    Parameters
    ----------
    load:
        Intrinsic demand distribution (mean ``L``).  Its family must
        support :meth:`~repro.loads.base.LoadDistribution.rescaled`.
    utility:
        Application utility ``pi(b)``.
    alpha:
        Utility penalty per retry (the paper uses 0.1).
    """

    def __init__(
        self,
        load: LoadDistribution,
        utility: UtilityFunction,
        *,
        alpha: float = ALPHA_PAPER,
        k_max_limit: Optional[int] = None,
        k_max_override=None,
    ):
        if alpha < 0.0:
            raise ValueError(f"retry penalty alpha must be >= 0, got {alpha!r}")
        self._load = load
        self._utility = utility
        self._alpha = float(alpha)
        self._k_max_limit = k_max_limit
        self._k_max_override = k_max_override
        self._base = VariableLoadModel(
            load, utility, k_max_limit=k_max_limit, k_max_override=k_max_override
        )
        self._intrinsic_mean = load.mean
        # inflated models are heavyweight (each carries its own pmf
        # arrays), so that cache is bounded tightly; both caches round
        # float keys to the solver tolerance so equal-but-not-identical
        # means/capacities from sweeps share entries
        self._inflated_cache = BoundedCache(maxsize=64)
        self._fixed_point_cache = BoundedCache()

    @property
    def alpha(self) -> float:
        """Utility penalty charged per retry."""
        return self._alpha

    @property
    def base_model(self) -> VariableLoadModel:
        """The no-retries model this extends."""
        return self._base

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _model_at_mean(self, mean: float) -> VariableLoadModel:
        """Variable-load model for the family rescaled to ``mean``."""
        model = self._inflated_cache.get(mean)
        if model is None:
            model = VariableLoadModel(
                self._load.rescaled(mean),
                self._utility,
                k_max_limit=self._k_max_limit,
                k_max_override=self._k_max_override,
            )
            self._inflated_cache.put(mean, model)
        return model

    def offered_mean(self, capacity: float) -> float:
        """Self-consistent offered load ``L~ = L (1 + D)`` at ``C``.

        Solved by damped fixed-point iteration on the map
        ``m -> L / (1 - theta_m(C))``; the map is a contraction at the
        blocking levels the model is valid for.
        """
        cached = self._fixed_point_cache.get(capacity)
        if cached is not None:
            return cached

        intrinsic = self._intrinsic_mean

        def step(mean: float) -> float:
            theta = self._model_at_mean(mean).blocking_fraction(capacity)
            if theta >= THETA_CEILING:
                raise ModelError(
                    f"blocking fraction {theta:.3f} at C={capacity} exceeds "
                    f"{THETA_CEILING}; the retry load diverges — the model "
                    "is outside its validity range (provision more capacity)"
                )
            return intrinsic / (1.0 - theta)

        solution = fixed_point(
            step,
            intrinsic,
            tol=1e-9,
            damping=0.7,
            label=f"retry offered load at C={capacity}",
        )
        self._fixed_point_cache.put(capacity, solution)
        return solution

    def retries_per_flow(self, capacity: float) -> float:
        """``D``: expected number of retries each intrinsic flow makes."""
        return self.offered_mean(capacity) / self._intrinsic_mean - 1.0

    def blocking_probability(self, capacity: float) -> float:
        """Per-attempt flow-weighted blocking at the inflated load."""
        mean = self.offered_mean(capacity)
        return self._model_at_mean(mean).blocking_fraction(capacity)

    # ------------------------------------------------------------------
    # the model's quantities
    # ------------------------------------------------------------------

    def best_effort(self, capacity: float) -> float:
        """``B(C)`` — identical to the basic model (no blocking)."""
        return self._base.best_effort(capacity)

    def reservation(self, capacity: float) -> float:
        """``R~(C) = (L~/L) R_{L~}(C) - alpha D`` (paper Section 5.2)."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        mean = self.offered_mean(capacity)
        inflated = self._model_at_mean(mean)
        ratio = mean / self._intrinsic_mean
        retries = ratio - 1.0
        return ratio * inflated.reservation(capacity) - self._alpha * retries

    def performance_gap(self, capacity: float) -> float:
        """``delta~(C) = R~(C) - B(C)``.

        Unlike the basic model this can go negative at very low
        capacity (heavy blocking makes retry penalties swamp the
        admission benefit), so it is *not* clipped.
        """
        return self.reservation(capacity) - self.best_effort(capacity)

    def bandwidth_gap(
        self,
        capacity: float,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> float:
        """``Delta~(C)`` solving ``B(C + Delta) = R~(C)``.

        Returns 0.0 when retries make reservations no better than
        best effort at this capacity.
        """
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=upper_limit,
            label=f"retrying bandwidth gap at C={capacity}",
        )
        return max(0.0, solution - capacity)

    # ------------------------------------------------------------------
    # batch evaluation (whole-grid sweeps)
    # ------------------------------------------------------------------

    def best_effort_batch(self, capacities) -> np.ndarray:
        """``B`` over a capacity grid — the base model's batch curve."""
        return self._base.best_effort_batch(capacities)

    def reservation_batch(self, capacities) -> np.ndarray:
        """``R~`` over a capacity grid.

        The retry fixed point couples each capacity to its *own*
        inflated load distribution, so there is no shared series to
        vectorise; each point runs the scalar solve (counted as
        ``batch.fallback_scalar``), with results landing in the
        fixed-point cache as usual.
        """
        caps = np.asarray(capacities, dtype=float).ravel()
        if obs.enabled():
            obs.counter("batch.fallback_scalar").inc(int(caps.size))
        return np.array([self.reservation(float(c)) for c in caps])

    def bandwidth_gap_batch(
        self,
        capacities,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> np.ndarray:
        """``Delta~`` over a capacity grid via one vectorised inversion."""
        caps = np.asarray(capacities, dtype=float).ravel()
        return solve_bandwidth_gaps(
            self.best_effort_batch,
            caps,
            self.reservation_batch(caps),
            self.best_effort_batch(caps),
            gap_floor=gap_floor,
            upper_limit=upper_limit,
            scalar_fallback=lambda c: self.bandwidth_gap(
                c, gap_floor=gap_floor, upper_limit=upper_limit
            ),
            label="retrying bandwidth gap batch",
        )

    def sweep(self, capacities, *, include_gaps: bool = True) -> dict:
        """Figure-series sweep mirroring :meth:`VariableLoadModel.sweep`.

        Best-effort and the bandwidth-gap inversion run through the
        batch kernels; the reservation fixed point stays per-point.
        """
        caps = np.asarray(list(capacities), dtype=float)
        b = self.best_effort_batch(caps)
        r = self.reservation_batch(caps)
        out = {
            "capacity": caps,
            "best_effort": b,
            "reservation": r,
            "performance_gap": r - b,
        }
        if include_gaps:
            out["bandwidth_gap"] = self.bandwidth_gap_batch(caps)
        return out
