"""Command-line entry point: ``repro-experiments``.

Usage::

    repro-experiments list                 # show every experiment id
    repro-experiments run F3               # regenerate Figure 3's series
    repro-experiments run T1 --json        # Section 3.3 checkpoints, JSON
    repro-experiments run F4 --fast        # small grids for a quick look
    repro-experiments run F3 --profile     # + span-tree timing & metrics
    repro-experiments run-all --jobs 4     # every experiment, in parallel,
                                           # through the on-disk result cache
    repro-experiments run-all F2 T1 --force   # recompute just these two
    repro-experiments checkpoints          # the full paper-vs-measured table
    repro-experiments verify               # paper-invariant fast suite
    repro-experiments verify --suite deep --json   # + ensemble oracles
    repro-experiments profile --json       # time every registered experiment
    repro-experiments export F3 --out fig  # CSV + gnuplot for Figure 3
    repro-experiments analyze-trace t.csv  # census verdict from a flow trace
    repro-experiments traces generate diurnal t.csv --rate 40 --horizon 240
    repro-experiments traces replay t.csv --capacity 44    # CRN-paired B/R/gap
    repro-experiments traces analyze t.csv                 # streamed verdict
    repro-experiments provenance freeze provenance         # snapshot + manifest
    repro-experiments provenance verify provenance         # recompute-verify
    repro-experiments run F3 --events-json run.jsonl   # + structured journal
    repro-experiments obs tail run.jsonl --follow      # live event stream
    repro-experiments obs hotspots trace.json          # per-span time table
    repro-experiments obs chrome-trace trace.json --out t.trace.json
    repro-experiments obs regress                      # bench-history gate
    repro-experiments obs ledger-check                 # ledger schema check
    repro-experiments emulate fit --out bank.json      # certify surfaces
    repro-experiments emulate check --bank bank.json   # re-verify bounds
    repro-experiments serve --port 8321                # HTTP query service
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro import obs
from repro.experiments import checkpoints, registry, report
from repro.experiments.params import DEFAULT_CONFIG, FAST_CONFIG
from repro.obs import ledger

#: Where gated benchmarks append their headline metrics.
DEFAULT_HISTORY = "benchmarks/results/history.jsonl"


def _add_cache_args(
    parser: argparse.ArgumentParser, *, cache_dir_default: Optional[str]
) -> None:
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=cache_dir_default,
        help=(
            f"result-cache directory (default: {cache_dir_default})"
            if cache_dir_default
            else "result-cache directory (default: caching off)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="skip cache lookups but still write fresh entries",
    )


def _add_simulation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--replications",
        type=int,
        metavar="R",
        help=(
            "Monte Carlo replications for simulation experiments "
            "(default: the config's sim_replications)"
        ),
    )
    parser.add_argument(
        "--ci",
        type=float,
        metavar="HALFWIDTH",
        help=(
            "target CI half-width: simulation experiments add an adaptive "
            "run_until pass stopping at this precision"
        ),
    )


def _simulation_config(config, args):
    """Fold ``--replications``/``--ci`` into the config (cache-addressed).

    The runner cache digests the whole :class:`PaperConfig`, so a
    replaced config re-addresses every cached entry automatically — no
    flag can ever be served a stale result computed at different
    simulation settings.
    """
    import dataclasses

    overrides = {}
    if getattr(args, "replications", None) is not None:
        if args.replications < 1:
            raise SystemExit("--replications must be >= 1")
        overrides["sim_replications"] = args.replications
    if getattr(args, "ci", None) is not None:
        if args.ci <= 0.0:
            raise SystemExit("--ci must be > 0")
        overrides["sim_ci_halfwidth"] = args.ci
    return dataclasses.replace(config, **overrides) if overrides else config


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect observability data and print a timing/metrics report",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write the recorded span tree as JSON to PATH",
    )
    parser.add_argument(
        "--events-json",
        metavar="PATH",
        help=(
            "append a structured event journal (JSONL) to PATH; "
            "inspect it with `obs tail`"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and text-quoted numbers of Breslau & "
            "Shenker, 'Best-Effort versus Reservations' (SIGCOMM 1998)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every registered experiment")

    run = sub.add_parser("run", help="run one experiment by id")
    run.add_argument("experiment", help="experiment id (e.g. F2, T1, S5.1)")
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")
    run.add_argument(
        "--fast", action="store_true", help="use the reduced grids (quick look)"
    )
    _add_simulation_args(run)
    _add_cache_args(run, cache_dir_default=None)
    _add_profile_args(run)

    run_all = sub.add_parser(
        "run-all",
        help="run many experiments in parallel through the result cache",
    )
    run_all.add_argument(
        "ids",
        nargs="*",
        metavar="ID",
        help="experiment ids (default: every registered experiment)",
    )
    run_all.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1: run in-process)",
    )
    run_all.add_argument("--json", action="store_true", help="emit JSON instead of text")
    run_all.add_argument(
        "--fast", action="store_true", help="use the reduced grids (quick look)"
    )
    _add_simulation_args(run_all)
    _add_cache_args(run_all, cache_dir_default=".repro-cache")
    _add_profile_args(run_all)

    cp = sub.add_parser(
        "checkpoints", help="run every paper-vs-measured checkpoint"
    )
    cp.add_argument("--json", action="store_true", help="emit JSON instead of text")
    cp.add_argument("--markdown", action="store_true", help="emit a markdown table")
    _add_profile_args(cp)

    verify = sub.add_parser(
        "verify",
        help="evaluate the paper-derived invariant catalogue "
        "(cross-engine differential oracles; see docs/VERIFY.md)",
    )
    verify.add_argument(
        "--suite",
        choices=["fast", "deep"],
        default="fast",
        help="fast: CI gate (~20 s); deep: adds the ensemble oracles",
    )
    verify.add_argument(
        "--only",
        nargs="+",
        metavar="ID",
        help="evaluate only these invariant ids (never cached)",
    )
    verify.add_argument(
        "--json", action="store_true", help="emit the JSON report instead of text"
    )
    verify.add_argument(
        "--fast-config",
        action="store_true",
        help="use the reduced grids (quick look; re-addresses the cache)",
    )
    _add_cache_args(verify, cache_dir_default=None)
    _add_profile_args(verify)

    mf = sub.add_parser(
        "meanfield",
        help="evaluate B(C)/R(C)/gap through the fluid-diffusion engine "
        "(O(1) in the population; refuses outside its validity envelope; "
        "see docs/MEANFIELD.md)",
    )
    mf.add_argument(
        "--load",
        choices=["poisson", "exponential", "algebraic"],
        default="poisson",
        help="census distribution (default: poisson; heavy tails are "
        "outside the envelope and refused)",
    )
    mf.add_argument(
        "--utility",
        choices=["adaptive", "rigid"],
        default="adaptive",
        help="utility function (default: adaptive)",
    )
    mf.add_argument(
        "--population",
        type=float,
        metavar="N",
        help="census mean (default: the config's kbar; re-addresses the cache)",
    )
    mf.add_argument(
        "--capacities",
        type=float,
        nargs="+",
        metavar="C",
        help="capacity grid (default: the config's capacity axis)",
    )
    mf.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    mf.add_argument(
        "--fast-config",
        action="store_true",
        help="use the reduced grids (quick look; re-addresses the cache)",
    )
    _add_cache_args(mf, cache_dir_default=None)
    _add_profile_args(mf)

    prof = sub.add_parser(
        "profile",
        help="time every registered experiment and report per-experiment "
        "wall time + metric deltas (reduced grids unless --full)",
    )
    prof.add_argument("--json", action="store_true", help="emit JSON instead of text")
    prof.add_argument(
        "--full",
        action="store_true",
        help="profile at the paper's full grids (slow) instead of the fast ones",
    )
    prof.add_argument(
        "--only",
        nargs="+",
        metavar="ID",
        help="profile only these experiment ids",
    )
    prof.add_argument(
        "--out",
        metavar="PATH",
        help="also write the machine-readable report JSON to PATH",
    )

    ex = sub.add_parser(
        "export", help="write a figure's series as CSV + gnuplot scripts"
    )
    ex.add_argument("experiment", help="figure id (F1-F4, S5.1, S5.2)")
    ex.add_argument("--out", default="figures", help="output directory")
    ex.add_argument(
        "--fast", action="store_true", help="use the reduced grids (quick look)"
    )

    tr = sub.add_parser(
        "analyze-trace",
        help="read a flow-trace CSV, identify its census, print the verdict",
    )
    tr.add_argument("trace", help="path to a trace written by repro.traces.write_trace")
    tr.add_argument("--price", type=float, default=0.05, help="bandwidth price")
    tr.add_argument(
        "--utility",
        choices=["adaptive", "rigid"],
        default="adaptive",
        help="application utility class",
    )
    tr.add_argument(
        "--samples", type=int, default=4000, help="census samples for the fitters"
    )

    traces_cmd = sub.add_parser(
        "traces",
        help="streaming flow traces: generate synthetic workloads, replay "
        "them through CRN-paired best-effort/reservation, analyze at "
        "constant memory",
    )
    traces_sub = traces_cmd.add_subparsers(dest="traces_command", required=True)

    tg = traces_sub.add_parser(
        "generate", help="write a seeded synthetic workload trace"
    )
    tg.add_argument(
        "workload",
        choices=["poisson", "diurnal", "bursty", "batch"],
        help="arrival-process shape",
    )
    tg.add_argument("out", help="output path (.csv file, or directory with --npz)")
    tg.add_argument("--rate", type=float, default=40.0, help="mean arrival rate")
    tg.add_argument("--horizon", type=float, default=240.0, help="trace horizon")
    tg.add_argument("--mu", type=float, default=1.0, help="flow departure rate")
    tg.add_argument("--seed", type=int, default=0, help="generator seed")
    tg.add_argument(
        "--chunk-flows",
        type=int,
        default=None,
        metavar="N",
        help="flows per generated chunk (default 65536)",
    )
    tg.add_argument(
        "--npz",
        action="store_true",
        help="write an npz segment directory instead of CSV",
    )

    trp = traces_sub.add_parser(
        "replay",
        help="stream a trace through the CRN-paired estimators and print "
        "B/R/gap with confidence intervals",
    )
    trp.add_argument("trace", help="trace path (CSV file or npz segment dir)")
    trp.add_argument(
        "--capacity", type=float, required=True, help="link capacity C"
    )
    trp.add_argument(
        "--utility",
        choices=["adaptive", "rigid"],
        default="adaptive",
        help="application utility class",
    )
    trp.add_argument(
        "--windows",
        type=int,
        default=16,
        help="measurement windows (= synthetic replications)",
    )
    trp.add_argument(
        "--warmup",
        type=float,
        default=None,
        help="transient to exclude (default: 10%% of the horizon)",
    )
    trp.add_argument(
        "--chunk-flows",
        type=int,
        default=None,
        metavar="N",
        help="flows per streamed chunk when reading CSV (default 65536)",
    )
    trp.add_argument("--json", action="store_true", help="emit JSON")

    ta = traces_sub.add_parser(
        "analyze",
        help="streamed trace -> census identification -> architecture "
        "verdict (constant memory; accepts CSV or npz)",
    )
    ta.add_argument("trace", help="trace path (CSV file or npz segment dir)")
    ta.add_argument("--price", type=float, default=0.05, help="bandwidth price")
    ta.add_argument(
        "--utility",
        choices=["adaptive", "rigid"],
        default="adaptive",
        help="application utility class",
    )
    ta.add_argument(
        "--samples", type=int, default=4000, help="census samples for the fitters"
    )
    ta.add_argument(
        "--warmup",
        type=float,
        default=None,
        help="transient to exclude (default: 10%% of the horizon)",
    )

    prov = sub.add_parser(
        "provenance",
        help="frozen result provenance: freeze published results into a "
        "sha256-manifested snapshot, verify one by recompute",
    )
    prov_sub = prov.add_subparsers(dest="provenance_command", required=True)

    pf = prov_sub.add_parser(
        "freeze", help="snapshot golden pins, bench gates and replay summaries"
    )
    pf.add_argument("snapshot", help="snapshot directory to create/update")
    pf.add_argument(
        "--root", default=".", help="repository root holding the artifacts"
    )
    pf.add_argument(
        "--include",
        nargs="+",
        choices=["golden", "bench", "traces"],
        default=None,
        metavar="COMPONENT",
        help="artifact groups to freeze (default: all)",
    )

    pv = prov_sub.add_parser(
        "verify",
        help="re-hash artifacts and recompute manifested headline numbers; "
        "exits nonzero on drift",
    )
    pv.add_argument("snapshot", help="snapshot directory holding MANIFEST.json")
    pv.add_argument("--json", action="store_true", help="emit JSON")

    obs_cmd = sub.add_parser(
        "obs",
        help="telemetry tools: journal tail, trace export, hotspot tables, "
        "bench-history regression gate",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    tail = obs_sub.add_parser(
        "tail", help="print a journal's events, oldest first"
    )
    tail.add_argument("journal", help="journal path (a --events-json file)")
    tail.add_argument(
        "--follow",
        action="store_true",
        help="keep following the file for new events (like tail -f)",
    )
    tail.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="poll interval while following (default 0.2)",
    )
    tail.add_argument(
        "--event",
        action="append",
        metavar="NAME",
        help="only show events with this name (repeatable)",
    )

    hot = obs_sub.add_parser(
        "hotspots",
        help="aggregate a span-tree JSON dump into a per-span time table",
    )
    hot.add_argument("trace", help="span-tree JSON written by --trace-json")
    hot.add_argument(
        "--wall",
        type=float,
        metavar="SECONDS",
        help="wall time of the traced run, for a coverage figure",
    )
    hot.add_argument(
        "--top", type=int, default=0, metavar="N", help="show only the top N rows"
    )
    hot.add_argument("--json", action="store_true", help="emit JSON instead of text")

    ct = obs_sub.add_parser(
        "chrome-trace",
        help="convert a span-tree JSON dump to Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    ct.add_argument("trace", help="span-tree JSON written by --trace-json")
    ct.add_argument("--out", required=True, metavar="PATH", help="output file")

    regress = obs_sub.add_parser(
        "regress",
        help="gate the latest bench-history point of every metric series "
        "against its rolling robust baseline",
    )
    regress.add_argument(
        "--history",
        default=DEFAULT_HISTORY,
        metavar="PATH",
        help=f"ledger path (default: {DEFAULT_HISTORY})",
    )
    regress.add_argument(
        "--window",
        type=int,
        default=ledger.DEFAULT_WINDOW,
        metavar="K",
        help="baseline size: the K points before the latest "
        f"(default {ledger.DEFAULT_WINDOW})",
    )
    regress.add_argument(
        "--mad-sigmas",
        type=float,
        default=ledger.DEFAULT_MAD_SIGMAS,
        metavar="S",
        help="significance band in robust standard deviations "
        f"(default {ledger.DEFAULT_MAD_SIGMAS:g})",
    )
    regress.add_argument(
        "--rel-floor",
        type=float,
        default=ledger.DEFAULT_REL_FLOOR,
        metavar="F",
        help="minimum significant relative deviation "
        f"(default {ledger.DEFAULT_REL_FLOOR:g})",
    )
    regress.add_argument(
        "--min-history",
        type=int,
        default=ledger.DEFAULT_MIN_HISTORY,
        metavar="N",
        help="series shorter than N points are reported informationally "
        f"instead of gated (default {ledger.DEFAULT_MIN_HISTORY}); raise "
        "it to keep freshly (re)keyed series in a warm-up window",
    )
    regress.add_argument(
        "--json", action="store_true", help="emit the JSON report instead of text"
    )

    lc = obs_sub.add_parser(
        "ledger-check",
        help="strict schema validation of a bench-history ledger "
        "(the CI schema-drift check)",
    )
    lc.add_argument(
        "--history",
        default=DEFAULT_HISTORY,
        metavar="PATH",
        help=f"ledger path (default: {DEFAULT_HISTORY})",
    )

    emulate = sub.add_parser(
        "emulate",
        help="fit / re-check the certified Chebyshev emulator surfaces "
        "for delta(C), Delta(C), gamma(p) (see docs/SERVICE.md)",
    )
    em_sub = emulate.add_subparsers(dest="emulate_command", required=True)

    em_fit = em_sub.add_parser(
        "fit", help="fit every surface, certify its error bound, print a table"
    )
    em_fit.add_argument(
        "--out", metavar="PATH", help="also write the fitted bank as JSON"
    )
    em_fit.add_argument(
        "--include-2d",
        action="store_true",
        help="also fit the delta(C, kbar) what-if surfaces (slower)",
    )
    em_fit.add_argument(
        "--fast-config",
        action="store_true",
        help="fit under the reduced config (quick look)",
    )
    em_fit.add_argument(
        "--json", action="store_true", help="emit the bank summary as JSON"
    )
    _add_profile_args(em_fit)

    em_check = em_sub.add_parser(
        "check",
        help="re-verify every surface's certified bound on a fresh probe "
        "grid against the exact solvers",
    )
    em_check.add_argument(
        "--bank",
        metavar="PATH",
        help="bank JSON written by `emulate fit --out` (default: fit fresh)",
    )
    em_check.add_argument(
        "--include-2d",
        action="store_true",
        help="include the delta(C, kbar) surfaces when fitting fresh",
    )
    em_check.add_argument(
        "--fast-config",
        action="store_true",
        help="check under the reduced config (quick look)",
    )
    em_check.add_argument(
        "--probes",
        type=int,
        default=41,
        metavar="N",
        help="fresh probe points per surface (default 41)",
    )
    em_check.add_argument(
        "--json", action="store_true", help="emit the check report as JSON"
    )
    _add_profile_args(em_check)

    srv = sub.add_parser(
        "serve",
        help="serve delta/Delta/gamma point and batch queries over HTTP "
        "from the certified surfaces (exact-solver fallback through the "
        "result cache; see docs/SERVICE.md)",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port", type=int, default=8321, help="bind port (0: ephemeral)"
    )
    srv.add_argument(
        "--bank",
        metavar="PATH",
        help="serve a pre-fitted bank JSON instead of fitting at startup",
    )
    srv.add_argument(
        "--include-2d",
        action="store_true",
        help="also fit and serve the delta(C, kbar) what-if surfaces",
    )
    srv.add_argument(
        "--fast-config",
        action="store_true",
        help="serve the reduced config (quick look; re-addresses the cache)",
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="threads for exact-fallback queries (default 4)",
    )
    srv.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=".repro-cache",
        help="result-cache directory for exact fallbacks "
        "(default: .repro-cache)",
    )
    srv.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute exact fallbacks instead of using the result cache",
    )
    srv.add_argument(
        "--events-json",
        metavar="PATH",
        help="append service journal events (JSONL) to PATH",
    )
    return parser


def _finish_observed(args) -> int:
    """Emit the --profile report and/or --trace-json dump, then disable.

    Returns 0, or 2 if the trace file could not be written.
    """
    status = 0
    if args.trace_json:
        try:
            obs.write_report_text(args.trace_json, obs.trace_json())
        except OSError as exc:
            print(f"cannot write trace to {args.trace_json}: {exc}", file=sys.stderr)
            status = 2
        else:
            print(f"trace written to {args.trace_json}", file=sys.stderr)
    if args.profile:
        print()
        print(obs.render_report())
    obs.disable()
    return status


def _render_run_all(batch) -> str:
    """Human-readable summary of a :class:`repro.runner.RunReport`."""
    lines = []
    for outcome in batch.outcomes:
        detail = ""
        if outcome.worker is not None:
            detail += f"  [worker {outcome.worker}]"
        if outcome.error:
            detail += f"  {outcome.error}"
        lines.append(
            f"{outcome.exp_id:6s} {outcome.status:9s} "
            f"{outcome.seconds:8.3f} s{detail}"
        )
    counts = batch.counts()
    summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
    lines.append(
        f"-- {len(batch.outcomes)} experiments ({summary}); "
        f"wall {batch.wall_seconds:.3f} s, jobs {batch.jobs}"
    )
    return "\n".join(lines)


def _cmd_obs(args) -> int:
    """The ``obs`` telemetry subcommands."""
    import json as _json

    from repro.obs import events, traceview

    if args.obs_command == "tail":
        wanted = set(args.event) if args.event else None

        def show(record) -> None:
            if wanted is None or record.get("event") in wanted:
                print(events.render_event(record), flush=True)

        try:
            if args.follow:
                for record in events.follow_events(
                    args.journal, poll_seconds=args.poll
                ):
                    show(record)
                return 0
            records, damaged = events.read_journal(args.journal)
            for record in records:
                show(record)
            if damaged:
                print(f"-- {damaged} damaged line(s) skipped", file=sys.stderr)
        except KeyboardInterrupt:
            return 0
        except BrokenPipeError:
            # piped into head/less and the reader left — not an error
            try:
                sys.stdout.close()
            except OSError:
                pass
            return 0
        except OSError as exc:
            print(f"cannot read journal {args.journal}: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.obs_command in ("hotspots", "chrome-trace"):
        try:
            roots = traceview.load_trace_file(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load trace {args.trace}: {exc}", file=sys.stderr)
            return 2
        if args.obs_command == "hotspots":
            table = traceview.hotspots(roots, wall_seconds=args.wall)
            if args.json:
                print(_json.dumps(table, indent=2))
            else:
                print(traceview.render_hotspots(table, top=args.top))
            return 0
        trace = traceview.chrome_trace(roots)
        errors = traceview.validate_chrome_trace(trace)
        if errors:
            for err in errors:
                print(err, file=sys.stderr)
            return 1
        from repro.ioutils import atomic_write_text

        atomic_write_text(args.out, _json.dumps(trace))
        print(
            f"chrome trace written to {args.out} "
            f"({len(trace['traceEvents'])} events); load it in "
            "https://ui.perfetto.dev",
            file=sys.stderr,
        )
        return 0

    if args.obs_command == "regress":
        try:
            verdict = ledger.check_history(
                args.history,
                window=args.window,
                mad_sigmas=args.mad_sigmas,
                rel_floor=args.rel_floor,
                min_history=args.min_history,
            )
        except FileNotFoundError:
            print(f"no ledger at {args.history}", file=sys.stderr)
            return 2
        if args.json:
            print(_json.dumps(verdict.to_dict(), indent=2))
        else:
            print(verdict.render())
        return 0 if verdict.ok else 1

    if args.obs_command == "ledger-check":
        try:
            entries, _ = ledger.load_history(args.history, strict=True)
        except FileNotFoundError:
            print(f"no ledger at {args.history}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"ledger schema drift: {exc}", file=sys.stderr)
            return 1
        print(f"{args.history}: {len(entries)} entries, schema ok")
        return 0

    raise AssertionError(
        f"unhandled obs command {args.obs_command!r}"
    )  # pragma: no cover


def _cmd_emulate(args) -> int:
    """The ``emulate fit`` / ``emulate check`` subcommands."""
    import json as _json

    from repro.emulator import (
        SurfaceBank,
        check_bank,
        fit_bank,
        surfaces_summary,
    )
    from repro.errors import CertificationError

    config = FAST_CONFIG if args.fast_config else DEFAULT_CONFIG
    observing = args.profile or bool(args.trace_json)
    if observing:
        obs.reset()
        obs.enable()

    if args.emulate_command == "fit":
        try:
            bank = fit_bank(config, include_2d=args.include_2d)
        except CertificationError as exc:
            print(f"certification refused: {exc}", file=sys.stderr)
            return 1
        if args.out:
            path = bank.save(args.out)
            print(f"bank written to {path}", file=sys.stderr)
        if args.json:
            print(_json.dumps(bank.to_dict(), indent=2, sort_keys=True))
        else:
            print(surfaces_summary(bank.all_surfaces()))
        if observing:
            return _finish_observed(args)
        return 0

    if args.emulate_command == "check":
        if args.bank:
            try:
                bank = SurfaceBank.load(args.bank)
            except (OSError, ValueError, KeyError) as exc:
                print(f"cannot load bank {args.bank}: {exc}", file=sys.stderr)
                return 2
        else:
            try:
                bank = fit_bank(config, include_2d=args.include_2d)
            except CertificationError as exc:
                print(f"certification refused: {exc}", file=sys.stderr)
                return 1
        rows = check_bank(bank, config, probes=args.probes)
        ok = all(row["ok"] for row in rows)
        if args.json:
            print(_json.dumps({"ok": ok, "surfaces": rows}, indent=2))
        else:
            for row in rows:
                mark = "ok  " if row["ok"] else "FAIL"
                print(
                    f"{mark} {row['surface']:34s} residual "
                    f"{row['residual']:8.3f} of bound "
                    f"{row['certified_bound']:.3e}"
                )
        status = _finish_observed(args) if observing else 0
        if status:
            return status
        return 0 if ok else 1

    raise AssertionError(
        f"unhandled emulate command {args.emulate_command!r}"
    )  # pragma: no cover


def _render_meanfield(series, *, load: str, utility: str) -> str:
    """Human-readable sweep table + the diffusion point estimate."""
    lines = [
        (
            f"mean-field engine: load={load} utility={utility} "
            f"N={float(series['population'][0]):g} "
            f"CV={float(series['cv'][0]):.4f} "
            f"tau={float(series['relaxation_time'][0]):.3g}"
        ),
        f"{'C':>10s}  {'B(C)':>9s}  {'R(C)':>9s}  {'gap':>10s}",
    ]
    for c, b, r, g in zip(
        series["capacity"],
        series["best_effort"],
        series["reservation"],
        series["gap"],
    ):
        lines.append(f"{c:10.1f}  {b:9.5f}  {r:9.5f}  {g:10.6f}")
    level = float(series["point_level"][0])
    lines.append(
        f"point estimate at C={float(series['point_capacity'][0]):g} "
        f"(R={int(series['point_replications'][0])}, "
        f"t={float(series['point_horizon'][0]):g}, "
        f"warmup={float(series['point_warmup'][0]):g}, "
        f"{level:.0%} CI):"
    )
    for name, key in (
        ("B", "point_best_effort"),
        ("R", "point_reservation"),
        ("gap", "point_gap"),
    ):
        lines.append(
            f"  {name:>3s} = {float(series[key][0]):.6f} "
            f"+/- {float(series[key + '_ci'][0]):.6f}"
        )
    return "\n".join(lines)


def _cmd_meanfield(args) -> int:
    """The ``meanfield`` command: cache-addressed fluid-diffusion sweep."""
    import dataclasses

    from repro.errors import OutOfDomainError
    from repro.meanfield.sweep import sweep_experiment

    config = FAST_CONFIG if args.fast_config else DEFAULT_CONFIG
    overrides = {}
    if args.population is not None:
        if args.population <= 0.0:
            raise SystemExit("--population must be > 0")
        overrides["kbar"] = args.population
    if args.capacities:
        if any(c <= 0.0 for c in args.capacities):
            raise SystemExit("--capacities must be > 0")
        overrides["capacities"] = tuple(float(c) for c in args.capacities)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    observing = args.profile or bool(args.trace_json)
    if observing:
        obs.reset()
        obs.enable()
    exp = sweep_experiment(args.load, args.utility)
    cache = None
    if args.cache_dir and not args.no_cache:
        from repro.runner import ResultCache

        cache = ResultCache(args.cache_dir)
    cache_status = None
    start = time.perf_counter()
    entry = None
    if cache is not None and not args.force:
        entry = cache.load(exp, config)
    if entry is not None:
        from repro.runner import decode_result

        series = decode_result(entry["result_kind"], entry["result"])
        cache_status = "hit"
    else:
        try:
            with obs.span("meanfield.sweep", load=args.load, utility=args.utility):
                series = exp.run(config)
        except OutOfDomainError as exc:
            # refuse-don't-extrapolate: the envelope verdict is the
            # answer, and it is never cached
            print(str(exc), file=sys.stderr)
            if observing:
                _finish_observed(args)
            return 1
        if cache is not None:
            cache.store(exp, config, series)
            cache_status = "miss"
    elapsed = time.perf_counter() - start
    if args.json:
        meta = {
            "load": args.load,
            "utility": args.utility,
            "elapsed_seconds": elapsed,
            "config": "fast" if args.fast_config else "default",
        }
        if cache is not None:
            meta["cache"] = cache_status
        if observing:
            meta["metrics"] = obs.snapshot()
        print(report.to_json(series, meta=meta))
    else:
        print(_render_meanfield(series, load=args.load, utility=args.utility))
    if observing:
        return _finish_observed(args)
    return 0


def _cmd_traces(args) -> int:
    """The ``traces`` streaming subcommands."""
    import json as _json

    from repro.errors import ReproError
    from repro.traces import (
        DEFAULT_CHUNK_FLOWS,
        default_workload,
        open_trace,
        replay_stream,
        stream_census_samples,
        write_trace_csv,
        write_trace_npz,
    )
    from repro.utility import AdaptiveUtility, RigidUtility

    chunk_flows = getattr(args, "chunk_flows", None) or DEFAULT_CHUNK_FLOWS

    try:
        if args.traces_command == "generate":
            workload = default_workload(args.workload, args.rate, mu=args.mu)
            stream = workload.stream(
                args.horizon, seed=args.seed, chunk_flows=chunk_flows
            )
            if args.npz:
                path = write_trace_npz(stream, args.out)
            else:
                path = write_trace_csv(stream, args.out)
            print(path)
            return 0

        utility = (
            AdaptiveUtility() if args.utility == "adaptive" else RigidUtility(1.0)
        )
        stream = open_trace(args.trace, chunk_flows=chunk_flows)
        warmup = args.warmup
        if warmup is None:
            warmup = 0.1 * stream.horizon

        if args.traces_command == "replay":
            result = replay_stream(
                stream,
                utility,
                args.capacity,
                windows=args.windows,
                warmup=warmup,
            )
            summary = result.summary()
            if args.json:
                print(_json.dumps(summary, indent=2))
            else:
                print(
                    f"replayed {summary['flows']} flows over "
                    f"{summary['windows']} windows "
                    f"(horizon {summary['horizon']:g}, warmup "
                    f"{summary['warmup']:g})"
                )
                print(
                    f"  B_hat = {summary['best_effort']:.6f} "
                    f"+/- {summary['best_effort_ci']:.6f}"
                )
                print(
                    f"  R_hat = {summary['reservation']:.6f} "
                    f"+/- {summary['reservation_ci']:.6f}  "
                    f"(threshold {summary['threshold']:g})"
                )
                print(
                    f"  gap   = {summary['gap']:.6f} "
                    f"+/- {summary['gap_ci']:.6f}"
                )
                print(f"  mean census = {summary['mean_census']:.3f}")
            return 0

        if args.traces_command == "analyze":
            from repro.inference import recommend_architecture

            if stream.flows == 0:
                print(
                    "cannot analyze a zero-flow trace: the census is "
                    "identically zero and no load can be identified",
                    file=sys.stderr,
                )
                return 2
            census = stream_census_samples(
                stream, args.samples, warmup=warmup, seed=0
            )
            recommendation = recommend_architecture(
                census, utility, price=args.price
            )
            print(recommendation.summary())
            return 0
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    raise AssertionError(
        f"unhandled traces command {args.traces_command!r}"
    )  # pragma: no cover


def _cmd_provenance(args) -> int:
    """The ``provenance`` freeze/verify subcommands."""
    import json as _json

    from repro.errors import ProvenanceError
    from repro.provenance import freeze, verify

    try:
        if args.provenance_command == "freeze":
            include = args.include or ("golden", "bench", "traces")
            manifest = freeze(
                args.snapshot, source_root=args.root, include=include
            )
            print(
                f"froze {len(manifest.artifacts)} artifact(s) into "
                f"{args.snapshot} (git {manifest.git_sha[:12]})"
            )
            for rel in sorted(manifest.artifacts):
                entry = manifest.artifacts[rel]
                print(f"  {entry['sha256'][:12]}  {entry['bytes']:>9}  {rel}")
            return 0

        if args.provenance_command == "verify":
            report_ = verify(args.snapshot)
            if args.json:
                print(_json.dumps(report_.to_dict(), indent=2))
            else:
                print(report_.render())
            return 0 if report_.ok else 1
    except ProvenanceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    raise AssertionError(
        f"unhandled provenance command {args.provenance_command!r}"
    )  # pragma: no cover


def _cmd_serve(args) -> int:
    """The ``serve`` command: run the HTTP service until interrupted."""
    import asyncio

    from repro.emulator import SurfaceBank, fit_bank
    from repro.errors import CertificationError
    from repro.service import DEFAULT_EXECUTOR_WORKERS, EmulatorService
    from repro.service import serve as serve_async

    config = FAST_CONFIG if args.fast_config else DEFAULT_CONFIG
    # metrics are always on for a server: /v1/metrics exposes the
    # counters and per-endpoint latency histograms
    obs.reset()
    obs.enable()
    if args.bank:
        try:
            bank = SurfaceBank.load(args.bank)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load bank {args.bank}: {exc}", file=sys.stderr)
            return 2
    else:
        print("fitting surfaces...", file=sys.stderr, flush=True)
        try:
            bank = fit_bank(config, include_2d=args.include_2d)
        except CertificationError as exc:
            print(f"certification refused: {exc}", file=sys.stderr)
            return 1
    cache = None
    if args.cache_dir and not args.no_cache:
        from repro.runner import ResultCache

        cache = ResultCache(args.cache_dir)
    service = EmulatorService(config, bank=bank, cache=cache)
    print(
        f"serving {len(bank)} surface(s) on http://{args.host}:{args.port} "
        f"(cache: {args.cache_dir if cache is not None else 'off'})",
        file=sys.stderr,
        flush=True,
    )
    workers = args.workers if args.workers else DEFAULT_EXECUTOR_WORKERS
    try:
        asyncio.run(
            serve_async(
                service,
                host=args.host,
                port=args.port,
                executor_workers=workers,
            )
        )
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        obs.disable()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI main: parse, open the journal if asked, dispatch, close.

    The journal wraps the whole command so ``cli.start`` /
    ``cli.finish`` bracket every other event, and the exit status is
    recorded even when the command raises.
    """
    args = build_parser().parse_args(argv)
    path = getattr(args, "events_json", None)
    if not path:
        return _dispatch(args)
    obs.open_journal(path, command=args.command)
    obs.emit("cli.start", command=args.command)
    status: Optional[int] = None
    try:
        status = _dispatch(args)
        return status
    finally:
        obs.emit(
            "cli.finish",
            command=args.command,
            status=2 if status is None else status,
        )
        obs.close_journal()


def _dispatch(args) -> int:
    """Execute one parsed command; returns a process exit code."""
    if args.command == "obs":
        return _cmd_obs(args)

    if args.command == "emulate":
        return _cmd_emulate(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "meanfield":
        return _cmd_meanfield(args)

    if args.command == "traces":
        return _cmd_traces(args)

    if args.command == "provenance":
        return _cmd_provenance(args)

    if args.command == "list":
        for exp in registry.EXPERIMENTS.values():
            print(f"{exp.exp_id:6s} {exp.description}")
        return 0

    if args.command == "run":
        try:
            exp = registry.get(args.experiment)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        config = _simulation_config(
            FAST_CONFIG if args.fast else DEFAULT_CONFIG, args
        )
        observing = args.profile or bool(args.trace_json)
        if observing:
            obs.reset()
            obs.enable()
        cache = None
        if args.cache_dir and not args.no_cache:
            from repro.runner import ResultCache

            cache = ResultCache(args.cache_dir)
        cache_status = None
        start = time.perf_counter()
        entry = None
        if cache is not None and not args.force:
            entry = cache.load(exp, config)
        if entry is not None:
            from repro.runner import decode_result

            result = decode_result(entry["result_kind"], entry["result"])
            cache_status = "hit"
        else:
            with obs.span("experiment", id=exp.exp_id):
                result = exp.run(config)
            if cache is not None:
                cache.store(exp, config, result)
                cache_status = "miss"
        elapsed = time.perf_counter() - start
        if args.json:
            meta = {
                "experiment": exp.exp_id,
                "elapsed_seconds": elapsed,
                "config": "fast" if args.fast else "default",
            }
            if cache is not None:
                meta["cache"] = cache_status
            if observing:
                meta["metrics"] = obs.snapshot()
            print(report.to_json(result, meta=meta))
        else:
            print(report.render(result))
        if observing:
            return _finish_observed(args)
        return 0

    if args.command == "run-all":
        from repro import runner

        config = _simulation_config(
            FAST_CONFIG if args.fast else DEFAULT_CONFIG, args
        )
        observing = args.profile or bool(args.trace_json)
        if observing:
            obs.reset()
            obs.enable()
        ids = list(args.ids) or None
        count = len(ids) if ids is not None else len(registry.EXPERIMENTS)
        # announced before any work starts, so operators (and the
        # fault-injection tests) can tell the batch is underway
        print(
            f"run-all: {count} experiment(s), jobs={args.jobs}",
            file=sys.stderr,
            flush=True,
        )
        try:
            batch = runner.run_many(
                ids,
                config=config,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                force=args.force,
            )
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.json:
            import json as _json

            payload = batch.to_dict()
            meta = {
                "schema": payload["schema"],
                "jobs": payload["jobs"],
                "wall_seconds": payload["wall_seconds"],
                "cache_dir": payload["cache_dir"],
                "counts": payload["counts"],
                "config": "fast" if args.fast else "default",
            }
            if observing:
                meta["metrics"] = obs.snapshot()
            envelope = {"_meta": meta, "result": payload["experiments"]}
            print(_json.dumps(envelope, indent=2))
        else:
            print(_render_run_all(batch))
        status = _finish_observed(args) if observing else 0
        if status:
            return status
        return 0 if batch.ok else 1

    if args.command == "verify":
        from repro.verify import runner as verify_runner

        config = FAST_CONFIG if args.fast_config else DEFAULT_CONFIG
        observing = args.profile or bool(args.trace_json)
        if observing:
            obs.reset()
            obs.enable()
        cache_status = None
        if args.only:
            # selections are never cached: a partial run must not be
            # served later as the full suite
            try:
                verification = verify_runner.run_suite(
                    args.suite, config, ids=args.only
                )
            except KeyError as exc:
                print(str(exc.args[0]), file=sys.stderr)
                return 2
        elif args.cache_dir and not args.no_cache:
            from repro.runner import ResultCache

            verification, from_cache = verify_runner.cached_suite(
                args.suite,
                config,
                cache=ResultCache(args.cache_dir),
                force=args.force,
            )
            cache_status = "hit" if from_cache else "miss"
        else:
            verification = verify_runner.run_suite(args.suite, config)
        if args.json:
            meta = {
                "config": "fast" if args.fast_config else "default",
            }
            if cache_status is not None:
                meta["cache"] = cache_status
            if observing:
                meta["metrics"] = obs.snapshot()
            import json as _json

            print(_json.dumps({"_meta": meta, **verification.to_dict()}, indent=2))
        else:
            print(verification.render())
        status = _finish_observed(args) if observing else 0
        if status:
            return status
        return 0 if verification.ok else 1

    if args.command == "profile":
        from repro.experiments import profiling

        config = DEFAULT_CONFIG if args.full else FAST_CONFIG
        obs.reset()
        obs.enable()
        try:
            entries = profiling.profile_all(config, only=args.only)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        finally:
            obs.disable()
        payload = profiling.report_dict(
            entries, config_name="default" if args.full else "fast"
        )
        if args.out:
            import json as _json

            obs.write_report_text(args.out, _json.dumps(payload, indent=2))
            print(f"profile report written to {args.out}", file=sys.stderr)
        if args.json:
            import json as _json

            print(_json.dumps(payload, indent=2))
        else:
            print(profiling.render_entries(entries))
        return 0 if all(e.ok for e in entries) else 1

    if args.command == "export":
        try:
            exp = registry.get(args.experiment)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
        result = exp.run(config)
        if not isinstance(result, dict):
            print(
                f"experiment {args.experiment} is a checkpoint table, not a "
                "figure; use `run` for it",
                file=sys.stderr,
            )
            return 2
        from repro.experiments.export import export_figure

        written = export_figure(result, args.out, args.experiment.replace(".", "_"))
        for path in written:
            print(path)
        return 0

    if args.command == "analyze-trace":
        from repro.traces import analyze_trace, read_trace
        from repro.utility import AdaptiveUtility, RigidUtility

        trace = read_trace(args.trace)
        utility = AdaptiveUtility() if args.utility == "adaptive" else RigidUtility(1.0)
        recommendation = analyze_trace(
            trace, utility, price=args.price, samples=args.samples
        )
        print(recommendation.summary())
        return 0

    if args.command == "checkpoints":
        observing = args.profile or bool(args.trace_json)
        if observing:
            obs.reset()
            obs.enable()
        with obs.span("checkpoints"):
            rows = checkpoints.all_checkpoints()
        if args.json:
            print(report.to_json(rows))
        elif args.markdown:
            print(report.markdown_checkpoint_table(rows))
        else:
            print(report.render_checkpoints(rows))
        status = _finish_observed(args) if observing else 0
        if status:
            return status
        return 0 if all(row.matches for row in rows) else 1

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
