"""Command-line entry point: ``repro-experiments``.

Usage::

    repro-experiments list                 # show every experiment id
    repro-experiments run F3               # regenerate Figure 3's series
    repro-experiments run T1 --json        # Section 3.3 checkpoints, JSON
    repro-experiments run F4 --fast        # small grids for a quick look
    repro-experiments checkpoints          # the full paper-vs-measured table
    repro-experiments export F3 --out fig  # CSV + gnuplot for Figure 3
    repro-experiments analyze-trace t.csv  # census verdict from a flow trace
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import checkpoints, registry, report
from repro.experiments.params import DEFAULT_CONFIG, FAST_CONFIG


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and text-quoted numbers of Breslau & "
            "Shenker, 'Best-Effort versus Reservations' (SIGCOMM 1998)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every registered experiment")

    run = sub.add_parser("run", help="run one experiment by id")
    run.add_argument("experiment", help="experiment id (e.g. F2, T1, S5.1)")
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")
    run.add_argument(
        "--fast", action="store_true", help="use the reduced grids (quick look)"
    )

    cp = sub.add_parser(
        "checkpoints", help="run every paper-vs-measured checkpoint"
    )
    cp.add_argument("--json", action="store_true", help="emit JSON instead of text")
    cp.add_argument("--markdown", action="store_true", help="emit a markdown table")

    ex = sub.add_parser(
        "export", help="write a figure's series as CSV + gnuplot scripts"
    )
    ex.add_argument("experiment", help="figure id (F1-F4, S5.1, S5.2)")
    ex.add_argument("--out", default="figures", help="output directory")
    ex.add_argument(
        "--fast", action="store_true", help="use the reduced grids (quick look)"
    )

    tr = sub.add_parser(
        "analyze-trace",
        help="read a flow-trace CSV, identify its census, print the verdict",
    )
    tr.add_argument("trace", help="path to a trace written by repro.traces.write_trace")
    tr.add_argument("--price", type=float, default=0.05, help="bandwidth price")
    tr.add_argument(
        "--utility",
        choices=["adaptive", "rigid"],
        default="adaptive",
        help="application utility class",
    )
    tr.add_argument(
        "--samples", type=int, default=4000, help="census samples for the fitters"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for exp in registry.EXPERIMENTS.values():
            print(f"{exp.exp_id:6s} {exp.description}")
        return 0

    if args.command == "run":
        try:
            exp = registry.get(args.experiment)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
        result = exp.run(config)
        print(report.to_json(result) if args.json else report.render(result))
        return 0

    if args.command == "export":
        try:
            exp = registry.get(args.experiment)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
        result = exp.run(config)
        if not isinstance(result, dict):
            print(
                f"experiment {args.experiment} is a checkpoint table, not a "
                "figure; use `run` for it",
                file=sys.stderr,
            )
            return 2
        from repro.experiments.export import export_figure

        written = export_figure(result, args.out, args.experiment.replace(".", "_"))
        for path in written:
            print(path)
        return 0

    if args.command == "analyze-trace":
        from repro.traces import analyze_trace, read_trace
        from repro.utility import AdaptiveUtility, RigidUtility

        trace = read_trace(args.trace)
        utility = AdaptiveUtility() if args.utility == "adaptive" else RigidUtility(1.0)
        recommendation = analyze_trace(
            trace, utility, price=args.price, samples=args.samples
        )
        print(recommendation.summary())
        return 0

    if args.command == "checkpoints":
        rows = checkpoints.all_checkpoints()
        if args.json:
            print(report.to_json(rows))
        elif args.markdown:
            print(report.markdown_checkpoint_table(rows))
        else:
            print(report.render_checkpoints(rows))
        return 0 if all(row.matches for row in rows) else 1

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
