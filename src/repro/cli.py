"""Command-line entry point: ``repro-experiments``.

Usage::

    repro-experiments list                 # show every experiment id
    repro-experiments run F3               # regenerate Figure 3's series
    repro-experiments run T1 --json        # Section 3.3 checkpoints, JSON
    repro-experiments run F4 --fast        # small grids for a quick look
    repro-experiments run F3 --profile     # + span-tree timing & metrics
    repro-experiments checkpoints          # the full paper-vs-measured table
    repro-experiments profile --json       # time every registered experiment
    repro-experiments export F3 --out fig  # CSV + gnuplot for Figure 3
    repro-experiments analyze-trace t.csv  # census verdict from a flow trace
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro import obs
from repro.experiments import checkpoints, registry, report
from repro.experiments.params import DEFAULT_CONFIG, FAST_CONFIG


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect observability data and print a timing/metrics report",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write the recorded span tree as JSON to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and text-quoted numbers of Breslau & "
            "Shenker, 'Best-Effort versus Reservations' (SIGCOMM 1998)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every registered experiment")

    run = sub.add_parser("run", help="run one experiment by id")
    run.add_argument("experiment", help="experiment id (e.g. F2, T1, S5.1)")
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")
    run.add_argument(
        "--fast", action="store_true", help="use the reduced grids (quick look)"
    )
    _add_profile_args(run)

    cp = sub.add_parser(
        "checkpoints", help="run every paper-vs-measured checkpoint"
    )
    cp.add_argument("--json", action="store_true", help="emit JSON instead of text")
    cp.add_argument("--markdown", action="store_true", help="emit a markdown table")
    _add_profile_args(cp)

    prof = sub.add_parser(
        "profile",
        help="time every registered experiment and report per-experiment "
        "wall time + metric deltas (reduced grids unless --full)",
    )
    prof.add_argument("--json", action="store_true", help="emit JSON instead of text")
    prof.add_argument(
        "--full",
        action="store_true",
        help="profile at the paper's full grids (slow) instead of the fast ones",
    )
    prof.add_argument(
        "--only",
        nargs="+",
        metavar="ID",
        help="profile only these experiment ids",
    )
    prof.add_argument(
        "--out",
        metavar="PATH",
        help="also write the machine-readable report JSON to PATH",
    )

    ex = sub.add_parser(
        "export", help="write a figure's series as CSV + gnuplot scripts"
    )
    ex.add_argument("experiment", help="figure id (F1-F4, S5.1, S5.2)")
    ex.add_argument("--out", default="figures", help="output directory")
    ex.add_argument(
        "--fast", action="store_true", help="use the reduced grids (quick look)"
    )

    tr = sub.add_parser(
        "analyze-trace",
        help="read a flow-trace CSV, identify its census, print the verdict",
    )
    tr.add_argument("trace", help="path to a trace written by repro.traces.write_trace")
    tr.add_argument("--price", type=float, default=0.05, help="bandwidth price")
    tr.add_argument(
        "--utility",
        choices=["adaptive", "rigid"],
        default="adaptive",
        help="application utility class",
    )
    tr.add_argument(
        "--samples", type=int, default=4000, help="census samples for the fitters"
    )
    return parser


def _finish_observed(args) -> int:
    """Emit the --profile report and/or --trace-json dump, then disable.

    Returns 0, or 2 if the trace file could not be written.
    """
    status = 0
    if args.trace_json:
        try:
            with open(args.trace_json, "w") as fh:
                fh.write(obs.trace_json())
        except OSError as exc:
            print(f"cannot write trace to {args.trace_json}: {exc}", file=sys.stderr)
            status = 2
        else:
            print(f"trace written to {args.trace_json}", file=sys.stderr)
    if args.profile:
        print()
        print(obs.render_report())
    obs.disable()
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for exp in registry.EXPERIMENTS.values():
            print(f"{exp.exp_id:6s} {exp.description}")
        return 0

    if args.command == "run":
        try:
            exp = registry.get(args.experiment)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
        observing = args.profile or bool(args.trace_json)
        if observing:
            obs.reset()
            obs.enable()
        start = time.perf_counter()
        with obs.span("experiment", id=exp.exp_id):
            result = exp.run(config)
        elapsed = time.perf_counter() - start
        if args.json:
            meta = {
                "experiment": exp.exp_id,
                "elapsed_seconds": elapsed,
                "config": "fast" if args.fast else "default",
            }
            if observing:
                meta["metrics"] = obs.snapshot()
            print(report.to_json(result, meta=meta))
        else:
            print(report.render(result))
        if observing:
            return _finish_observed(args)
        return 0

    if args.command == "profile":
        from repro.experiments import profiling

        config = DEFAULT_CONFIG if args.full else FAST_CONFIG
        obs.reset()
        obs.enable()
        try:
            entries = profiling.profile_all(config, only=args.only)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        finally:
            obs.disable()
        payload = profiling.report_dict(
            entries, config_name="default" if args.full else "fast"
        )
        if args.out:
            import json as _json

            with open(args.out, "w") as fh:
                _json.dump(payload, fh, indent=2)
            print(f"profile report written to {args.out}", file=sys.stderr)
        if args.json:
            import json as _json

            print(_json.dumps(payload, indent=2))
        else:
            print(profiling.render_entries(entries))
        return 0 if all(e.ok for e in entries) else 1

    if args.command == "export":
        try:
            exp = registry.get(args.experiment)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
        result = exp.run(config)
        if not isinstance(result, dict):
            print(
                f"experiment {args.experiment} is a checkpoint table, not a "
                "figure; use `run` for it",
                file=sys.stderr,
            )
            return 2
        from repro.experiments.export import export_figure

        written = export_figure(result, args.out, args.experiment.replace(".", "_"))
        for path in written:
            print(path)
        return 0

    if args.command == "analyze-trace":
        from repro.traces import analyze_trace, read_trace
        from repro.utility import AdaptiveUtility, RigidUtility

        trace = read_trace(args.trace)
        utility = AdaptiveUtility() if args.utility == "adaptive" else RigidUtility(1.0)
        recommendation = analyze_trace(
            trace, utility, price=args.price, samples=args.samples
        )
        print(recommendation.summary())
        return 0

    if args.command == "checkpoints":
        observing = args.profile or bool(args.trace_json)
        if observing:
            obs.reset()
            obs.enable()
        with obs.span("checkpoints"):
            rows = checkpoints.all_checkpoints()
        if args.json:
            print(report.to_json(rows))
        elif args.markdown:
            print(report.markdown_checkpoint_table(rows))
        else:
            print(report.render_checkpoints(rows))
        status = _finish_observed(args) if observing else 0
        if status:
            return status
        return 0 if all(row.matches for row in rows) else 1

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
