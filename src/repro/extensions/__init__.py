"""The Section 5 "other extensions" the paper examined.

- heterogeneous flows: :class:`MixtureUtility` and
  :class:`ScaledUtility` compose directly into every model.
- nonstationary loads: :class:`MixtureLoad` is a first-class census
  distribution built from time-shared regimes.
- risk aversion: :class:`RiskAverseModel` blends mean and worst-of-S
  scoring between the basic and sampling models.
- exact two-class analysis: :class:`TwoClassModel` convolves two
  independent censuses with their own utilities and demands — no
  Monte Carlo, no fixed-composition assumption.
"""

from repro.extensions.heterogeneous import MixtureUtility, ScaledUtility
from repro.extensions.nonstationary import MixtureLoad
from repro.extensions.risk_averse import RiskAverseModel
from repro.extensions.two_class import TwoClassModel

__all__ = [
    "MixtureLoad",
    "MixtureUtility",
    "RiskAverseModel",
    "ScaledUtility",
    "TwoClassModel",
]
