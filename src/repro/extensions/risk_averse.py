"""Risk-averse users (Section 5's "other extensions").

The paper notes that a user's utility "may not merely be the average
performance experienced, but something less" — a risk-averse
functional.  The sampling extension (Section 5.1) is the limiting
worst-case form; this module provides the graded version: a convex
blend between expected performance and worst-of-S performance,

    U = (1 - aversion) * E[pi]  +  aversion * E[pi at worst of S samples],

which reduces to the basic model at ``aversion = 0`` and to the pure
sampling model at ``aversion = 1``.  All conclusions about *which*
architecture wins are preserved, but the margins grow with aversion —
the quantitative point the paper's Section 5.1 numbers make.
"""

from __future__ import annotations

from typing import Optional


from repro.loads.base import LoadDistribution
from repro.models.sampling import SamplingModel
from repro.models.variable_load import GAP_FLOOR, VariableLoadModel
from repro.numerics.solvers import invert_monotone
from repro.utility.base import UtilityFunction


class RiskAverseModel:
    """Blend of mean-performance and worst-of-S-samples scoring.

    Parameters
    ----------
    load, utility:
        As in :class:`~repro.models.variable_load.VariableLoadModel`.
    samples:
        ``S`` of the pessimistic component.
    aversion:
        Blend weight in ``[0, 1]``; 0 = risk-neutral (basic model),
        1 = pure worst-of-S (sampling model).
    """

    def __init__(
        self,
        load: LoadDistribution,
        utility: UtilityFunction,
        *,
        samples: int = 10,
        aversion: float = 0.5,
        k_max_limit: Optional[int] = None,
    ):
        if not 0.0 <= aversion <= 1.0:
            raise ValueError(f"aversion must be in [0, 1], got {aversion!r}")
        self._aversion = float(aversion)
        self._mean_model = VariableLoadModel(load, utility, k_max_limit=k_max_limit)
        self._worst_model = SamplingModel(
            load, utility, samples, k_max_limit=k_max_limit
        )

    @property
    def aversion(self) -> float:
        """Weight on the worst-of-S component."""
        return self._aversion

    @property
    def samples(self) -> int:
        """``S`` of the pessimistic component."""
        return self._worst_model.samples

    def k_max(self, capacity: float) -> int:
        """Admission threshold (shared across components)."""
        return self._mean_model.k_max(capacity)

    def best_effort(self, capacity: float) -> float:
        """Risk-adjusted best-effort utility."""
        w = self._aversion
        return (1.0 - w) * self._mean_model.best_effort(capacity) + (
            w * self._worst_model.best_effort(capacity)
        )

    def reservation(self, capacity: float) -> float:
        """Risk-adjusted reservation utility."""
        w = self._aversion
        return (1.0 - w) * self._mean_model.reservation(capacity) + (
            w * self._worst_model.reservation(capacity)
        )

    def performance_gap(self, capacity: float) -> float:
        """``delta(C)`` under risk-adjusted scoring (clipped at zero)."""
        return max(0.0, self.reservation(capacity) - self.best_effort(capacity))

    def bandwidth_gap(
        self,
        capacity: float,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> float:
        """``Delta(C)`` under risk-adjusted scoring."""
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=upper_limit,
            label=f"risk-averse bandwidth gap at C={capacity}",
        )
        return max(0.0, solution - capacity)
