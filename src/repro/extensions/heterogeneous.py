"""Heterogeneous flows (Section 5's "other extensions").

The paper reports examining heterogeneous flows — mixtures of sizes
and utilities — and finding the asymptotic results unchanged.  We
realise that extension by composition: a *mixture* utility averages
class utilities at the common equal share, and a *scaled* utility
rebases a class's bandwidth demand, so the existing models run
untouched over heterogeneous populations.

With population fractions ``w_i`` and class utilities ``pi_i``, the
per-flow expected utility at share ``b`` is ``sum_i w_i pi_i(b)``;
since every flow receives the same share in both architectures, the
whole variable-load analysis goes through with this averaged ``pi`` —
which is itself a valid utility function (nondecreasing, 0 at 0,
1 at infinity).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utility.base import UtilityFunction


class ScaledUtility(UtilityFunction):
    """A class needing ``scale`` times the baseline bandwidth.

    ``pi_scaled(b) = pi(b / scale)``: a flow with twice the demand
    reaches the same satisfaction at twice the bandwidth.
    """

    name = "scaled"

    def __init__(self, base: UtilityFunction, scale: float):
        if scale <= 0.0:
            raise ValueError(f"demand scale must be > 0, got {scale!r}")
        self._base = base
        self._scale = float(scale)

    @property
    def base(self) -> UtilityFunction:
        """The unscaled class utility."""
        return self._base

    @property
    def scale(self) -> float:
        """Bandwidth demand multiplier."""
        return self._scale

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return self._base.value(b / self._scale)

    def _values(self, b: np.ndarray) -> np.ndarray:
        return self._base(b / self._scale)

    def derivative(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return self._base.derivative(b / self._scale) / self._scale

    def breakpoints(self) -> tuple:
        return tuple(self._scale * b for b in self._base.breakpoints())

    def __repr__(self) -> str:
        return f"ScaledUtility({self._base!r}, scale={self._scale!r})"


class MixtureUtility(UtilityFunction):
    """Population-averaged utility over heterogeneous flow classes.

    Parameters
    ----------
    components:
        Sequence of ``(weight, utility)`` pairs; weights must be
        positive and are normalised to sum to one.
    """

    name = "mixture"

    def __init__(self, components: Sequence[Tuple[float, UtilityFunction]]):
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = np.array([w for w, _ in components], dtype=float)
        if np.any(weights <= 0.0):
            raise ValueError(f"mixture weights must be > 0, got {list(weights)!r}")
        self._weights = tuple(float(w) for w in weights / weights.sum())
        self._utilities = tuple(u for _, u in components)

    @property
    def weights(self) -> tuple:
        """Normalised population fractions."""
        return self._weights

    @property
    def utilities(self) -> tuple:
        """Per-class utility functions."""
        return self._utilities

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return sum(w * u.value(b) for w, u in zip(self._weights, self._utilities))

    def _values(self, b: np.ndarray) -> np.ndarray:
        total = np.zeros_like(b)
        for w, u in zip(self._weights, self._utilities):
            total += w * u(b)
        return total

    def derivative(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return sum(w * u.derivative(b) for w, u in zip(self._weights, self._utilities))

    def breakpoints(self) -> tuple:
        points = set()
        for u in self._utilities:
            points.update(u.breakpoints())
        return tuple(sorted(points))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"({w!r}, {u!r})" for w, u in zip(self._weights, self._utilities)
        )
        return f"MixtureUtility([{parts}])"
