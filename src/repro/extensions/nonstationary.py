"""Nonstationary loads (Section 5's "other extensions").

The paper mentions nonstationary loads — the probability distribution
itself changing over time (diurnal rhythms, weekday/weekend regimes) —
among the extensions that perturbed small-C behaviour without changing
the asymptotics.  If the system spends fraction ``w_i`` of time in
regime ``i`` with census ``P_i(k)``, the long-run utility average is
the ``w``-mixture of the per-regime quantities — equivalently, the
variable-load model run on the mixture census

    P(k) = sum_i w_i P_i(k),

which this class provides as a first-class
:class:`~repro.loads.base.LoadDistribution` (so every model, including
the welfare and retry machinery, works on it unchanged).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.loads.base import LoadDistribution


class MixtureLoad(LoadDistribution):
    """Convex mixture of census distributions (time-share regimes).

    Parameters
    ----------
    components:
        Sequence of ``(weight, load)`` pairs; weights must be positive
        and are normalised to sum to one.
    """

    name = "mixture"

    def __init__(self, components: Sequence[Tuple[float, LoadDistribution]]):
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = np.array([w for w, _ in components], dtype=float)
        if np.any(weights <= 0.0):
            raise ValueError(f"mixture weights must be > 0, got {list(weights)!r}")
        self._weights = tuple(float(w) for w in weights / weights.sum())
        self._loads = tuple(load for _, load in components)
        self.support_min = min(load.support_min for load in self._loads)

    @property
    def weights(self) -> tuple:
        """Normalised regime time shares."""
        return self._weights

    @property
    def components(self) -> tuple:
        """Per-regime census distributions."""
        return self._loads

    def pmf(self, k: int) -> float:
        self.validate_k(k)
        return sum(w * load.pmf(k) for w, load in zip(self._weights, self._loads))

    def pmf_array(self, ks: np.ndarray) -> np.ndarray:
        total = np.zeros(np.asarray(ks).shape)
        for w, load in zip(self._weights, self._loads):
            total += w * np.asarray(load.pmf_array(ks), dtype=float)
        return total

    @property
    def mean(self) -> float:
        return sum(w * load.mean for w, load in zip(self._weights, self._loads))

    def sf(self, k: int) -> float:
        self.validate_k(k)
        return sum(w * load.sf(k) for w, load in zip(self._weights, self._loads))

    def mean_tail(self, n: int) -> float:
        return sum(
            w * load.mean_tail(n) for w, load in zip(self._weights, self._loads)
        )

    def continuous_pmf(self, x: float) -> float:
        return sum(
            w * load.continuous_pmf(x) for w, load in zip(self._weights, self._loads)
        )

    def rescaled(self, new_mean: float) -> "MixtureLoad":
        """Scale every regime's mean by the same factor.

        Keeps the regime *shape* (relative busy/quiet ratio) fixed,
        which is the natural reading of "the same nonstationary pattern
        at higher demand" — and what the retry fixed point needs.
        """
        if new_mean <= 0.0:
            raise ValueError(f"mean must be > 0, got {new_mean!r}")
        factor = new_mean / self.mean
        return MixtureLoad(
            [
                (w, load.rescaled(load.mean * factor))
                for w, load in zip(self._weights, self._loads)
            ]
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"({w!r}, {load!r})" for w, load in zip(self._weights, self._loads)
        )
        return f"MixtureLoad([{parts}])"
