"""Exact two-class single-link model (heterogeneous flows, analytic).

Section 5 mentions heterogeneous flows "both in size and in utility".
:class:`~repro.extensions.heterogeneous.MixtureUtility` handles a fixed
per-census *composition*; this model drops that assumption: two classes
with *independent* census distributions, their own utilities and
per-flow demands, evaluated exactly by convolving the two censuses on
a truncated grid (no Monte Carlo).

Sharing semantics (the single-link specialisation of the network
module's weighted max-min):

- **best effort**: everyone transmits; class ``i`` flows get
  ``d_i * C / (k_1 d_1 + k_2 d_2)`` each (capacity per unit demand).
- **reservations**: per census state, classes are admitted greedily in
  order of utility per unit bandwidth ``pi_i(d_i)/d_i`` (the exact LP
  ordering for this two-variable knapsack), each admitted flow
  reserving ``d_i``; leftover capacity is redistributed
  demand-proportionally among the admitted, so nobody gets less than
  their reservation and underloaded states coincide with best effort.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ModelError
from repro.loads.base import LoadDistribution
from repro.models.variable_load import GAP_FLOOR
from repro.numerics.solvers import invert_monotone
from repro.utility.base import UtilityFunction


class TwoClassModel:
    """Exact best-effort vs reservations for two independent classes.

    Parameters
    ----------
    loads:
        Pair of census distributions (independent).
    utilities:
        Pair of per-class utility functions.
    demands:
        Pair of per-flow bandwidth demands (> 0); default (1, 1).
    tol:
        Census-grid truncation tolerance (per class, on the partial
        first moment).  Heavy-tailed classes inflate the grid; this
        model targets light/moderate tails — use
        :class:`~repro.network.NetworkComparison` for extreme ones.
    """

    def __init__(
        self,
        loads: Tuple[LoadDistribution, LoadDistribution],
        utilities: Tuple[UtilityFunction, UtilityFunction],
        demands: Tuple[float, float] = (1.0, 1.0),
        *,
        tol: float = 1e-8,
        grid_cap: int = 4096,
    ):
        if len(loads) != 2 or len(utilities) != 2 or len(demands) != 2:
            raise ModelError("TwoClassModel takes exactly two of each input")
        if any(d <= 0.0 for d in demands):
            raise ModelError(f"demands must be > 0, got {demands!r}")
        self._loads = tuple(loads)
        self._utilities = tuple(utilities)
        self._demands = tuple(float(d) for d in demands)
        self._tol = float(tol)

        sizes = []
        for load in self._loads:
            n = 64
            while load.mean_tail(n) > self._tol:
                n *= 2
                if n > grid_cap:
                    raise ModelError(
                        f"census grid for {load!r} exceeds {grid_cap}; the "
                        "tail is too heavy for the exact two-class model"
                    )
            sizes.append(n)
        self._sizes = tuple(sizes)

        ks1 = np.arange(sizes[0], dtype=float)
        ks2 = np.arange(sizes[1], dtype=float)
        p1 = np.asarray(self._loads[0].pmf_array(ks1), dtype=float)
        p2 = np.asarray(self._loads[1].pmf_array(ks2), dtype=float)
        for load, p in zip(self._loads, (p1, p2)):
            if load.support_min > 0:
                p[: load.support_min] = 0.0
        self._k1 = ks1[:, None]
        self._k2 = ks2[None, :]
        self._weights = p1[:, None] * p2[None, :]
        self._mean_total = self._loads[0].mean + self._loads[1].mean

        # admission ordering: utility per unit of reserved bandwidth
        density = [
            u.value(d) / d for u, d in zip(self._utilities, self._demands)
        ]
        self._dense_first = 0 if density[0] >= density[1] else 1

    @property
    def mean_load(self) -> float:
        """Total mean flow count across both classes."""
        return self._mean_total

    # ------------------------------------------------------------------

    def _state_utilities_best_effort(self, capacity: float) -> np.ndarray:
        d1, d2 = self._demands
        u1, u2 = self._utilities
        demand_total = self._k1 * d1 + self._k2 * d2
        with np.errstate(divide="ignore"):
            level = np.where(demand_total > 0.0, capacity / np.maximum(demand_total, 1e-300), 0.0)
        total = np.zeros_like(demand_total)
        mask = demand_total > 0.0
        total[mask] = (
            self._k1 * u1(np.minimum(d1 * level, 1e12))
            + self._k2 * u2(np.minimum(d2 * level, 1e12))
        )[mask]
        return total

    def _state_utilities_reservation(self, capacity: float) -> np.ndarray:
        d = self._demands
        u = self._utilities
        first = self._dense_first
        second = 1 - first
        k = (self._k1, self._k2)

        n_first = np.minimum(k[first], np.floor(capacity / d[first] + 1e-12))
        remaining = capacity - n_first * d[first]
        n_second = np.minimum(
            k[second], np.floor(np.maximum(remaining, 0.0) / d[second] + 1e-12)
        )
        reserved = n_first * d[first] + n_second * d[second]
        with np.errstate(divide="ignore"):
            boost = np.where(reserved > 0.0, capacity / np.maximum(reserved, 1e-300), 1.0)
        boost = np.minimum(boost, 1e12)
        total = np.zeros_like(reserved)
        mask = reserved > 0.0
        contributions = n_first * u[first](
            np.minimum(d[first] * boost, 1e12)
        ) + n_second * u[second](np.minimum(d[second] * boost, 1e12))
        total[mask] = contributions[mask]
        return total

    # ------------------------------------------------------------------

    def best_effort(self, capacity: float) -> float:
        """Normalised best-effort utility (per mean offered flow)."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        states = self._state_utilities_best_effort(capacity)
        return float(np.sum(self._weights * states)) / self._mean_total

    def reservation(self, capacity: float) -> float:
        """Normalised reservation utility."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        # The greedy density-ordered packing never overbooks, so in
        # census states where squeezing one more flow below its nominal
        # demand beats boosting the packed set (e.g. 9 flows at 99% of
        # demand vs 8 boosted ones) it loses to plain equal sharing.  A
        # reservation-capable network can always fall back to exactly
        # the best-effort allocation — reservations equal to the
        # equal-share levels — so the architecture's value is the
        # state-wise better of the two policies.  This also makes
        # reservation dominance (delta >= 0) hold exactly rather than
        # "in practice".
        states = np.maximum(
            self._state_utilities_reservation(capacity),
            self._state_utilities_best_effort(capacity),
        )
        return float(np.sum(self._weights * states)) / self._mean_total

    def performance_gap(self, capacity: float) -> float:
        """``delta(C)`` across both classes (nonnegative: the
        reservation side falls back to the equal-share allocation in
        any census state where the greedy packing would lose to it)."""
        return self.reservation(capacity) - self.best_effort(capacity)

    def bandwidth_gap(
        self,
        capacity: float,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> float:
        """``Delta(C)`` solving ``B(C + Delta) = R(C)``."""
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=upper_limit,
            label=f"two-class bandwidth gap at C={capacity}",
        )
        return max(0.0, solution - capacity)

    def per_class_best_effort(self, capacity: float) -> Tuple[float, float]:
        """Per-class normalised best-effort utilities (class means)."""
        d1, d2 = self._demands
        u1, u2 = self._utilities
        demand_total = self._k1 * d1 + self._k2 * d2
        with np.errstate(divide="ignore"):
            level = np.where(demand_total > 0.0, capacity / np.maximum(demand_total, 1e-300), 0.0)
        c1 = self._k1 * u1(np.minimum(d1 * level, 1e12))
        c2 = self._k2 * u2(np.minimum(d2 * level, 1e12))
        mask = demand_total > 0.0
        total1 = float(np.sum(self._weights[mask] * c1[mask]))
        total2 = float(np.sum(self._weights[mask] * c2[mask]))
        return total1 / self._loads[0].mean, total2 / self._loads[1].mean
