"""Asymptotic laws and the paper's conjectured bounds.

The paper's large-C / small-p story in one module:

==================  =====================  ==============================
case                Delta(C) growth        gamma(p) limit (p -> 0)
==================  =====================  ==============================
rigid x Poisson     -> 0 superexponential  1
rigid x exponential ~ ln(beta C)/beta      1 (like 1 + lnln/ln)
rigid x algebraic   C ((z-1)^{1/(z-2)}-1)  (z-1)^{1/(z-2)}
ramp  x exponential -> -ln(1-a)/beta       1
ramp  x algebraic   C (ratio(z,a) - 1)     ratio(z,a)
==================  =====================  ==============================

and the bounds: in the basic model the worst case is ``z -> 2+`` where
the ratio tends to ``e`` (so ``Delta/C -> e - 1``), conjectured maximal
over load distributions.  The Section 5 extensions *break* these
bounds: with ``S`` performance samples the rigid ratio becomes
``(S (z-1))^{1/(z-2)}`` and with retry penalty ``alpha`` it becomes
``((z-1)/alpha)^{1/(z-2)}`` — both divergent as ``z -> 2+``.
"""

from __future__ import annotations

import math

from repro.continuum.adaptive_algebraic import best_effort_loss_coefficient

#: The paper's conjectured asymptotic bound on gamma(p) in the basic model.
GAMMA_BOUND = math.e

#: The paper's conjectured asymptotic bound on Delta(C)/C in the basic model.
DELTA_OVER_C_BOUND = math.e - 1.0


def _check_z(z: float) -> None:
    if z <= 2.0:
        raise ValueError(f"power z must be > 2, got {z!r}")


def _power_ratio(base: float, z: float) -> float:
    """``base ** (1/(z-2))`` in log space; inf instead of overflow.

    The z -> 2+ limits are the whole point of these functions, so they
    must survive exponents far beyond float range.
    """
    exponent = math.log(base) / (z - 2.0)
    if exponent > 700.0:
        return math.inf
    return math.exp(exponent)


def rigid_algebraic_ratio(z: float) -> float:
    """Basic model, rigid apps: ``(C+Delta)/C = (z-1)^{1/(z-2)}``."""
    _check_z(z)
    return _power_ratio(z - 1.0, z)


def adaptive_algebraic_ratio(z: float, a: float) -> float:
    """Basic model, ramp(a) apps: ``(c_B/c_R)^{1/(z-2)}``."""
    _check_z(z)
    c_b = best_effort_loss_coefficient(z, a)
    return _power_ratio((z - 2.0) * c_b, z)


def adaptive_algebraic_ratio_limit(a: float) -> float:
    """``z -> 2+`` limit of the ramp ratio: ``a^{-a/(1-a)}`` in [1, e)."""
    if not 0.0 <= a < 1.0:
        raise ValueError(f"adaptivity parameter a must be in [0, 1), got {a!r}")
    if a == 0.0:
        return 1.0
    return a ** (-a / (1.0 - a))


def sampling_rigid_ratio(z: float, samples: int) -> float:
    """Sampling extension, rigid apps: ``(S (z-1))^{1/(z-2)}``.

    Derivation: with ``S`` samples the best-effort disutility becomes
    ``1 - B_S = 1 - (1 - C^{2-z})^S ~ S C^{2-z}``, while the
    reservation disutility is unchanged at ``C^{2-z}/(z-1)``; equating
    ``B_S(C + Delta) = R_S(C)`` gives the ratio.  Divergent as
    ``z -> 2+`` for every ``S > 1`` — sampling removes the ``e`` bound.
    """
    _check_z(z)
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples!r}")
    return _power_ratio(samples * (z - 1.0), z)


def sampling_adaptive_ratio(z: float, a: float, samples: int) -> float:
    """Sampling extension, ramp(a) apps: ``(S c_B (z-2))^{1/(z-2)}``.

    For the ramp, admitted flows never see an effective share below 1
    (loads are capped at ``k_max = C``), so the reservation disutility
    is still the pure blocking loss ``C^{2-z}/(z-1)``; the best-effort
    disutility is ``S`` times the single-sample coefficient.  Also
    divergent as ``z -> 2+`` whenever ``S > 1`` or ``a > 0``.
    """
    _check_z(z)
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples!r}")
    c_b = best_effort_loss_coefficient(z, a)
    return _power_ratio(samples * (z - 2.0) * c_b, z)


def retrying_rigid_ratio(z: float, alpha: float) -> float:
    """Retrying extension, rigid apps: ``((z-1)/alpha)^{1/(z-2)}``.

    With retries the reservation disutility at large C is just the
    retry penalty ``alpha * theta`` with blocking
    ``theta = C^{2-z}/(z-1)``; best-effort is unchanged at ``C^{2-z}``.
    Diverges as ``z -> 2+`` for every ``alpha < 1``.
    """
    _check_z(z)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"retry penalty alpha must be in (0, 1], got {alpha!r}")
    return _power_ratio((z - 1.0) / alpha, z)


def retrying_adaptive_ratio(z: float, a: float, alpha: float) -> float:
    """Retrying extension, ramp(a) apps: ``(c_B (z-2)/alpha)^{1/(z-2)}``."""
    _check_z(z)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"retry penalty alpha must be in (0, 1], got {alpha!r}")
    c_b = best_effort_loss_coefficient(z, a)
    return _power_ratio((z - 2.0) * c_b / alpha, z)


def sampling_exponential_gap(beta: float, capacity: float, samples: int) -> float:
    """Rigid x exponential with sampling: ``delta ~ e^{-bC}(S(1+bC)-1)``.

    The paper's stated large-C form; the sampling extension does not
    change the exponential case qualitatively (the gap still vanishes,
    the bandwidth gap still grows like ``S ln(C)/beta``).
    """
    if beta <= 0.0:
        raise ValueError(f"rate beta must be > 0, got {beta!r}")
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples!r}")
    bc = beta * capacity
    return math.exp(-bc) * (samples * (1.0 + bc) - 1.0)
