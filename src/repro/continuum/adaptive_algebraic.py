"""Closed forms: adaptive (ramp) applications, algebraic load.

With the Pareto census ``P(k) = (z-1) k^{-z}`` and ramp utility of
dead zone ``a``, both architectures lose utility like ``C^{2-z}``:

    k_bar - V_R(C) = c_R C^{2-z},   c_R = 1/(z-2)
    k_bar - V_B(C) = c_B C^{2-z},
    c_B = (z-1)/(1-a) [ (1-a^{z-2})/(z-2) - (1-a^{z-1})/(z-1) ]
        + (z-1) a^{z-2} / (z-2)

so the bandwidth gap stays *exactly* linear in capacity,

    Delta(C) = C ((c_B/c_R)^{1/(z-2)} - 1),

but with a slope that shrinks with adaptivity: in the ``z -> 2+``
limit the gap ratio tends to ``a^{-a/(1-a)}`` — spanning 1 (``a -> 0``,
fully adaptive) to ``e`` (``a -> 1``, rigid), the paper's statement
that the worst-case constant "can vary from 1 to e depending on the
nature of the adaptive utility function".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.continuum.rigid_algebraic import RigidAlgebraicContinuum
from repro.errors import ModelError


def best_effort_loss_coefficient(z: float, a: float) -> float:
    """``c_B`` with ``k_bar - V_B(C) = c_B C^{2-z}`` (unnormalised).

    Derived by splitting the census at the ramp kinks ``k = C`` and
    ``k = C/a``; verified against quadrature in the test suite.
    Limits: ``a = 0`` collapses to the reservation coefficient
    ``1/(z-2)`` (a fully adaptive best-effort network loses nothing
    relative to reservations), while ``a -> 1`` recovers the rigid
    coefficient ``k_bar = (z-1)/(z-2)``.
    """
    if z <= 2.0:
        raise ValueError(f"power z must be > 2, got {z!r}")
    if not 0.0 <= a < 1.0:
        raise ValueError(f"adaptivity parameter a must be in [0, 1), got {a!r}")
    if a == 0.0:
        return 1.0 / (z - 2.0)
    bracket = (1.0 - a ** (z - 2.0)) / (z - 2.0) - (1.0 - a ** (z - 1.0)) / (z - 1.0)
    return (z - 1.0) / (1.0 - a) * bracket + (z - 1.0) * a ** (z - 2.0) / (z - 2.0)


def gap_ratio(z: float, a: float) -> float:
    """``(C + Delta)/C = (c_B/c_R)^{1/(z-2)}`` for the ramp(a) case."""
    c_b = best_effort_loss_coefficient(z, a)
    c_r = 1.0 / (z - 2.0)
    return (c_b / c_r) ** (1.0 / (z - 2.0))


def gap_ratio_limit(a: float) -> float:
    """``lim_{z->2+} (C+Delta)/C = a^{-a/(1-a)}``.

    Expanding ``c_B/c_R = 1 - (z-2) a ln(a)/(1-a) + O((z-2)^2)`` and
    exponentiating.  Ranges from 1 at ``a = 0`` to ``e`` at ``a -> 1``.
    """
    if not 0.0 <= a < 1.0:
        raise ValueError(f"adaptivity parameter a must be in [0, 1), got {a!r}")
    if a == 0.0:
        return 1.0
    return a ** (-a / (1.0 - a))


class AdaptiveAlgebraicContinuum:
    """Closed forms for the ramp(a) x Pareto(z) case."""

    def __init__(self, z: float, a: float):
        self._rigid = RigidAlgebraicContinuum(z)  # validates z
        if not 0.0 <= a < 1.0:
            raise ValueError(f"adaptivity parameter a must be in [0, 1), got {a!r}")
        self._z = float(z)
        self._a = float(a)
        self._c_b = best_effort_loss_coefficient(z, a)
        self._c_r = 1.0 / (self._z - 2.0)

    @property
    def z(self) -> float:
        """Census tail power."""
        return self._z

    @property
    def a(self) -> float:
        """Ramp dead-zone width."""
        return self._a

    @property
    def mean_load(self) -> float:
        """``k_bar = (z-1)/(z-2)``."""
        return self._rigid.mean_load

    # -------------------------- utilities ---------------------------

    def total_reservation(self, capacity: float) -> float:
        """Identical to the rigid case."""
        return self._rigid.total_reservation(capacity)

    def reservation(self, capacity: float) -> float:
        """Normalised ``R(C) = 1 - C^{2-z}/(z-1)``."""
        return self._rigid.reservation(capacity)

    def total_best_effort(self, capacity: float) -> float:
        """``V_B(C) = k_bar - c_B C^{2-z}`` for ``C >= 1``."""
        self._check_capacity(capacity)
        return self.mean_load - self._c_b * capacity ** (2.0 - self._z)

    def best_effort(self, capacity: float) -> float:
        """Normalised ``B(C)``."""
        return self.total_best_effort(capacity) / self.mean_load

    def performance_gap(self, capacity: float) -> float:
        """``delta(C) = (c_B - c_R) C^{2-z} / k_bar``."""
        self._check_capacity(capacity)
        return (self._c_b - self._c_r) * capacity ** (2.0 - self._z) / self.mean_load

    def gap_ratio(self) -> float:
        """``(C + Delta)/C`` — capacity-independent."""
        return (self._c_b / self._c_r) ** (1.0 / (self._z - 2.0))

    def bandwidth_gap(self, capacity: float) -> float:
        """``Delta(C) = C (gap_ratio - 1)`` — exactly linear in C."""
        self._check_capacity(capacity)
        return capacity * (self.gap_ratio() - 1.0)

    # ------------------------- batch forms --------------------------

    def best_effort_batch(self, capacities) -> np.ndarray:
        """``B`` over a capacity grid (closed form)."""
        caps = self._rigid._grid(capacities)
        kbar = self.mean_load
        return (kbar - self._c_b * caps ** (2.0 - self._z)) / kbar

    def reservation_batch(self, capacities) -> np.ndarray:
        """``R`` over a capacity grid — identical to the rigid case."""
        return self._rigid.reservation_batch(capacities)

    def performance_gap_batch(self, capacities) -> np.ndarray:
        """``delta`` over a capacity grid (closed form)."""
        caps = self._rigid._grid(capacities)
        return (self._c_b - self._c_r) * caps ** (2.0 - self._z) / self.mean_load

    def bandwidth_gap_batch(self, capacities) -> np.ndarray:
        """``Delta`` over a capacity grid — exactly linear in ``C``."""
        return self._rigid._grid(capacities) * (self.gap_ratio() - 1.0)

    # --------------------------- welfare ----------------------------

    def optimal_capacity_best_effort(self, price: float) -> float:
        """``C_B(p)`` from ``V_B'(C) = (z-2) c_B C^{1-z} = p``."""
        self._check_price(price)
        z = self._z
        return ((z - 2.0) * self._c_b / price) ** (1.0 / (z - 1.0))

    def optimal_capacity_reservation(self, price: float) -> float:
        """Same as rigid: ``C_R(p) = p^{-1/(z-1)}``."""
        return self._rigid.optimal_capacity_reservation(price)

    def welfare_best_effort(self, price: float) -> float:
        """``W_B(p) = V_B(C_B) - p C_B``."""
        c = self.optimal_capacity_best_effort(price)
        return self.total_best_effort(c) - price * c

    def welfare_reservation(self, price: float) -> float:
        """Same as rigid: ``W_R(p) = k_bar (1 - p^{(z-2)/(z-1)})``."""
        return self._rigid.welfare_reservation(price)

    def equalizing_ratio(self, price: Optional[float] = None) -> float:
        """``gamma``: price-independent, from ``W_R(gamma p) = W_B(p)``.

        Writing ``k_bar - W_B(p) = w p^{(z-2)/(z-1)}`` and
        ``k_bar - W_R(p) = k_bar p^{(z-2)/(z-1)}`` gives
        ``gamma = (w / k_bar)^{(z-1)/(z-2)}`` exactly.
        """
        z = self._z
        probe = price if price is not None else 1e-3
        self._check_price(probe)
        shortfall = self.mean_load - self.welfare_best_effort(probe)
        w = shortfall / probe ** ((z - 2.0) / (z - 1.0))
        return (w / self.mean_load) ** ((z - 1.0) / (z - 2.0))

    # --------------------------- guards -----------------------------

    def _check_capacity(self, capacity: float) -> None:
        if capacity < 1.0:
            raise ModelError(
                f"the algebraic closed forms hold for C >= 1, got {capacity!r}"
            )

    def _check_price(self, price: float) -> None:
        if not 0.0 < price <= 1.0:
            raise ModelError(
                f"price must be in (0, 1] for the adaptive-algebraic welfare "
                f"closed forms, got {price!r}"
            )
