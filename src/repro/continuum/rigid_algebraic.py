"""Closed forms: rigid applications, algebraic load (Section 3.2/4).

With census density ``P(k) = (z-1) k^{-z}`` on ``k >= 1`` (mean
``k_bar = (z-1)/(z-2)``) and unit-threshold rigid utility:

    B(C) = 1 - C^{2-z}
    R(C) = 1 - C^{2-z} / (z-1)
    delta(C) = C^{2-z} (z-2)/(z-1)
    Delta(C) = C ((z-1)^{1/(z-2)} - 1)      -- linear in C, for all z!

This is the paper's central asymmetry: under heavy-tailed loads the
bandwidth gap grows *linearly* with capacity, and in the ``z -> 2+``
limit ``Delta(C)/C -> e - 1`` — the conjectured worst case.  The
welfare side closes too, with a price-independent equalizing ratio
``gamma = (z-1)^{1/(z-2)}`` that approaches ``e`` as ``z -> 2+``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ModelError


class RigidAlgebraicContinuum:
    """All Section 3.2/4 closed forms for the rigid x algebraic case."""

    def __init__(self, z: float):
        if z <= 2.0:
            raise ValueError(f"power z must be > 2, got {z!r}")
        self._z = float(z)

    @property
    def z(self) -> float:
        """Census tail power."""
        return self._z

    @property
    def mean_load(self) -> float:
        """``k_bar = (z-1)/(z-2)``."""
        return (self._z - 1.0) / (self._z - 2.0)

    # -------------------------- utilities ---------------------------

    def best_effort(self, capacity: float) -> float:
        """``B(C) = 1 - C^{2-z}`` for ``C >= 1``."""
        self._check_capacity(capacity)
        return 1.0 - capacity ** (2.0 - self._z)

    def reservation(self, capacity: float) -> float:
        """``R(C) = 1 - C^{2-z}/(z-1)`` for ``C >= 1``."""
        self._check_capacity(capacity)
        return 1.0 - capacity ** (2.0 - self._z) / (self._z - 1.0)

    def total_best_effort(self, capacity: float) -> float:
        """Unnormalised ``V_B(C) = k_bar B(C)``."""
        return self.mean_load * self.best_effort(capacity)

    def total_reservation(self, capacity: float) -> float:
        """Unnormalised ``V_R(C) = k_bar R(C)``."""
        return self.mean_load * self.reservation(capacity)

    def performance_gap(self, capacity: float) -> float:
        """``delta(C) = C^{2-z} (z-2)/(z-1)``."""
        self._check_capacity(capacity)
        z = self._z
        return capacity ** (2.0 - z) * (z - 2.0) / (z - 1.0)

    def gap_ratio(self) -> float:
        """``(C + Delta)/C = (z-1)^{1/(z-2)}`` — capacity-independent."""
        z = self._z
        return (z - 1.0) ** (1.0 / (z - 2.0))

    def bandwidth_gap(self, capacity: float) -> float:
        """``Delta(C) = C ((z-1)^{1/(z-2)} - 1)`` — exactly linear."""
        self._check_capacity(capacity)
        return capacity * (self.gap_ratio() - 1.0)

    # ------------------------- batch forms --------------------------

    def _grid(self, capacities) -> np.ndarray:
        caps = np.asarray(capacities, dtype=float).ravel()
        if caps.size and float(np.min(caps)) < 1.0:
            raise ModelError(
                f"the algebraic closed forms hold for C >= 1, got "
                f"{float(np.min(caps))!r}"
            )
        return caps

    def best_effort_batch(self, capacities) -> np.ndarray:
        """``B`` over a capacity grid (closed form)."""
        return 1.0 - self._grid(capacities) ** (2.0 - self._z)

    def reservation_batch(self, capacities) -> np.ndarray:
        """``R`` over a capacity grid (closed form)."""
        return 1.0 - self._grid(capacities) ** (2.0 - self._z) / (self._z - 1.0)

    def performance_gap_batch(self, capacities) -> np.ndarray:
        """``delta`` over a capacity grid (closed form)."""
        z = self._z
        return self._grid(capacities) ** (2.0 - z) * (z - 2.0) / (z - 1.0)

    def bandwidth_gap_batch(self, capacities) -> np.ndarray:
        """``Delta`` over a capacity grid — exactly linear in ``C``."""
        return self._grid(capacities) * (self.gap_ratio() - 1.0)

    # --------------------------- welfare ----------------------------

    def optimal_capacity_best_effort(self, price: float) -> float:
        """``C_B(p)`` from ``V_B'(C) = (z-1) C^{1-z} = p``."""
        self._check_price(price)
        z = self._z
        return ((z - 1.0) / price) ** (1.0 / (z - 1.0))

    def optimal_capacity_reservation(self, price: float) -> float:
        """``C_R(p) = p^{-1/(z-1)}`` (from ``V_R'(C) = C^{1-z} = p``)."""
        self._check_price(price)
        return price ** (-1.0 / (self._z - 1.0))

    def welfare_best_effort(self, price: float) -> float:
        """``W_B(p) = V_B(C_B) - p C_B``."""
        c = self.optimal_capacity_best_effort(price)
        return self.total_best_effort(c) - price * c

    def welfare_reservation(self, price: float) -> float:
        """``W_R(p) = k_bar (1 - p^{(z-2)/(z-1)})``."""
        self._check_price(price)
        z = self._z
        return self.mean_load * (1.0 - price ** ((z - 2.0) / (z - 1.0)))

    def equalizing_ratio(self, price: float = None) -> float:
        """``gamma(p) = (z-1)^{1/(z-2)}`` — independent of price.

        The ``price`` argument is accepted (and validated when given)
        only for interface symmetry with the other continuum cases.
        """
        if price is not None:
            self._check_price(price)
        return self.gap_ratio()

    # ------------------------- asymptotics --------------------------

    @staticmethod
    def worst_case_gap_ratio() -> float:
        """``lim_{z->2+} (C+Delta)/C = e`` (the paper's conjectured bound)."""
        return math.e

    @staticmethod
    def worst_case_delta_over_c() -> float:
        """``lim_{z->2+} Delta(C)/C = e - 1``."""
        return math.e - 1.0

    # --------------------------- guards -----------------------------

    def _check_capacity(self, capacity: float) -> None:
        if capacity < 1.0:
            raise ModelError(
                f"the algebraic closed forms hold for C >= 1, got {capacity!r}"
            )

    def _check_price(self, price: float) -> None:
        # C_B >= 1 requires p <= z-1; C_R >= 1 requires p <= 1
        if not 0.0 < price <= 1.0:
            raise ModelError(
                f"price must be in (0, 1] for the rigid-algebraic welfare "
                f"closed forms, got {price!r}"
            )
