"""Closed forms: rigid applications, exponential load (Section 3.2/4).

With census density ``P(k) = beta e^{-beta k}`` (mean ``1/beta``) and
unit-threshold rigid utility, everything is elementary:

    V_R(C) = (1/beta) (1 - e^{-beta C})
    V_B(C) = (1/beta) (1 - e^{-beta C} (1 + beta C))
    delta(C) = beta C e^{-beta C}            (normalised)
    beta Delta(C) = ln(1 + beta (C + Delta)) (implicit; ~ ln(beta C)/beta)

The welfare model also closes: the best-effort first-order condition is
``p = beta C e^{-beta C}`` (take the *largest* root ``h(p)`` of
``h e^{-h} = p``, i.e. the Lambert-W lower branch), giving

    W_B(p) = (1/beta) (1 - p - p/h - p h)
    W_R(p) = (1/beta) (1 - p + p ln p)

and the equalizing ratio solves
``gamma (1 - ln gamma - ln p) = 1 + 1/h + h``, converging to 1 as
``p -> 0`` — cheap bandwidth erases the case for reservations here.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.errors import ModelError
from repro.numerics.batch import find_roots
from repro.numerics.solvers import find_root

#: Largest price with a nonzero best-effort provisioning optimum
#: (``h e^{-h}`` peaks at ``1/e``).
PRICE_CEILING = 1.0 / math.e


class RigidExponentialContinuum:
    """All Section 3.2/4 closed forms for the rigid x exponential case."""

    def __init__(self, beta: float = 1.0):
        if beta <= 0.0:
            raise ValueError(f"rate beta must be > 0, got {beta!r}")
        self._beta = float(beta)

    @property
    def beta(self) -> float:
        """Census decay rate; the mean load is ``1/beta``."""
        return self._beta

    @property
    def mean_load(self) -> float:
        """``k_bar = 1/beta``."""
        return 1.0 / self._beta

    # -------------------------- utilities ---------------------------

    def total_reservation(self, capacity: float) -> float:
        """``V_R(C) = (1/beta)(1 - e^{-beta C})``."""
        self._check_capacity(capacity)
        return (1.0 - math.exp(-self._beta * capacity)) / self._beta

    def total_best_effort(self, capacity: float) -> float:
        """``V_B(C) = (1/beta)(1 - e^{-beta C}(1 + beta C))``."""
        self._check_capacity(capacity)
        bc = self._beta * capacity
        return (1.0 - math.exp(-bc) * (1.0 + bc)) / self._beta

    def reservation(self, capacity: float) -> float:
        """Normalised ``R(C) = 1 - e^{-beta C}``."""
        return self.total_reservation(capacity) * self._beta

    def best_effort(self, capacity: float) -> float:
        """Normalised ``B(C) = 1 - e^{-beta C}(1 + beta C)``."""
        return self.total_best_effort(capacity) * self._beta

    def performance_gap(self, capacity: float) -> float:
        """``delta(C) = beta C e^{-beta C}``."""
        self._check_capacity(capacity)
        bc = self._beta * capacity
        return bc * math.exp(-bc)

    def bandwidth_gap(self, capacity: float) -> float:
        """``Delta(C)`` from ``beta Delta = ln(1 + beta(C + Delta))``.

        The residual is increasing in ``Delta`` and negative at 0, so
        the root is unique and bracketable.
        """
        self._check_capacity(capacity)
        beta = self._beta

        def residual(delta: float) -> float:
            return beta * delta - math.log1p(beta * (capacity + delta))

        return find_root(
            residual,
            0.0,
            max(1.0, capacity),
            expand=True,
            upper_limit=1e12,
            label=f"rigid-exponential Delta(C={capacity})",
        )

    # ------------------------- batch forms --------------------------

    def _grid(self, capacities) -> np.ndarray:
        caps = np.asarray(capacities, dtype=float).ravel()
        if caps.size and float(np.min(caps)) < 0.0:
            raise ValueError(
                f"capacity must be >= 0, got {float(np.min(caps))!r}"
            )
        return caps

    def best_effort_batch(self, capacities) -> np.ndarray:
        """Normalised ``B`` over a capacity grid (closed form)."""
        bc = self._beta * self._grid(capacities)
        return 1.0 - np.exp(-bc) * (1.0 + bc)

    def reservation_batch(self, capacities) -> np.ndarray:
        """Normalised ``R`` over a capacity grid (closed form)."""
        return 1.0 - np.exp(-self._beta * self._grid(capacities))

    def performance_gap_batch(self, capacities) -> np.ndarray:
        """``delta`` over a capacity grid (closed form)."""
        bc = self._beta * self._grid(capacities)
        return bc * np.exp(-bc)

    def bandwidth_gap_batch(self, capacities) -> np.ndarray:
        """``Delta`` over a capacity grid via one vectorised root find."""
        caps = self._grid(capacities)
        beta = self._beta

        def residual(delta: np.ndarray, c: np.ndarray) -> np.ndarray:
            return beta * delta - np.log1p(beta * (c + delta))

        result = find_roots(
            residual,
            np.zeros(caps.size),
            np.maximum(1.0, caps),
            args=(caps,),
            expand=True,
            upper_limit=1e12,
            label="rigid-exponential Delta batch",
        )
        return result.roots

    def equalizing_ratio_batch(self, prices) -> np.ndarray:
        """``gamma`` over a price grid via one vectorised root find."""
        ps = np.asarray(prices, dtype=float).ravel()
        for p in ps:
            self._check_price(float(p))
        h = -np.real(special.lambertw(-ps, k=-1))
        rhs = 1.0 + 1.0 / h + h
        log_p = np.log(ps)

        def residual(gamma, rhs_v, log_p_v):
            return gamma * (1.0 - np.log(gamma) - log_p_v) - rhs_v

        result = find_roots(
            residual,
            np.ones(ps.size),
            np.full(ps.size, 4.0),
            args=(rhs, log_p),
            expand=True,
            upper_limit=float(np.max(1.0 / ps)),
            label="rigid-exponential gamma batch",
        )
        return result.roots

    def bandwidth_gap_asymptotic(self, capacity: float) -> float:
        """Leading large-C behaviour ``ln(beta C)/beta`` (paper Section 3.3)."""
        self._check_capacity(capacity)
        if capacity * self._beta <= 1.0:
            raise ModelError("asymptotic form needs beta*C > 1")
        return math.log(self._beta * capacity) / self._beta

    # --------------------------- welfare ----------------------------

    def h(self, price: float) -> float:
        """Largest root of ``h e^{-h} = p`` — Lambert-W lower branch."""
        self._check_price(price)
        return float(-special.lambertw(-price, k=-1).real)

    def optimal_capacity_best_effort(self, price: float) -> float:
        """``C_B(p) = h(p) / beta``."""
        return self.h(price) / self._beta

    def optimal_capacity_reservation(self, price: float) -> float:
        """``C_R(p) = -ln(p) / beta`` (from ``V_R' = e^{-beta C} = p``)."""
        self._check_price_reservation(price)
        return -math.log(price) / self._beta

    def welfare_best_effort(self, price: float) -> float:
        """``W_B(p) = (1/beta)(1 - p - p/h - p h)``."""
        h = self.h(price)
        return (1.0 - price - price / h - price * h) / self._beta

    def welfare_reservation(self, price: float) -> float:
        """``W_R(p) = (1/beta)(1 - p + p ln p)``."""
        self._check_price_reservation(price)
        return (1.0 - price + price * math.log(price)) / self._beta

    def equalizing_ratio(self, price: float) -> float:
        """``gamma(p)``: root of ``g(1 - ln g - ln p) = 1 + 1/h + h``."""
        h = self.h(price)
        rhs = 1.0 + 1.0 / h + h
        log_p = math.log(price)

        def residual(gamma: float) -> float:
            return gamma * (1.0 - math.log(gamma) - log_p) - rhs

        return find_root(
            residual,
            1.0,
            4.0,
            expand=True,
            upper_limit=1.0 / price,
            label=f"rigid-exponential gamma(p={price})",
        )

    def equalizing_ratio_asymptotic(self, price: float) -> float:
        """Small-p approximation ``1 + ln(ln(1/p)) / ln(1/p)``.

        The paper notes gamma converges to one "as
        ``gamma ~ 1 + (...)``" with the convergence rate set by the
        iterated logarithm; this is the leading form (tests check it
        tracks :meth:`equalizing_ratio` as ``p -> 0``).
        """
        self._check_price(price)
        log_inv = -math.log(price)
        if log_inv <= 1.0:
            raise ModelError("asymptotic gamma needs p < 1/e")
        return 1.0 + math.log(log_inv) / log_inv

    # --------------------------- guards -----------------------------

    @staticmethod
    def _check_capacity(capacity: float) -> None:
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")

    @staticmethod
    def _check_price(price: float) -> None:
        # the best-effort FOC h e^{-h} = p has no root beyond the peak 1/e
        if not 0.0 < price <= PRICE_CEILING:
            raise ModelError(
                f"price must be in (0, 1/e] for the rigid-exponential "
                f"best-effort welfare closed forms, got {price!r}"
            )

    @staticmethod
    def _check_price_reservation(price: float) -> None:
        # the reservation FOC e^{-beta C} = p only needs p <= 1
        if not 0.0 < price <= 1.0:
            raise ModelError(
                f"price must be in (0, 1] for the rigid-exponential "
                f"reservation welfare closed forms, got {price!r}"
            )
