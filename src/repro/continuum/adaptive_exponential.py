"""Closed forms: adaptive (ramp) applications, exponential load.

The continuum adaptive utility is the ramp with dead zone ``a``
(:class:`~repro.utility.piecewise.PiecewiseLinearUtility`).  Since
``k_max(C) = C`` for every ``a > 0``, the reservation side coincides
with the rigid case; only best-effort changes.  Splitting the census
at the flow counts where the ramp kinks (``k = C`` and ``k = C/a``):

    V_B(C) = (1/beta)(1 - e^{-bC}(1+bC))
           + [ C (e^{-bC} - e^{-bC/a})
               - (a/b)(e^{-bC}(1+bC) - e^{-bC/a}(1+bC/a)) ] / (1-a)

with ``b = beta``.  The key asymptotic (paper Section 3.3): the
bandwidth gap no longer grows — ``Delta(C) -> -ln(1-a)/beta``, a
constant.  Adaptivity changes the exponential-load story qualitatively.
"""

from __future__ import annotations

import math

import numpy as np

from repro.continuum.rigid_exponential import RigidExponentialContinuum
from repro.errors import ModelError
from repro.numerics.batch import invert_monotone_batch
from repro.numerics.solvers import find_root, invert_monotone


class AdaptiveExponentialContinuum:
    """Closed forms for the ramp(a) x exponential-load case."""

    def __init__(self, a: float, beta: float = 1.0):
        if not 0.0 <= a < 1.0:
            raise ValueError(f"adaptivity parameter a must be in [0, 1), got {a!r}")
        if beta <= 0.0:
            raise ValueError(f"rate beta must be > 0, got {beta!r}")
        self._a = float(a)
        self._beta = float(beta)
        self._rigid = RigidExponentialContinuum(beta)

    @property
    def a(self) -> float:
        """Ramp dead-zone width (0 = maximally adaptive)."""
        return self._a

    @property
    def beta(self) -> float:
        """Census decay rate."""
        return self._beta

    @property
    def mean_load(self) -> float:
        """``k_bar = 1/beta``."""
        return 1.0 / self._beta

    # -------------------------- utilities ---------------------------

    def total_reservation(self, capacity: float) -> float:
        """Identical to the rigid case (``k_max(C) = C``)."""
        return self._rigid.total_reservation(capacity)

    def reservation(self, capacity: float) -> float:
        """Normalised ``R(C) = 1 - e^{-beta C}``."""
        return self._rigid.reservation(capacity)

    def _exp_cap(self, capacity: float) -> float:
        """``e^{-beta C / a}`` with the ``a = 0`` limit handled."""
        if self._a == 0.0:
            return 0.0
        return math.exp(-self._beta * capacity / self._a)

    def total_best_effort(self, capacity: float) -> float:
        """Closed-form ``V_B(C)`` (verified against quadrature in tests)."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        a, beta = self._a, self._beta
        bc = beta * capacity
        e1 = math.exp(-bc)
        e2 = self._exp_cap(capacity)
        rigid_part = (1.0 - e1 * (1.0 + bc)) / beta
        if a == 0.0:
            ramp_part = capacity * e1
        else:
            bca = bc / a
            ramp_part = (
                capacity * (e1 - e2)
                - (a / beta) * (e1 * (1.0 + bc) - e2 * (1.0 + bca))
            ) / (1.0 - a)
        return rigid_part + ramp_part

    def best_effort(self, capacity: float) -> float:
        """Normalised ``B(C)``."""
        return self.total_best_effort(capacity) * self._beta

    def performance_gap(self, capacity: float) -> float:
        """``delta(C) = R(C) - B(C)``."""
        return max(0.0, self.reservation(capacity) - self.best_effort(capacity))

    def bandwidth_gap(self, capacity: float, *, gap_floor: float = 1e-13) -> float:
        """``Delta(C)`` solving ``B(C + Delta) = R(C)`` (closed-form B)."""
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=1e12,
            label=f"adaptive-exponential Delta(C={capacity})",
        )
        return max(0.0, solution - capacity)

    # ------------------------- batch forms --------------------------

    def best_effort_batch(self, capacities) -> np.ndarray:
        """Normalised ``B`` over a capacity grid (closed form)."""
        caps = self._rigid._grid(capacities)
        a, beta = self._a, self._beta
        bc = beta * caps
        e1 = np.exp(-bc)
        rigid_part = (1.0 - e1 * (1.0 + bc)) / beta
        if a == 0.0:
            ramp_part = caps * e1
        else:
            bca = bc / a
            e2 = np.exp(-bca)
            ramp_part = (
                caps * (e1 - e2)
                - (a / beta) * (e1 * (1.0 + bc) - e2 * (1.0 + bca))
            ) / (1.0 - a)
        totals = np.where(caps > 0.0, rigid_part + ramp_part, 0.0)
        return totals * beta

    def reservation_batch(self, capacities) -> np.ndarray:
        """Normalised ``R`` over a capacity grid — rigid closed form."""
        return self._rigid.reservation_batch(capacities)

    def performance_gap_batch(self, capacities) -> np.ndarray:
        """``delta`` over a capacity grid (clipped at zero)."""
        return np.maximum(
            0.0,
            self.reservation_batch(capacities)
            - self.best_effort_batch(capacities),
        )

    def bandwidth_gap_batch(
        self, capacities, *, gap_floor: float = 1e-13
    ) -> np.ndarray:
        """``Delta`` over a capacity grid via one vectorised inversion."""
        caps = self._rigid._grid(capacities)
        gaps = np.zeros(caps.size)
        targets = self.reservation_batch(caps)
        idx = np.flatnonzero(
            (targets - self.best_effort_batch(caps)) > gap_floor
        )
        if idx.size == 0:
            return gaps
        sub = caps[idx]
        result = invert_monotone_batch(
            self.best_effort_batch,
            targets[idx],
            sub,
            sub + np.maximum(1.0, sub),
            increasing=True,
            upper_limit=1e12,
            label="adaptive-exponential Delta batch",
        )
        ok = result.converged & np.isfinite(result.roots)
        gaps[idx[ok]] = np.maximum(0.0, result.roots[ok] - sub[ok])
        for j in np.flatnonzero(~ok):
            gaps[idx[j]] = self.bandwidth_gap(
                float(sub[j]), gap_floor=gap_floor
            )
        return gaps

    def bandwidth_gap_limit(self) -> float:
        """``lim_{C->inf} Delta(C) = -ln(1-a)/beta`` (paper Section 3.3)."""
        if self._a == 0.0:
            return 0.0
        return -math.log(1.0 - self._a) / self._beta

    # --------------------------- welfare ----------------------------

    def marginal_best_effort(self, capacity: float) -> float:
        """``V_B'(C) = (e^{-beta C} - e^{-beta C/a}) / (1-a)``."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        e1 = math.exp(-self._beta * capacity)
        if self._a == 0.0:
            # pi' = 1 on (0, 1), so V_B'(C) = P(K > C) = e^{-beta C}
            return e1
        return (e1 - self._exp_cap(capacity)) / (1.0 - self._a)

    def _marginal_peak_capacity(self) -> float:
        """Where ``V_B'`` peaks: ``C* = -a ln a / (beta (1-a))``."""
        a = self._a
        if a == 0.0:
            return 0.0
        return -a * math.log(a) / (self._beta * (1.0 - a))

    def optimal_capacity_best_effort(self, price: float) -> float:
        """Largest root of ``V_B'(C) = p``."""
        if price <= 0.0:
            raise ValueError(f"price must be > 0, got {price!r}")
        peak_c = self._marginal_peak_capacity()
        if self.marginal_best_effort(peak_c) <= price:
            raise ModelError(
                f"price {price} exceeds the peak marginal utility; the "
                "welfare optimum is zero capacity"
            )
        return find_root(
            lambda c: self.marginal_best_effort(c) - price,
            peak_c,
            peak_c + 2.0 / self._beta,
            expand=True,
            upper_limit=1e12,
            label=f"adaptive-exponential C_B(p={price})",
        )

    def optimal_capacity_reservation(self, price: float) -> float:
        """Same as rigid: ``C_R(p) = -ln(p)/beta``."""
        return self._rigid.optimal_capacity_reservation(price)

    def welfare_best_effort(self, price: float) -> float:
        """``W_B(p) = V_B(C_B(p)) - p C_B(p)``."""
        c = self.optimal_capacity_best_effort(price)
        return self.total_best_effort(c) - price * c

    def welfare_reservation(self, price: float) -> float:
        """Same as rigid: ``W_R(p) = (1/beta)(1 - p + p ln p)``."""
        return self._rigid.welfare_reservation(price)

    def equalizing_ratio(self, price: float) -> float:
        """``gamma(p)`` with ``W_R(gamma p) = W_B(p)``, solved exactly."""
        target = self.welfare_best_effort(price)
        p_hat = invert_monotone(
            self.welfare_reservation,
            target,
            price,
            2.0 * price,
            increasing=False,
            upper_limit=1.0,
            label=f"adaptive-exponential gamma(p={price})",
        )
        return p_hat / price
