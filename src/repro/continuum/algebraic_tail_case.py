"""Closed forms: power-law-satiation utility under algebraic load.

Section 3.3's last analytical wrinkle: the adaptive utility of Eq. 2
approaches 1 *exponentially*, but one can also consider utilities that
approach it *algebraically*, ``pi(b) = 1 - b^-tau`` above the unit
threshold.  Under the Pareto census this interacts with the load power
``z`` in a rich way.  With ``m = tau + 2 - z`` (assumed nonzero; the
resonant case is excluded):

    V_B(C) = k_bar - a_B C^{2-z} - b C^{-tau}
    V_R(C) = k_bar - a_R C^{2-z} - b C^{-tau}

with the *same* ``b = (z-1)/m`` in both (so the ``C^-tau`` parts cancel
from the architecture gap) and ``a_B > a_R``.  Consequently:

- ``tau > z - 2``: the ``C^{2-z}`` terms dominate both disutilities and
  ``Delta(C) ~ C`` (linear, as in the rigid/ramp cases);
- ``tau < z - 2``: the shared ``C^-tau`` term dominates and the gap is
  subleading, giving ``Delta(C) ~ C^{tau + 3 - z}`` — increasing but
  sublinear for ``z - 2 > tau > z - 3``, and *decreasing* for
  ``tau < z - 3``.

This module provides the closed forms, the exact gap solver, and the
asymptotic exponent — reproducing the paper's "we have observed similar
behavior in our calculations" paragraph.
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.numerics.solvers import invert_monotone
from repro.utility.algebraic_tail import AlgebraicTailUtility


class AlgebraicTailAlgebraicContinuum:
    """``pi(b) = 1 - b^-tau`` (b > 1) under the Pareto(z) census."""

    def __init__(self, z: float, tau: float):
        if z <= 2.0:
            raise ValueError(f"power z must be > 2, got {z!r}")
        if tau <= 0.0:
            raise ValueError(f"tau must be > 0, got {tau!r}")
        if abs(tau + 2.0 - z) < 1e-9:
            raise ModelError(
                f"tau = z - 2 is the resonant (logarithmic) case; perturb "
                f"tau or z slightly (got z={z!r}, tau={tau!r})"
            )
        self._z = float(z)
        self._tau = float(tau)
        self._utility = AlgebraicTailUtility(tau)
        # b* = (tau+1)^{1/tau}: per-flow bandwidth at the fixed-load optimum
        self._b_star = (tau + 1.0) ** (1.0 / tau)

    @property
    def z(self) -> float:
        """Census tail power."""
        return self._z

    @property
    def tau(self) -> float:
        """Utility satiation power."""
        return self._tau

    @property
    def mean_load(self) -> float:
        """``k_bar = (z-1)/(z-2)``."""
        return (self._z - 1.0) / (self._z - 2.0)

    def k_max(self, capacity: float) -> float:
        """``k_max(C) = C (tau+1)^{-1/tau}`` — strictly below C."""
        return capacity / self._b_star

    # ----------------------- closed-form totals -----------------------

    def total_best_effort(self, capacity: float) -> float:
        """``V_B(C)`` for ``C >= 1`` (flows above share 1 gain utility)."""
        self._check_capacity(capacity)
        z, tau = self._z, self._tau
        m = tau + 2.0 - z
        kbar = self.mean_load
        # int_1^C (z-1)k^{1-z}(1 - (C/k)^-tau) dk
        piece_full = kbar * (1.0 - capacity ** (2.0 - z))
        piece_tail = (
            (z - 1.0)
            / m
            * (capacity ** (2.0 - z) - capacity ** (-tau))
        )
        return piece_full - piece_tail

    def total_reservation(self, capacity: float) -> float:
        """``V_R(C)`` with the admission threshold at ``k_max(C)``."""
        self._check_capacity(capacity)
        z, tau = self._z, self._tau
        m = tau + 2.0 - z
        kbar = self.mean_load
        kmax = self.k_max(capacity)
        if kmax < 1.0:
            raise ModelError(
                f"closed forms need k_max >= 1 (C >= {self._b_star:.4f}), got C={capacity!r}"
            )
        admitted_full = kbar * (1.0 - kmax ** (2.0 - z))
        # C^-tau * kmax^m = C^{2-z} * b_star^-m
        admitted_tail = (
            (z - 1.0)
            / m
            * (capacity ** (2.0 - z) * self._b_star ** (-m) - capacity ** (-tau))
        )
        # overload term: kmax * pi(b*) * sf(kmax)
        overload = kmax ** (2.0 - z) * self._utility.value(self._b_star)
        return admitted_full - admitted_tail + overload

    def best_effort(self, capacity: float) -> float:
        """Normalised ``B(C)``."""
        return self.total_best_effort(capacity) / self.mean_load

    def reservation(self, capacity: float) -> float:
        """Normalised ``R(C)``."""
        return self.total_reservation(capacity) / self.mean_load

    def performance_gap(self, capacity: float) -> float:
        """``delta(C)`` (clipped at zero)."""
        return max(0.0, self.reservation(capacity) - self.best_effort(capacity))

    def bandwidth_gap(self, capacity: float, *, gap_floor: float = 1e-13) -> float:
        """``Delta(C)`` solving ``B(C + Delta) = R(C)`` exactly."""
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=1e12,
            label=f"algebraic-tail Delta(C={capacity})",
        )
        return max(0.0, solution - capacity)

    # -------------------------- asymptotics ---------------------------

    def gap_growth_exponent(self) -> float:
        """The paper's trichotomy: ``Delta(C) ~ C^e`` with this ``e``.

        ``e = 1`` for ``tau > z-2``; ``e = tau + 3 - z`` otherwise —
        positive but sublinear for ``z-3 < tau < z-2``, negative
        (a *shrinking* gap) for ``tau < z-3``.
        """
        if self._tau > self._z - 2.0:
            return 1.0
        return self._tau + 3.0 - self._z

    def measured_growth_exponent(
        self, *, c_lo: float = 200.0, c_hi: float = 2000.0
    ) -> float:
        """Log-log slope of the exact ``Delta(C)`` between two capacities."""
        d_lo = self.bandwidth_gap(c_lo)
        d_hi = self.bandwidth_gap(c_hi)
        if d_lo <= 0.0 or d_hi <= 0.0:
            raise ModelError("gap vanished inside the measurement window")
        return math.log(d_hi / d_lo) / math.log(c_hi / c_lo)

    # ---------------------------- guards ------------------------------

    def _check_capacity(self, capacity: float) -> None:
        if capacity < 1.0:
            raise ModelError(
                f"the algebraic-tail closed forms hold for C >= 1, got {capacity!r}"
            )
