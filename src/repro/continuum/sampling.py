"""Numeric continuum sampling model (Section 5.1, continuum version).

The continuum counterpart of :class:`repro.models.sampling.SamplingModel`:
a tagged flow draws ``S`` iid censuses from the size-biased density
``q(k) = k P(k) / k_bar`` (cdf ``F``) and is scored at the maximum.

    B_S(C) = int pi(C/k) d[F(k)^S]

    R_S(C) = int_{k < kmax} pi(C/k) d[F(k)^S]
           + pi(C/kmax) [F(kmax) - F(kmax)^S]           (hit the cap)
           + pi(C/kmax) kmax P(K > kmax) / k_bar        (overload-admitted)

Exists mainly to certify the sampling asymptotics
(:func:`repro.continuum.asymptotics.sampling_rigid_ratio` and friends)
by direct quadrature, independently of the discrete machinery.
"""

from __future__ import annotations

import math

from repro.loads.continuum import ContinuumLoad
from repro.numerics.quadrature import integrate
from repro.numerics.solvers import invert_monotone
from repro.utility.base import UtilityFunction


class ContinuumSamplingModel:
    """Worst-of-S-samples model over a continuum census.

    ``k_max(C) = C`` is assumed (true for the rigid and ramp utilities
    this model exists to study); pass ``k_max_override`` otherwise.
    """

    def __init__(
        self,
        load: ContinuumLoad,
        utility: UtilityFunction,
        samples: int,
        *,
        k_max_override=None,
        tol: float = 1e-11,
    ):
        if samples < 1 or samples != int(samples):
            raise ValueError(f"samples must be a positive integer, got {samples!r}")
        self._load = load
        self._utility = utility
        self._samples = int(samples)
        self._tol = float(tol)
        self._kbar = load.mean
        self._override = k_max_override

    @property
    def samples(self) -> int:
        """Number of census samples per flow."""
        return self._samples

    def k_max(self, capacity: float) -> float:
        """Admission threshold (defaults to the ``k_max(C) = C`` cases)."""
        if self._override is not None:
            return float(self._override(capacity))
        return capacity

    # ------------------------------------------------------------------

    def _biased_cdf(self, k: float) -> float:
        """``F(k)`` of the size-biased census."""
        if k <= self._load.support_min:
            return 0.0
        return self._load.partial_mean(k) / self._kbar

    def _max_density(self, k: float) -> float:
        """Density of the max of S draws: ``S F^{S-1} q``."""
        if k <= self._load.support_min:
            return 0.0
        q = k * self._load.pdf(k) / self._kbar
        if self._samples == 1:
            return q
        return self._samples * self._biased_cdf(k) ** (self._samples - 1) * q

    def _weighted_integral(self, capacity: float, lo: float, hi: float) -> float:
        """``int_lo^hi pi(C/k) d[F^S]`` with a 1/u tail substitution."""

        def f(k: float) -> float:
            return self._max_density(k) * self._utility.value(capacity / k)

        breaks = sorted(
            capacity / b
            for b in self._utility.breakpoints()
            if b > 0.0 and lo < capacity / b < hi
        )
        if not math.isinf(hi):
            return integrate(
                f, lo, hi, points=breaks, tol=self._tol, label="sampling integral"
            )
        cut = max(lo, 1.0, self._load.support_min + 1.0)
        head = 0.0
        if lo < cut:
            head = integrate(
                f,
                lo,
                cut,
                points=[x for x in breaks if x < cut],
                tol=self._tol,
                label="sampling integral head",
            )

        def g(u: float) -> float:
            if u <= 0.0:
                return 0.0
            k = cut / u
            return f(k) * cut / (u * u)

        u_breaks = sorted(cut / x for x in breaks if x > cut)
        tail = integrate(
            g, 0.0, 1.0, points=u_breaks, tol=self._tol, label="sampling integral tail"
        )
        return head + tail

    # ------------------------------------------------------------------

    def best_effort(self, capacity: float) -> float:
        """``B_S(C)`` — per-flow expected utility at the worst sample."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        return self._weighted_integral(capacity, self._load.support_min, math.inf)

    def reservation(self, capacity: float) -> float:
        """``R_S(C)`` — admit on first sample, cap subsequent censuses."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        kmax = self.k_max(capacity)
        if kmax <= self._load.support_min:
            return 0.0
        below = self._weighted_integral(capacity, self._load.support_min, kmax)
        f_cap = self._biased_cdf(kmax)
        at_cap = f_cap - f_cap**self._samples
        over = kmax * self._load.sf(kmax) / self._kbar
        return below + (at_cap + over) * self._utility.value(capacity / kmax)

    def performance_gap(self, capacity: float) -> float:
        """``delta_S(C)`` (clipped at zero)."""
        return max(0.0, self.reservation(capacity) - self.best_effort(capacity))

    def bandwidth_gap(self, capacity: float, *, gap_floor: float = 1e-12) -> float:
        """``Delta_S(C)`` solving ``B_S(C + Delta) = R_S(C)``."""
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=1e9,
            label=f"continuum sampling gap at C={capacity}",
        )
        return max(0.0, solution - capacity)
