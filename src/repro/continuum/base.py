"""Generic numeric engine for the continuum model (Section 3.2).

The continuum model replaces the discrete census by a density; the
architecture totals become integrals:

    V_B(C) = int_0^inf  P(k) k pi(C/k) dk
    V_R(C) = int_0^kmax P(k) k pi(C/k) dk + kmax pi(C/kmax) P(K > kmax)

This engine evaluates them by adaptive quadrature for *any* continuum
load and utility, serving two purposes: it extends the closed-form
modules to cases the paper did not work out by hand, and — run against
those closed forms in the test suite — it certifies every formula we
transcribed or re-derived from the paper.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro import obs
from repro.errors import ModelError
from repro.loads.continuum import ContinuumLoad
from repro.numerics.optimize import maximize_scalar
from repro.numerics.quadrature import integrate
from repro.numerics.solvers import invert_monotone
from repro.utility.base import UtilityFunction

#: Normalised gaps below this are treated as zero by the gap solver.
GAP_FLOOR = 1e-12


class ContinuumModel:
    """Numeric continuum variable-load model for any (load, utility).

    Parameters
    ----------
    load:
        A continuum census density.
    utility:
        Application utility ``pi(b)``.
    k_max_override:
        Optional function ``C -> kmax`` replacing the numeric
        fixed-load optimisation (the ramp and rigid utilities know
        ``kmax(C) = C`` exactly; supplying it avoids optimiser noise in
        delicate asymptotic studies).
    """

    def __init__(
        self,
        load: ContinuumLoad,
        utility: UtilityFunction,
        *,
        k_max_override=None,
        tol: float = 1e-11,
    ):
        self._load = load
        self._utility = utility
        self._override = k_max_override
        self._tol = float(tol)
        self._kbar = load.mean

    @property
    def load(self) -> ContinuumLoad:
        """The census density."""
        return self._load

    @property
    def utility(self) -> UtilityFunction:
        """The application utility."""
        return self._utility

    @property
    def mean_load(self) -> float:
        """``k_bar`` of the census density."""
        return self._kbar

    def k_max(self, capacity: float) -> float:
        """Continuum admission threshold ``argmax_k k pi(C/k)``."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        if self._override is not None:
            return float(self._override(capacity))
        hint = getattr(self._utility, "k_max", None)
        if hint is not None:
            return float(hint(capacity))
        if obs.enabled():
            obs.counter("continuum.k_max.searches").inc()
        k_star, value = maximize_scalar(
            lambda k: self._utility.fixed_load_total(k, capacity),
            1e-9,
            64.0 * capacity + 64.0,
            grid=512,
            label=f"continuum k_max(C={capacity})",
        )
        edge = self._utility.fixed_load_total(64.0 * capacity + 64.0, capacity)
        if edge >= value:
            raise ModelError(
                f"continuum k_max(C={capacity}) has no interior optimum; the "
                "utility appears elastic — supply k_max_override"
            )
        return k_star

    # ------------------------------------------------------------------

    def _integrand_points(self, capacity: float, lo: float, hi: float):
        """Kink locations of ``k -> pi(C/k)`` inside ``(lo, hi)``."""
        pts = []
        for b in self._utility.breakpoints():
            if b > 0.0:
                x = capacity / b
                if lo < x < hi:
                    pts.append(x)
        if lo < self._load.support_min < hi:
            pts.append(self._load.support_min)
        return sorted(pts)

    def _weighted_utility_integral(self, capacity: float, lo: float, hi: float) -> float:
        """``int_lo^hi P(k) k pi(C/k) dk`` with kink-aware quadrature."""

        def f(k: float) -> float:
            if k <= 0.0:
                return 0.0
            return self._load.pdf(k) * k * self._utility.value(capacity / k)

        if math.isinf(hi):
            # substitute k = cut/u so the tail integral is over (0, 1]
            cut = max(lo, 1.0)
            head = 0.0
            if lo < cut:
                head = integrate(
                    f,
                    lo,
                    cut,
                    points=self._integrand_points(capacity, lo, cut),
                    tol=self._tol,
                    label=f"continuum V integral head (C={capacity})",
                )

            def g(u: float) -> float:
                if u <= 0.0:
                    return 0.0
                k = cut / u
                return f(k) * cut / (u * u)

            u_points = sorted(
                cut / x
                for x in self._integrand_points(capacity, cut, math.inf)
                if x > cut
            )
            tail = integrate(
                g,
                0.0,
                1.0,
                points=u_points,
                tol=self._tol,
                label=f"continuum V integral tail (C={capacity})",
            )
            return head + tail
        return integrate(
            f,
            lo,
            hi,
            points=self._integrand_points(capacity, lo, hi),
            tol=self._tol,
            label=f"continuum V integral (C={capacity})",
        )

    # ------------------------------------------------------------------

    def total_best_effort(self, capacity: float) -> float:
        """``V_B(C)`` by quadrature."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        return self._weighted_utility_integral(capacity, 0.0, math.inf)

    def total_reservation(self, capacity: float) -> float:
        """``V_R(C)`` by quadrature plus the capped-overload term."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if capacity == 0.0:
            return 0.0
        kmax = self.k_max(capacity)
        if kmax <= 0.0:
            return 0.0
        admitted = self._weighted_utility_integral(capacity, 0.0, kmax)
        overload = kmax * self._utility.value(capacity / kmax) * self._load.sf(kmax)
        return admitted + overload

    def best_effort(self, capacity: float) -> float:
        """Normalised ``B(C)``."""
        return self.total_best_effort(capacity) / self._kbar

    def reservation(self, capacity: float) -> float:
        """Normalised ``R(C)``."""
        return self.total_reservation(capacity) / self._kbar

    def performance_gap(self, capacity: float) -> float:
        """``delta(C) = R(C) - B(C)`` (clipped at zero)."""
        return max(0.0, self.reservation(capacity) - self.best_effort(capacity))

    # ------------------------------------------------------------------
    # batch evaluation
    # ------------------------------------------------------------------

    def _scalar_batch(self, fn, capacities) -> np.ndarray:
        """Per-point evaluation of ``fn`` over a grid, metered as
        scalar fallbacks — adaptive quadrature adapts its panels to
        each capacity, so there is no shared vector kernel here."""
        caps = np.asarray(capacities, dtype=float).ravel()
        if obs.enabled():
            obs.counter("batch.fallback_scalar").inc(int(caps.size))
        return np.array([fn(float(c)) for c in caps])

    def best_effort_batch(self, capacities) -> np.ndarray:
        """Normalised ``B`` over a capacity grid (per-point quadrature)."""
        return self._scalar_batch(self.best_effort, capacities)

    def reservation_batch(self, capacities) -> np.ndarray:
        """Normalised ``R`` over a capacity grid (per-point quadrature)."""
        return self._scalar_batch(self.reservation, capacities)

    def performance_gap_batch(self, capacities) -> np.ndarray:
        """``delta`` over a capacity grid (per-point quadrature)."""
        return self._scalar_batch(self.performance_gap, capacities)

    def bandwidth_gap_batch(self, capacities) -> np.ndarray:
        """``Delta`` over a capacity grid (per-point inversion)."""
        return self._scalar_batch(self.bandwidth_gap, capacities)

    def bandwidth_gap(
        self,
        capacity: float,
        *,
        gap_floor: float = GAP_FLOOR,
        upper_limit: float = 1e9,
    ) -> float:
        """``Delta(C)`` solving ``B(C + Delta) = R(C)``."""
        target = self.reservation(capacity)
        if target - self.best_effort(capacity) <= gap_floor:
            return 0.0
        solution = invert_monotone(
            self.best_effort,
            target,
            capacity,
            capacity + max(1.0, capacity),
            increasing=True,
            upper_limit=upper_limit,
            label=f"continuum bandwidth gap at C={capacity}",
        )
        return max(0.0, solution - capacity)
