"""Continuum-model closed forms and asymptotics (Sections 3.2-5).

- :class:`ContinuumModel` — generic quadrature engine for any
  (continuum load, utility) pair; certifies the closed forms.
- :class:`RigidExponentialContinuum`, :class:`RigidAlgebraicContinuum`,
  :class:`AdaptiveExponentialContinuum`,
  :class:`AdaptiveAlgebraicContinuum` — the four worked cases.
- :class:`AlgebraicTailAlgebraicContinuum` — the power-law-satiation
  utility under the Pareto census (Section 3.3's Delta-growth
  trichotomy in ``tau`` vs ``z``).
- :class:`ContinuumSamplingModel` — continuum Section 5.1 numerics.
- :mod:`repro.continuum.asymptotics` — the limit laws and the
  conjectured ``e`` / ``e - 1`` bounds (plus how the Section 5
  extensions break them).
"""

from repro.continuum.adaptive_algebraic import (
    AdaptiveAlgebraicContinuum,
    best_effort_loss_coefficient,
    gap_ratio_limit,
)
from repro.continuum.adaptive_exponential import AdaptiveExponentialContinuum
from repro.continuum.algebraic_tail_case import AlgebraicTailAlgebraicContinuum
from repro.continuum.asymptotics import (
    DELTA_OVER_C_BOUND,
    GAMMA_BOUND,
    adaptive_algebraic_ratio,
    adaptive_algebraic_ratio_limit,
    retrying_adaptive_ratio,
    retrying_rigid_ratio,
    rigid_algebraic_ratio,
    sampling_adaptive_ratio,
    sampling_exponential_gap,
    sampling_rigid_ratio,
)
from repro.continuum.base import ContinuumModel
from repro.continuum.rigid_algebraic import RigidAlgebraicContinuum
from repro.continuum.rigid_exponential import RigidExponentialContinuum
from repro.continuum.sampling import ContinuumSamplingModel

__all__ = [
    "DELTA_OVER_C_BOUND",
    "GAMMA_BOUND",
    "AdaptiveAlgebraicContinuum",
    "AdaptiveExponentialContinuum",
    "AlgebraicTailAlgebraicContinuum",
    "ContinuumModel",
    "ContinuumSamplingModel",
    "RigidAlgebraicContinuum",
    "RigidExponentialContinuum",
    "adaptive_algebraic_ratio",
    "adaptive_algebraic_ratio_limit",
    "best_effort_loss_coefficient",
    "gap_ratio_limit",
    "retrying_adaptive_ratio",
    "retrying_rigid_ratio",
    "rigid_algebraic_ratio",
    "sampling_adaptive_ratio",
    "sampling_exponential_gap",
    "sampling_rigid_ratio",
]
