"""Census inference: from measurements to an architecture verdict.

The paper closes by saying the best-effort-vs-reservations answer
"unambiguously point[s] to the need to more fully understand the load
distributions future networks are likely to face".  This subpackage is
that understanding as code:

- :func:`fit_poisson` / :func:`fit_geometric` / :func:`fit_algebraic`
  — per-family maximum likelihood,
- :func:`fit_all` — AIC model selection, :func:`chi_square_gof`,
- :func:`hill_estimate` — nonparametric tail-index (the critical ``z``),
- :func:`recommend_architecture` — the full measure -> identify ->
  compare pipeline, ending in the Section 4/6 verdict.
"""

from repro.inference.bootstrap import BootstrapVerdict, bootstrap_verdict
from repro.inference.fitters import (
    FitResult,
    fit_algebraic,
    fit_geometric,
    fit_poisson,
)
from repro.inference.recommend import Recommendation, recommend_architecture
from repro.inference.selection import SelectionResult, chi_square_gof, fit_all
from repro.inference.tail import TailEstimate, hill_estimate

__all__ = [
    "BootstrapVerdict",
    "FitResult",
    "bootstrap_verdict",
    "Recommendation",
    "SelectionResult",
    "TailEstimate",
    "chi_square_gof",
    "fit_algebraic",
    "fit_all",
    "fit_geometric",
    "fit_poisson",
    "hill_estimate",
    "recommend_architecture",
]
