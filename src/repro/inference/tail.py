"""Tail-index estimation: is the census heavy-tailed, and how heavy?

The paper's decisive parameter is the algebraic power ``z`` — gaps and
price ratios all hinge on it, and the worst cases live at ``z -> 2+``.
The Hill estimator gives a standard nonparametric estimate of the tail
index from the largest order statistics, independent of any parametric
fit, so it cross-checks the MLE and flags heavy tails even when the
body of the distribution looks benign.

For a survival function ``P(K > k) ~ k^{-(z-1)}`` (our census has pmf
``~ k^{-z}``), the Hill estimator of the *survival* exponent
``alpha = z - 1`` over the top ``m`` order statistics
``k_(1) >= ... >= k_(m)`` is

    alpha_hat = m / sum_{i=1}^{m} ln(k_(i) / k_(m+1))
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TailEstimate:
    """Hill-estimator output in census (pmf power) units."""

    z_hat: float
    alpha_hat: float
    order_statistics_used: int

    @property
    def heavy_tailed(self) -> bool:
        """True when the estimated pmf power is below 4.

        ``z < 4`` means the census variance-to-mean blow-up that drives
        the paper's algebraic-load results is material; ``z`` large
        means the tail is effectively light.
        """
        return self.z_hat < 4.0


def hill_estimate(samples, *, fraction: float = 0.1) -> TailEstimate:
    """Hill tail-index estimate from the top ``fraction`` of samples.

    Parameters
    ----------
    samples:
        Nonnegative integer census observations.
    fraction:
        Portion of the sample (by count) treated as "the tail";
        the classic bias/variance dial.  At least 5 and at most
        ``n - 1`` order statistics are used.

    Returns
    -------
    TailEstimate
        With ``z_hat = alpha_hat + 1`` mapped back to pmf-power units.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size < 10:
        raise ValueError(f"need at least 10 samples for a tail estimate, got {arr.size}")
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction!r}")
    positive = arr[arr > 0]
    if positive.size < 10:
        raise ValueError("need at least 10 positive samples for a tail estimate")

    ordered = np.sort(positive)[::-1]
    m = int(np.clip(round(fraction * positive.size), 5, positive.size - 1))
    top = ordered[:m]
    threshold = ordered[m]
    ratios = np.log(top / threshold)
    mean_ratio = float(ratios.mean())
    if mean_ratio <= 0.0:
        # the top-m values are all equal: no measurable tail decay, so
        # the tail is as light as the estimator can express
        return TailEstimate(z_hat=np.inf, alpha_hat=np.inf, order_statistics_used=m)
    alpha = 1.0 / mean_ratio
    return TailEstimate(z_hat=alpha + 1.0, alpha_hat=alpha, order_statistics_used=m)
