"""From census measurements to an architecture recommendation.

The end-to-end pipeline the paper's discussion section implies: measure
the offered load, identify its distribution (body fit + tail check),
run the comparative analysis on the identified law, and report which
architecture the numbers favour at the operator's bandwidth price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.inference.selection import SelectionResult, fit_all
from repro.inference.tail import TailEstimate, hill_estimate
from repro.models import ArchitectureComparison
from repro.utility.base import UtilityFunction


@dataclass(frozen=True)
class Recommendation:
    """The pipeline's full output for one census sample."""

    selection: SelectionResult
    tail: Optional[TailEstimate]
    comparison: ArchitectureComparison
    price: float
    complexity_budget: float
    bandwidth_gap_trend: str

    @property
    def load_family(self) -> str:
        """Name of the identified census family."""
        return self.selection.best_name

    @property
    def reservations_recommended(self) -> bool:
        """The Section 4/6 verdict at this price.

        Reservations are recommended when either the welfare analysis
        leaves a material complexity budget (> 2% extra per-unit cost)
        or the bandwidth gap is still growing at the top of the sweep —
        the regime where no amount of overprovisioning settles it.
        """
        return self.complexity_budget > 0.02 or self.bandwidth_gap_trend == "increasing"

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"identified census family: {self.load_family} "
            f"(mean {self.selection.best.load.mean:.1f})",
        ]
        if self.tail is not None:
            lines.append(
                f"Hill tail estimate: z ~ {self.tail.z_hat:.2f} "
                f"({'heavy' if self.tail.heavy_tailed else 'light'}-tailed)"
            )
        lines.append(
            f"complexity budget at price {self.price}: "
            f"{100.0 * self.complexity_budget:.2f}% extra per-unit cost"
        )
        lines.append(f"bandwidth-gap trend: {self.bandwidth_gap_trend}")
        lines.append(
            "verdict: "
            + (
                "reservation-capable architecture earns its complexity"
                if self.reservations_recommended
                else "best-effort-only with provisioning is sufficient"
            )
        )
        return "\n".join(lines)


def recommend_architecture(
    census_samples,
    utility: UtilityFunction,
    *,
    price: float = 0.05,
    capacity_sweep: Optional[Tuple[float, ...]] = None,
) -> Recommendation:
    """Run the full measure -> identify -> compare pipeline.

    Parameters
    ----------
    census_samples:
        Observed simultaneous-flow counts (nonnegative integers).
    utility:
        The application utility the network serves.
    price:
        Bandwidth price for the welfare verdict.
    capacity_sweep:
        Capacities for the gap-trend check; defaults to
        ``(0.5 .. 8) * fitted mean``.
    """
    selection = fit_all(census_samples)
    arr = np.asarray(census_samples)
    tail: Optional[TailEstimate] = None
    if arr.size >= 10 and np.count_nonzero(arr) >= 10:
        tail = hill_estimate(arr)

    load = selection.best.load
    comparison = ArchitectureComparison(load, utility)
    if capacity_sweep is None:
        mean = load.mean
        capacity_sweep = tuple(
            mean * m for m in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)
        )
    report = comparison.sweep(capacity_sweep)
    budget = comparison.break_even_complexity_cost(price)
    return Recommendation(
        selection=selection,
        tail=tail,
        comparison=comparison,
        price=price,
        complexity_budget=budget,
        bandwidth_gap_trend=report.bandwidth_gap_trend(),
    )
