"""Model selection over the paper's three census families.

Fits all applicable families to the same census sample and ranks them
by information criterion, with a chi-square goodness-of-fit check on
the winner so "least bad" is distinguishable from "actually fits".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from scipy import stats

from repro.errors import CalibrationError
from repro.inference.fitters import (
    FitResult,
    _validate_samples,
    fit_algebraic,
    fit_geometric,
    fit_poisson,
)
from repro.loads.base import LoadDistribution


@dataclass(frozen=True)
class SelectionResult:
    """Ranked family fits for one census sample."""

    fits: Dict[str, FitResult]
    best_name: str

    @property
    def best(self) -> FitResult:
        """The AIC-winning fit."""
        return self.fits[self.best_name]

    def ranking(self) -> Tuple[str, ...]:
        """Family names from best to worst AIC."""
        return tuple(sorted(self.fits, key=lambda name: self.fits[name].aic))


def fit_all(samples) -> SelectionResult:
    """Fit every applicable family and pick the AIC winner.

    The algebraic family needs ``k >= 1`` support; samples containing
    zeros simply exclude it (a census that is ever zero cannot follow
    the paper's algebraic law).
    """
    arr = _validate_samples(samples)
    fits: Dict[str, FitResult] = {}
    fits["poisson"] = fit_poisson(arr)
    fits["exponential"] = fit_geometric(arr)
    if arr.min() >= 1:
        try:
            fits["algebraic"] = fit_algebraic(arr)
        except CalibrationError:
            pass
    best = min(fits, key=lambda name: fits[name].aic)
    return SelectionResult(fits=fits, best_name=best)


def chi_square_gof(
    load: LoadDistribution,
    samples,
    *,
    min_expected: float = 5.0,
) -> Tuple[float, float]:
    """Chi-square goodness-of-fit of a census law to sample counts.

    Bins with expected counts below ``min_expected`` are pooled into
    their neighbours (standard practice), and the tail beyond the
    largest observation is pooled into the final bin.  Returns
    ``(statistic, p_value)`` with the degrees of freedom reduced by one
    for the constrained total.
    """
    arr = _validate_samples(samples)
    n = arr.size
    hi = int(arr.max())
    observed = np.bincount(arr, minlength=hi + 1).astype(float)
    expected = n * np.asarray(
        load.pmf_array(np.arange(hi + 1, dtype=float)), dtype=float
    )
    if load.support_min > 0:
        expected[: load.support_min] = 0.0
    # final bin absorbs the analytic tail mass
    expected[hi] += n * load.sf(hi)

    # pool adjacent bins until every pooled bin has enough mass
    pooled_obs, pooled_exp = [], []
    acc_o = acc_e = 0.0
    for o, e in zip(observed, expected):
        acc_o += o
        acc_e += e
        if acc_e >= min_expected:
            pooled_obs.append(acc_o)
            pooled_exp.append(acc_e)
            acc_o = acc_e = 0.0
    if acc_e > 0.0 and pooled_exp:
        pooled_obs[-1] += acc_o
        pooled_exp[-1] += acc_e
    if len(pooled_exp) < 2:
        raise ValueError("too few usable bins for a chi-square test")

    obs = np.asarray(pooled_obs)
    exp = np.asarray(pooled_exp)
    exp *= obs.sum() / exp.sum()  # renormalise pooled expectations
    statistic = float(np.sum((obs - exp) ** 2 / exp))
    dof = len(obs) - 1
    p_value = float(stats.chi2.sf(statistic, dof))
    return statistic, p_value
