"""Bootstrap confidence for the architecture verdict.

A census sample is noisy; a verdict derived from it inherits that
noise — especially near the decision boundary, and especially for
heavy tails where a handful of extreme observations carry the fit.
:func:`bootstrap_verdict` resamples the census with replacement,
reruns the identify-and-compare pipeline per resample, and reports how
often each side wins, plus percentile intervals for the two numbers
the verdict keys on (the complexity budget and the fitted tail power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.inference.recommend import recommend_architecture
from repro.utility.base import UtilityFunction


@dataclass(frozen=True)
class BootstrapVerdict:
    """Resampling summary of the architecture recommendation."""

    n_resamples: int
    reservation_fraction: float
    budget_interval: Tuple[float, float]
    z_interval: Optional[Tuple[float, float]]

    @property
    def decisive(self) -> bool:
        """True when at least 90% of resamples agree."""
        return (
            self.reservation_fraction >= 0.9 or self.reservation_fraction <= 0.1
        )

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"bootstrap over {self.n_resamples} resamples: "
            f"{100.0 * self.reservation_fraction:.0f}% recommend reservations",
            f"complexity budget 90% interval: "
            f"[{100.0 * self.budget_interval[0]:.2f}%, "
            f"{100.0 * self.budget_interval[1]:.2f}%]",
        ]
        if self.z_interval is not None:
            lines.append(
                f"fitted tail power z 90% interval: "
                f"[{self.z_interval[0]:.2f}, {self.z_interval[1]:.2f}]"
            )
        lines.append(
            "verdict is "
            + ("decisive" if self.decisive else "NOT decisive — measure longer")
        )
        return "\n".join(lines)


def bootstrap_verdict(
    census_samples,
    utility: UtilityFunction,
    *,
    price: float = 0.05,
    n_resamples: int = 20,
    seed: Optional[int] = 0,
    capacity_sweep: Optional[tuple] = None,
) -> BootstrapVerdict:
    """Resample the census and re-run the recommendation pipeline.

    Each bootstrap pipeline run fits all families and sweeps the gap
    trend, so keep ``n_resamples`` modest (the default 20 gives a
    coarse but honest agreement fraction).  Heavy-tailed fits make
    each pipeline run expensive; pass a shorter ``capacity_sweep`` to
    trade trend resolution for speed.
    """
    arr = np.asarray(census_samples)
    if arr.size < 20:
        raise ModelError(
            f"need at least 20 census samples to bootstrap, got {arr.size}"
        )
    if n_resamples < 2:
        raise ModelError(f"need at least 2 resamples, got {n_resamples!r}")
    rng = np.random.default_rng(seed)

    votes = 0
    budgets = []
    z_values = []
    for _ in range(n_resamples):
        resample = rng.choice(arr, size=arr.size, replace=True)
        rec = recommend_architecture(
            resample, utility, price=price, capacity_sweep=capacity_sweep
        )
        votes += int(rec.reservations_recommended)
        budgets.append(rec.complexity_budget)
        fitted = rec.selection.best.load
        z = getattr(fitted, "z", None)
        if z is not None:
            z_values.append(float(z))

    budget_interval = (
        float(np.percentile(budgets, 5)),
        float(np.percentile(budgets, 95)),
    )
    z_interval = None
    if len(z_values) >= max(2, n_resamples // 2):
        z_interval = (
            float(np.percentile(z_values, 5)),
            float(np.percentile(z_values, 95)),
        )
    return BootstrapVerdict(
        n_resamples=n_resamples,
        reservation_fraction=votes / n_resamples,
        budget_interval=budget_interval,
        z_interval=z_interval,
    )
