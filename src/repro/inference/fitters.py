"""Maximum-likelihood fitting of the paper's load families.

The paper's closing argument is that the architecture question turns on
which census distribution future networks actually face.  These fitters
turn that into practice: given census measurements (flow counts sampled
from a running network), estimate each of the paper's three families by
maximum likelihood and report comparable information criteria.

MLEs:

- Poisson: ``nu_hat = sample mean`` (exact).
- Geometric (``P(k) = (1-q) q^k``): ``q_hat = m/(1+m)`` (exact).
- Algebraic (``P(k) = A (lam+k)^{-z}``): no closed form; the
  log-likelihood ``sum [-z ln(lam+k)] - n ln zeta(z, lam+1)`` is
  maximised numerically over ``(z, lam)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize, special

from repro.errors import CalibrationError
from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad
from repro.loads.base import LoadDistribution


@dataclass(frozen=True)
class FitResult:
    """One fitted census family with its fit diagnostics."""

    load: LoadDistribution
    log_likelihood: float
    n_parameters: int
    n_samples: int

    @property
    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_parameters - 2.0 * self.log_likelihood

    @property
    def bic(self) -> float:
        """Bayesian information criterion (lower is better)."""
        return self.n_parameters * np.log(self.n_samples) - 2.0 * self.log_likelihood


def _validate_samples(samples: np.ndarray, *, support_min: int = 0) -> np.ndarray:
    arr = np.asarray(samples)
    if arr.size < 2:
        raise ValueError(f"need at least 2 census samples, got {arr.size}")
    if np.any(arr != np.floor(arr)) or np.any(arr < 0):
        raise ValueError("census samples must be nonnegative integers")
    if np.any(arr < support_min):
        raise ValueError(
            f"samples below the family's support minimum {support_min}"
        )
    return arr.astype(np.int64)


def _log_likelihood(load: LoadDistribution, samples: np.ndarray) -> float:
    pmf = np.asarray(load.pmf_array(samples.astype(float)), dtype=float)
    if np.any(pmf <= 0.0):
        return -np.inf
    return float(np.sum(np.log(pmf)))


def fit_poisson(samples) -> FitResult:
    """Exact Poisson MLE: ``nu_hat`` is the sample mean."""
    arr = _validate_samples(samples)
    nu = float(arr.mean())
    if nu <= 0.0:
        raise CalibrationError("all-zero samples cannot fit a Poisson census")
    load = PoissonLoad(nu)
    return FitResult(load, _log_likelihood(load, arr), 1, arr.size)


def fit_geometric(samples) -> FitResult:
    """Exact geometric MLE: ``q_hat = m/(1+m)``."""
    arr = _validate_samples(samples)
    mean = float(arr.mean())
    if mean <= 0.0:
        raise CalibrationError("all-zero samples cannot fit a geometric census")
    load = GeometricLoad.from_mean(mean)
    return FitResult(load, _log_likelihood(load, arr), 1, arr.size)


def fit_algebraic(
    samples,
    *,
    z_bounds: tuple = (2.05, 8.0),
    initial: Optional[tuple] = None,
) -> FitResult:
    """Numerical MLE of the shifted power law over ``(z, lam)``.

    Works in the unconstrained coordinates ``(log(z - 2), log(lam))`` so
    Nelder-Mead cannot step outside the valid region, then clips ``z``
    into ``z_bounds`` (a ``z`` estimated at the boundary means the data
    does not look algebraic at all — the selection layer will prefer
    another family on AIC anyway).
    """
    arr = _validate_samples(samples, support_min=1)
    n = arr.size
    mean = float(arr.mean())
    if initial is None:
        initial = (3.0, max(mean, 1.0))

    def negative_log_likelihood(theta: np.ndarray) -> float:
        z = 2.0 + np.exp(theta[0])
        lam = np.exp(theta[1])
        if z > 64.0 or lam > 1e9:
            return 1e12
        norm = float(special.zeta(z, lam + 1.0))
        if not np.isfinite(norm) or norm <= 0.0:
            return 1e12
        return float(z * np.sum(np.log(lam + arr)) + n * np.log(norm))

    theta0 = np.array([np.log(initial[0] - 2.0), np.log(initial[1])])
    result = optimize.minimize(
        negative_log_likelihood,
        theta0,
        method="Nelder-Mead",
        options={"xatol": 1e-6, "fatol": 1e-8, "maxiter": 2000},
    )
    if not result.success:  # pragma: no cover - Nelder-Mead rarely fails here
        raise CalibrationError(f"algebraic MLE did not converge: {result.message}")
    z = float(np.clip(2.0 + np.exp(result.x[0]), *z_bounds))
    lam = float(np.exp(result.x[1]))
    load = AlgebraicLoad(z, lam)
    return FitResult(load, _log_likelihood(load, arr), 2, n)
