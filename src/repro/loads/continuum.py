"""Continuum load densities for the analytically tractable model (§3.2).

The continuum model replaces the integer flow count by a density
``P(k)`` on ``(0, inf)``.  Only two families are used by the paper —
exponential and algebraic (Pareto) — because they make the integrals
for ``V_B`` and ``V_R`` closed-form.  Beyond the pdf, the models need
the *partial first moments* below and above a point, so those are
provided exactly.
"""

from __future__ import annotations

import abc
import math


class ContinuumLoad(abc.ABC):
    """A load density over a continuous flow count ``k > 0``."""

    #: Family name, overridden per subclass.
    name: str = "continuum-load"

    #: Left end of the support.
    support_min: float = 0.0

    @abc.abstractmethod
    def pdf(self, k: float) -> float:
        """Density at ``k``."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Average flow count."""

    @abc.abstractmethod
    def sf(self, k: float) -> float:
        """Survival ``P(K > k)``."""

    @abc.abstractmethod
    def mean_tail(self, x: float) -> float:
        """Upper partial first moment ``int_x^inf k P(k) dk``."""

    def cdf(self, k: float) -> float:
        """Cumulative ``P(K <= k)``."""
        return 1.0 - self.sf(k)

    def partial_mean(self, x: float) -> float:
        """Lower partial first moment ``int_0^x k P(k) dk``."""
        return self.mean - self.mean_tail(x)

    def __repr__(self) -> str:  # pragma: no cover - overridden
        return f"{type(self).__name__}(mean={self.mean!r})"


class ExponentialLoad(ContinuumLoad):
    """``P(k) = beta * exp(-beta k)`` on ``k > 0``; mean ``1/beta``."""

    name = "exponential-continuum"
    support_min = 0.0

    def __init__(self, beta: float):
        if beta <= 0.0:
            raise ValueError(f"rate beta must be > 0, got {beta!r}")
        self._beta = float(beta)

    @property
    def beta(self) -> float:
        """Exponential rate; the mean is ``1/beta``."""
        return self._beta

    @property
    def mean(self) -> float:
        return 1.0 / self._beta

    def pdf(self, k: float) -> float:
        if k < 0.0:
            return 0.0
        return self._beta * math.exp(-self._beta * k)

    def sf(self, k: float) -> float:
        if k <= 0.0:
            return 1.0
        return math.exp(-self._beta * k)

    def mean_tail(self, x: float) -> float:
        """``int_x^inf beta k e^{-beta k} dk = e^{-beta x} (x + 1/beta)``."""
        if x <= 0.0:
            return self.mean
        return math.exp(-self._beta * x) * (x + 1.0 / self._beta)


class ParetoLoad(ContinuumLoad):
    """``P(k) = (z-1) k**-z`` on ``k >= 1``; mean ``(z-1)/(z-2)``.

    The continuum counterpart of :class:`~repro.loads.algebraic.AlgebraicLoad`
    with the shift dropped for tractability (the paper does exactly
    this, noting it only perturbs the small-``C`` region).
    """

    name = "algebraic-continuum"
    support_min = 1.0

    def __init__(self, z: float):
        if z <= 2.0:
            raise ValueError(f"power z must be > 2 so the mean is finite, got {z!r}")
        self._z = float(z)

    @property
    def z(self) -> float:
        """Tail power."""
        return self._z

    @property
    def mean(self) -> float:
        return (self._z - 1.0) / (self._z - 2.0)

    def pdf(self, k: float) -> float:
        if k < 1.0:
            return 0.0
        return (self._z - 1.0) * k ** (-self._z)

    def sf(self, k: float) -> float:
        if k <= 1.0:
            return 1.0
        return k ** (1.0 - self._z)

    def mean_tail(self, x: float) -> float:
        """``int_x^inf (z-1) k^{1-z} dk = (z-1)/(z-2) * x^{2-z}`` for x >= 1."""
        if x <= 1.0:
            return self.mean
        return self.mean * x ** (2.0 - self._z)
