"""Algebraic (power-law) load distribution (paper Section 3.1).

``P(k) = A * (lam + k)**-z`` for ``k >= 1``: the heavy-tailed load whose
census decays only polynomially.  The paper deliberately uses *two*
parameters — the power ``z`` and the shift ``lam`` — so the mean can be
held at ``k_bar = 100`` while the asymptotic power law is varied.  This
is the distribution under which reservations retain an advantage no
matter how cheap bandwidth gets, and self-similar-traffic measurements
are cited as making such laws plausible.

Normalisation and moments come from the Hurwitz zeta function:

    sum_{k>=1} (lam + k)**-z            = zeta(z,   lam + 1)
    sum_{k>=1} k (lam + k)**-z          = zeta(z-1, lam + 1) - lam * zeta(z, lam + 1)

and the same identities shifted by ``n`` give exact tails.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.errors import CalibrationError
from repro.loads.base import (
    _MOMENT_TABLE_CAP,
    _MOMENT_TABLE_EPS,
    LoadDistribution,
)
from repro.numerics.solvers import find_root


def _hurwitz(s: float, q: float) -> float:
    """Hurwitz zeta ``sum_{n>=0} (q+n)**-s`` via scipy."""
    return float(special.zeta(s, q))


class AlgebraicLoad(LoadDistribution):
    """Shifted power-law flow-count distribution on ``k >= 1``."""

    name = "algebraic"
    support_min = 1

    def __init__(self, z: float, lam: float):
        if z <= 2.0:
            raise ValueError(
                f"power z must be > 2 so the mean is finite, got {z!r}"
            )
        if lam < 0.0:
            raise ValueError(f"shift lam must be >= 0, got {lam!r}")
        self._z = float(z)
        self._lam = float(lam)
        self._norm = _hurwitz(self._z, self._lam + 1.0)

    @classmethod
    def from_mean(cls, z: float, mean: float) -> "AlgebraicLoad":
        """Calibrate the shift ``lam`` so the distribution has ``mean``.

        The mean is strictly increasing in ``lam`` (more mass pushed to
        large ``k``), from its ``lam = 0`` floor of
        ``zeta(z-1, 1)/zeta(z, 1)``, so a bracketed root find is exact.
        """
        floor = _hurwitz(z - 1.0, 1.0) / _hurwitz(z, 1.0)
        if mean <= floor:
            raise CalibrationError(
                f"algebraic load with z={z} cannot have mean {mean}; "
                f"the minimum (lam=0) mean is {floor:.6g}"
            )

        def residual(lam: float) -> float:
            return cls(z, lam).mean - mean

        # the mean grows roughly linearly in lam, so mean*z is a safe cap
        lam = find_root(
            residual,
            0.0,
            max(4.0 * mean, 16.0),
            expand=True,
            upper_limit=1e9,
            label=f"algebraic-load mean calibration (z={z}, mean={mean})",
        )
        return cls(z, lam)

    @property
    def z(self) -> float:
        """Asymptotic power of the tail (``P(k) ~ k**-z``)."""
        return self._z

    @property
    def lam(self) -> float:
        """Shift parameter controlling the mean at fixed ``z``."""
        return self._lam

    @property
    def mean(self) -> float:
        z, lam = self._z, self._lam
        return (_hurwitz(z - 1.0, lam + 1.0) - lam * self._norm) / self._norm

    def pmf(self, k: int) -> float:
        self.validate_k(k)
        if k < 1:
            return 0.0
        return (self._lam + k) ** (-self._z) / self._norm

    def sf(self, k: int) -> float:
        self.validate_k(k)
        if k < 1:
            return 1.0
        return _hurwitz(self._z, self._lam + k + 1.0) / self._norm

    def pmf_array(self, ks: np.ndarray) -> np.ndarray:
        ks = np.asarray(ks, dtype=float)
        out = (self._lam + ks) ** (-self._z) / self._norm
        return np.where(ks >= 1, out, 0.0)

    def sf_array(self, ks: np.ndarray) -> np.ndarray:
        ks = np.asarray(ks, dtype=float)
        tail = special.zeta(self._z, self._lam + np.maximum(ks, 1.0) + 1.0)
        return np.where(ks >= 1, tail / self._norm, 1.0)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Hybrid sampler: table for the bulk, bisection for the tail.

        The generic inverse-cdf table would need ~1e7 entries to cover a
        z = 3 tail; instead the table stops where the survival drops to
        1e-6 and the (rare) deeper draws invert the closed-form cdf by
        bisection.
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size!r}")
        cut = max(64, int(8 * self.mean))
        while self.sf(cut) > 1e-6 and cut < (1 << 22):
            cut *= 2
        ks = np.arange(cut + 1, dtype=float)
        pmf = np.asarray(self.pmf_array(ks), dtype=float)
        pmf[: self.support_min] = 0.0
        cdf = np.cumsum(pmf)
        u = rng.random(size)
        out = np.searchsorted(cdf, u).astype(np.int64)
        deep = u > cdf[-1]
        for i in np.nonzero(deep)[0]:
            out[i] = self._invert_sf(1.0 - u[i], cut)
        return out

    def _invert_sf(self, target_sf: float, lo: int) -> int:
        """Smallest k with ``sf(k) <= target_sf`` (tail bisection)."""
        hi = max(2 * lo, 2)
        while self.sf(hi) > target_sf:
            lo, hi = hi, 2 * hi
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.sf(mid) > target_sf:
                lo = mid
            else:
                hi = mid
        return hi

    def continuous_pmf(self, x: float) -> float:
        """``A (lam + x)^{-z}`` evaluated at real ``x``."""
        if x < 1.0:
            return 0.0
        return (self._lam + x) ** (-self._z) / self._norm

    def mean_tail(self, n: int) -> float:
        """Exact tail first moment via shifted Hurwitz zetas."""
        z, lam = self._z, self._lam
        if n <= 1:
            return self.mean
        tail = _hurwitz(z - 1.0, lam + n) - lam * _hurwitz(z, lam + n)
        return tail / self._norm

    def moment_tail_table(self, n: int, degree: int):
        """Closed-form moment tails via a ``lam/k`` binomial expansion.

        Expanding ``(lam + k)**-z = k**-z * (1 + lam/k)**-z`` gives

            S_j(n) * norm = sum_m binom(-z, m) lam**m zeta(z - 1 + j + m, n)

        which is well conditioned because the binomial smallness is
        independent of ``j`` (the naive ``(lam+n)``-shifted expansion
        cancels catastrophically at high ``j``).  Successive term
        ratios are ``(z+m)/(m+1) * lam/n`` with asymptote ``lam/n``;
        under the guard ``n >= 4 * lam`` they drop below 1 within the
        first few ``m`` (transient growth at most ``~z/4``-fold, a
        couple of bits of cancellation for permitted ``z``) and 64
        terms reach machine precision (validated against brute-force
        summation at the guard boundary).  One vector zeta call over
        the shared exponent grid serves every ``(j, m)`` pair through
        sliding dot products.
        """
        z, lam = self._z, self._lam
        if n < 4.0 * max(lam, 1.0) or z > 8.0 or lam > 1e4:
            # lam/n too large for the expansion, or z/lam ranges where
            # the term growth or lam**m overflow is not certified.  The
            # brute-force default converges (z > 2 => summable) but its
            # stopping rule needs mean_tail(k)/mean_tail(n), which
            # decays like (k/n)**(2-z), to fall below machine epsilon —
            # skip straight to None when that provably exceeds the
            # array cap instead of burning millions of pmf evaluations
            # discovering it.
            if z > 2.0 and n * _MOMENT_TABLE_EPS ** (1.0 / (2.0 - z)) > (
                _MOMENT_TABLE_CAP
            ):
                return None
            return super().moment_tail_table(n, degree)
        mmax = 64
        exponents = np.arange(degree + mmax + 1, dtype=float)
        with np.errstate(over="ignore", invalid="ignore"):
            zetas = special.zeta(z - 1.0 + exponents, float(n))
        # high-order zetas underflow to 0 for large n; treat non-finite
        # scipy output (possible at extreme s) the same way.
        zetas = np.where(np.isfinite(zetas), zetas, 0.0)
        binom = np.empty(mmax + 1)
        binom[0] = 1.0
        for m in range(mmax):
            binom[m + 1] = binom[m] * (-(z + m)) / (m + 1.0)
        weights = binom * lam ** np.arange(mmax + 1, dtype=float)
        table = np.empty(degree + 1)
        for j in range(degree + 1):
            table[j] = np.dot(weights, zetas[j : j + mmax + 1])
        table /= self._norm
        if not np.all(np.isfinite(table)):
            return super().moment_tail_table(n, degree)
        return table

    def rescaled(self, new_mean: float) -> "AlgebraicLoad":
        return AlgebraicLoad.from_mean(self._z, new_mean)

    def __repr__(self) -> str:
        return f"AlgebraicLoad(z={self._z!r}, lam={self._lam!r})"
