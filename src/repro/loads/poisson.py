"""Poisson load distribution (paper Section 3.1).

``P(k) = e**-nu * nu**k / k!`` describes a tightly controlled load:
excursions far from the mean are exceedingly rare (it is the census of
an M/M/infinity system — Poisson arrivals, independent departures).
Of the paper's three load models it is the closest to the fixed-load
case, and the one where provisioning most easily erases the difference
between architectures.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special, stats

from repro.loads.base import LoadDistribution


class PoissonLoad(LoadDistribution):
    """Poisson distribution over the number of active flows."""

    name = "poisson"
    support_min = 0

    def __init__(self, nu: float):
        if nu <= 0.0:
            raise ValueError(f"Poisson rate nu must be > 0, got {nu!r}")
        self._nu = float(nu)
        self._dist = stats.poisson(self._nu)

    @property
    def nu(self) -> float:
        """Poisson rate; equals the mean."""
        return self._nu

    @property
    def mean(self) -> float:
        return self._nu

    def pmf(self, k: int) -> float:
        self.validate_k(k)
        return float(self._dist.pmf(k))

    def sf(self, k: int) -> float:
        self.validate_k(k)
        return float(self._dist.sf(k))

    def pmf_array(self, ks: np.ndarray) -> np.ndarray:
        return self._dist.pmf(np.asarray(ks))

    def sf_array(self, ks: np.ndarray) -> np.ndarray:
        return np.asarray(self._dist.sf(np.asarray(ks)), dtype=float)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size!r}")
        return rng.poisson(self._nu, size=size)

    def continuous_pmf(self, x: float) -> float:
        """``exp(-nu + x ln nu - lnGamma(x+1))`` — smooth in ``x``."""
        if x < 0.0:
            return 0.0
        return math.exp(-self._nu + x * math.log(self._nu) - float(special.gammaln(x + 1.0)))

    def mean_tail(self, n: int) -> float:
        """``sum_{k>=n} k P(k) = nu * P(K >= n - 1)``.

        Follows from ``k * pmf(k; nu) = nu * pmf(k - 1; nu)``.
        """
        if n <= self.support_min:
            return self._nu
        # P(K >= n - 1) = P(K > n - 2) = sf(n - 2)
        return self._nu * float(self._dist.sf(n - 2))

    def rescaled(self, new_mean: float) -> "PoissonLoad":
        return PoissonLoad(new_mean)

    def __repr__(self) -> str:
        return f"PoissonLoad(nu={self._nu!r})"
