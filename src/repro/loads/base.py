"""Base class for discrete load distributions ``P(k)``.

Section 3.1 describes the network load not by arrival dynamics but by a
stationary probability distribution over the number of simultaneously
active flows.  Models need four things from a distribution beyond its
pmf: the mean (paper fixes ``k_bar = 100``), the survival function
(the reservation model's overload mass), the *partial first moment
tail* ``sum_{k >= n} k P(k)`` (for truncating infinite sums with a hard
bound), and the ability to rescale to a different mean within the same
family (the retry fixed point inflates the offered load).
"""

from __future__ import annotations

import abc

import numpy as np

#: Hard ceiling on brute-force moment-table summation, matching the
#: models' ``BRUTE_FORCE_CAP``: past this many terms the default
#: :meth:`LoadDistribution.moment_tail_table` gives up and returns None.
_MOMENT_TABLE_CAP = 1 << 22

#: Chunk size for the brute-force moment-table summation.
_MOMENT_TABLE_CHUNK = 8192

#: Relative stop threshold for the brute-force table (one ulp of the
#: leading tail, so the truncated remainder is below roundoff).
_MOMENT_TABLE_EPS = 2.220446049250313e-16


class LoadDistribution(abc.ABC):
    """A stationary distribution over the number of active flows."""

    #: Family name, overridden per subclass.
    name: str = "load"

    #: Smallest k with nonzero probability (0 or 1 in this package).
    support_min: int = 0

    @abc.abstractmethod
    def pmf(self, k: int) -> float:
        """Probability that exactly ``k`` flows request service."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Average number of flows requesting service (``k_bar``)."""

    @abc.abstractmethod
    def sf(self, k: int) -> float:
        """Survival function ``P(K > k)`` (strictly greater).

        Implemented directly (not as ``1 - cdf``) so the deep tail keeps
        full relative precision — the Poisson-case results hinge on tail
        masses around 1e-15.
        """

    @abc.abstractmethod
    def mean_tail(self, n: int) -> float:
        """Partial first moment ``sum_{k >= n} k * P(k)``.

        Used as the analytic tail bound when truncating sums of
        ``P(k) * k * f(k)`` with ``|f| <= 1``.
        """

    @abc.abstractmethod
    def rescaled(self, new_mean: float) -> "LoadDistribution":
        """Same family and shape, rescaled to ``new_mean``.

        The retrying model (Section 5.2) needs the offered-load family
        ``P_L`` parametrised by its average ``L``: retries inflate the
        average while the family stays fixed.
        """

    def cdf(self, k: int) -> float:
        """Cumulative probability ``P(K <= k)``."""
        return 1.0 - self.sf(k)

    def sample(self, rng: "np.random.Generator", size: int) -> np.ndarray:
        """Draw ``size`` iid census values.

        Generic inverse-cdf sampling over a truncated support (the cut
        is pushed until the survival mass is below 1e-12 of the draw
        resolution); families with native samplers override this.
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size!r}")
        cut = max(64, int(16 * self.mean))
        while self.sf(cut) > 1e-12 and cut < (1 << 26):
            cut *= 2
        ks = np.arange(cut + 1, dtype=float)
        pmf = np.asarray(self.pmf_array(ks), dtype=float)
        if self.support_min > 0:
            pmf[: self.support_min] = 0.0
        pmf = np.maximum(pmf, 0.0)
        pmf /= pmf.sum()
        return rng.choice(ks.astype(int), size=size, p=pmf)

    def continuous_pmf(self, x: float) -> float:
        """Smooth extension of the pmf to real ``x``.

        Used by the variable-load model's Euler-Maclaurin tail
        correction, which replaces the far tail of ``sum P(k) k f(k)``
        by an integral when the distribution is heavy-tailed and the
        brute-force truncation point would be astronomically large.
        Families for which the correction is never needed may leave the
        default, which raises.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not provide a smooth pmf extension"
        )

    def pmf_array(self, ks: np.ndarray) -> np.ndarray:
        """Vectorised pmf over an integer array.

        The default delegates to :meth:`pmf` per element; the concrete
        families override it with closed-form numpy expressions because
        the variable-load sums can run over millions of terms under
        heavy-tailed loads.
        """
        return np.array([self.pmf(int(k)) for k in np.asarray(ks).ravel()]).reshape(
            np.asarray(ks).shape
        )

    def sf_array(self, ks: np.ndarray) -> np.ndarray:
        """Vectorised survival function over an integer array.

        The batch reservation path evaluates the overload mass
        ``P(K > k_max(C))`` for a whole capacity grid at once; scalar
        :meth:`sf` calls dominate that sweep for scipy-backed families,
        so the concrete distributions override this with one vector
        call.  The default delegates per element.
        """
        return np.array([self.sf(int(k)) for k in np.asarray(ks).ravel()]).reshape(
            np.asarray(ks).shape
        )

    def moment_tail_table(self, n: int, degree: int):
        """Moment tails ``S_j(n) = sum_{k >= n} k**(1-j) P(k)``, j = 0..degree.

        These are the capacity-independent coefficients that turn a deep
        utility-series tail into a short polynomial: if ``pi`` has a
        Maclaurin expansion ``sum_j a_j b**j``, then
        ``sum_{k >= n} P(k) k pi(C/k) = sum_j a_j C**j S_j(n)``.  One
        table serves every capacity in a sweep (and every sweep sharing
        the load), which is the whole point — see
        ``repro.numerics.series.shared_moment_tail_table``.

        The default sums brute force in chunks, stopping once the
        remaining first-moment tail is below one ulp of the accumulated
        ``S_0`` (``|k**(1-j)| <= k`` for ``k >= 1`` bounds every row by
        the same remainder).  Returns ``None`` if convergence would need
        more than ``_MOMENT_TABLE_CAP`` terms — callers must fall back
        to their dense/integral paths.  Heavy-tailed families override
        this with closed forms.
        """
        if n < 1:
            raise ValueError(f"table start must be >= 1, got {n!r}")
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree!r}")
        table = np.zeros(degree + 1)
        if self.mean_tail(n) <= 0.0:
            return table
        k = int(n)
        stop = int(n) + _MOMENT_TABLE_CAP
        while k < stop:
            ks = np.arange(k, k + _MOMENT_TABLE_CHUNK, dtype=float)
            terms = ks * self.pmf_array(ks)  # j = 0 row: k**1 * P(k)
            inv = 1.0 / ks
            for j in range(degree + 1):
                table[j] += terms.sum()
                if j < degree:
                    terms *= inv
            k += _MOMENT_TABLE_CHUNK
            if self.mean_tail(k) <= _MOMENT_TABLE_EPS * table[0] + 1e-300:
                return table
        return None

    def validate_k(self, k: int) -> None:
        """Raise if ``k`` is not a nonnegative integer."""
        if k != int(k) or k < 0:
            raise ValueError(f"flow count must be a nonnegative integer, got {k!r}")

    def __repr__(self) -> str:  # pragma: no cover - overridden by subclasses
        return f"{type(self).__name__}(mean={self.mean!r})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash((type(self), repr(self)))
