"""Geometric ("exponential") load distribution (paper Section 3.1).

The paper's exponential load is ``P(k) = (1 - e**-beta) e**-beta*k`` on
``k >= 0`` — a geometric law with ratio ``q = e**-beta`` and mean
``(e**beta - 1)**-1``.  Unlike the Poisson case the mass is not peaked
around the mean: it decays exponentially over the whole range, so large
overloads are rare but far from impossible, and the bandwidth gap
``Delta(C)`` turns out to grow logarithmically forever (rigid apps).
"""

from __future__ import annotations

import math

import numpy as np

from repro.loads.base import LoadDistribution


class GeometricLoad(LoadDistribution):
    """Exponentially decaying flow-count distribution."""

    name = "exponential"
    support_min = 0

    def __init__(self, beta: float):
        if beta <= 0.0:
            raise ValueError(f"decay rate beta must be > 0, got {beta!r}")
        self._beta = float(beta)
        self._q = math.exp(-self._beta)

    @classmethod
    def from_mean(cls, mean: float) -> "GeometricLoad":
        """Build from the mean: ``k_bar = q/(1-q)`` so ``q = m/(1+m)``."""
        if mean <= 0.0:
            raise ValueError(f"mean must be > 0, got {mean!r}")
        q = mean / (1.0 + mean)
        return cls(-math.log(q))

    @property
    def beta(self) -> float:
        """Exponential decay rate of the pmf."""
        return self._beta

    @property
    def ratio(self) -> float:
        """Geometric ratio ``q = e**-beta``."""
        return self._q

    @property
    def mean(self) -> float:
        return self._q / (1.0 - self._q)

    def pmf(self, k: int) -> float:
        self.validate_k(k)
        return (1.0 - self._q) * self._q**k

    def sf(self, k: int) -> float:
        self.validate_k(k)
        return self._q ** (k + 1)

    def pmf_array(self, ks: np.ndarray) -> np.ndarray:
        ks = np.asarray(ks, dtype=float)
        return (1.0 - self._q) * np.exp(-self._beta * ks)

    def sf_array(self, ks: np.ndarray) -> np.ndarray:
        ks = np.asarray(ks, dtype=float)
        return self._q ** (ks + 1.0)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size!r}")
        # numpy's geometric counts trials-to-success (>= 1); ours is
        # failures-before-success (>= 0)
        return rng.geometric(1.0 - self._q, size=size) - 1

    def continuous_pmf(self, x: float) -> float:
        """``(1-q) e^{-beta x}`` evaluated at real ``x``."""
        if x < 0.0:
            return 0.0
        return (1.0 - self._q) * math.exp(-self._beta * x)

    def mean_tail(self, n: int) -> float:
        """``sum_{k>=n} k (1-q) q^k = q^n (n + q/(1-q) - n q) / (1-q)``.

        From the standard identity
        ``sum_{k>=n} k x^k = x^n (n - (n-1)x) / (1-x)^2``.
        """
        if n <= 0:
            return self.mean
        q = self._q
        return q**n * (n - (n - 1) * q) / (1.0 - q)

    def rescaled(self, new_mean: float) -> "GeometricLoad":
        return GeometricLoad.from_mean(new_mean)

    def __repr__(self) -> str:
        return f"GeometricLoad(beta={self._beta!r})"
