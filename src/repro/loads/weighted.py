"""Flow-weighted (size-biased) census and max-of-S order statistics.

Section 5.1's sampling extension evaluates utility from a *tagged
flow's* point of view: the probability that a flow finds itself sharing
the link with ``k - 1`` others is not ``P(k)`` but the size-biased

    Q(k) = k * P(k) / k_bar,

because states with more flows contain proportionally more flows to
tag.  A flow that samples the load ``S`` times and suffers the worst of
them sees the maximum of ``S`` iid draws from ``Q``, whose pmf follows
from powers of the cdf.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.loads.base import LoadDistribution


class SizeBiasedLoad(LoadDistribution):
    """The census seen by a randomly tagged flow: ``Q(k) = k P(k)/k_bar``.

    Note ``Q`` may have infinite mean even when ``P`` does not (it needs
    the second moment of ``P``); :attr:`mean` raises in that case rather
    than silently returning junk — the sampling model never needs it.
    """

    name = "size-biased"

    def __init__(self, base: LoadDistribution):
        self._base = base
        self.support_min = max(base.support_min, 1)
        self._kbar = base.mean

    @property
    def base(self) -> LoadDistribution:
        """The underlying census distribution ``P``."""
        return self._base

    def pmf(self, k: int) -> float:
        self.validate_k(k)
        if k < 1:
            return 0.0
        return k * self._base.pmf(k) / self._kbar

    def sf(self, k: int) -> float:
        """``P_Q(K > k) = mean_tail(k+1) / k_bar`` — exact via the base tail."""
        self.validate_k(k)
        if k < self.support_min:
            return 1.0
        return self._base.mean_tail(k + 1) / self._kbar

    @property
    def mean(self) -> float:
        raise ModelError(
            "the size-biased census needs the base distribution's second "
            "moment; compute it explicitly if you really need it"
        )

    def mean_tail(self, n: int) -> float:
        raise ModelError(
            "mean_tail of a size-biased census requires the base second "
            "moment tail; the sampling model bounds its sums via sf instead"
        )

    def rescaled(self, new_mean: float) -> "SizeBiasedLoad":
        return SizeBiasedLoad(self._base.rescaled(new_mean))

    def __repr__(self) -> str:
        return f"SizeBiasedLoad({self._base!r})"


class MaxOfSLoad(LoadDistribution):
    """Distribution of the maximum of ``S`` iid draws from ``base``.

    ``cdf_S(k) = cdf(k)**S``, so ``pmf_S(k) = cdf(k)**S - cdf(k-1)**S``.
    With ``S = 1`` this is the base distribution.
    """

    name = "max-of-s"

    def __init__(self, base: LoadDistribution, samples: int):
        if samples < 1 or samples != int(samples):
            raise ValueError(f"sample count must be a positive integer, got {samples!r}")
        self._base = base
        self._samples = int(samples)
        self.support_min = base.support_min

    @property
    def base(self) -> LoadDistribution:
        """The per-sample distribution."""
        return self._base

    @property
    def samples(self) -> int:
        """Number of iid samples whose maximum is taken."""
        return self._samples

    def pmf(self, k: int) -> float:
        self.validate_k(k)
        if k < self.support_min:
            return 0.0
        hi = self._base.cdf(k) ** self._samples
        lo = self._base.cdf(k - 1) ** self._samples if k > 0 else 0.0
        return max(hi - lo, 0.0)

    def sf(self, k: int) -> float:
        """``1 - cdf(k)**S``, computed stably for tiny base tails.

        For ``sf_base -> 0``, ``1 - (1 - sf)**S ~ S * sf``; the direct
        expression loses all precision there, so we switch forms.
        """
        self.validate_k(k)
        sf1 = self._base.sf(k)
        if sf1 > 1e-8:
            return 1.0 - (1.0 - sf1) ** self._samples
        s = float(self._samples)
        # binomial expansion; two terms are plenty at sf1 <= 1e-8
        return s * sf1 - 0.5 * s * (s - 1.0) * sf1**2

    @property
    def mean(self) -> float:
        raise ModelError("mean of a max-of-S census is not used by the models")

    def mean_tail(self, n: int) -> float:
        raise ModelError("mean_tail of a max-of-S census is not used by the models")

    def rescaled(self, new_mean: float) -> "MaxOfSLoad":
        return MaxOfSLoad(self._base.rescaled(new_mean), self._samples)

    def __repr__(self) -> str:
        return f"MaxOfSLoad({self._base!r}, samples={self._samples!r})"
