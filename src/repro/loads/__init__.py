"""Load distributions ``P(k)`` from the paper.

Discrete (Section 3.1, all with ``k_bar = 100`` in the paper's runs):

- :class:`PoissonLoad` — tightly peaked around the mean,
- :class:`GeometricLoad` — the paper's "exponential" law,
- :class:`AlgebraicLoad` — heavy power-law tail (shifted, so the mean
  can be calibrated independently of the power ``z``).

Continuum (Section 3.2): :class:`ExponentialLoad`, :class:`ParetoLoad`.

Derived views for the sampling extension (Section 5.1):
:class:`SizeBiasedLoad` (what a tagged flow sees) and
:class:`MaxOfSLoad` (worst of ``S`` independent samples).
"""

from repro.loads.algebraic import AlgebraicLoad
from repro.loads.base import LoadDistribution
from repro.loads.continuum import ContinuumLoad, ExponentialLoad, ParetoLoad
from repro.loads.geometric import GeometricLoad
from repro.loads.poisson import PoissonLoad
from repro.loads.weighted import MaxOfSLoad, SizeBiasedLoad

#: The paper's standard mean load for all discrete computations.
KBAR_PAPER = 100.0


def standard_loads(kbar: float = KBAR_PAPER, z: float = 3.0) -> dict:
    """The paper's three discrete load distributions at mean ``kbar``.

    Returns a dict keyed ``"poisson"``, ``"exponential"``, ``"algebraic"``
    — handy for sweeping all six (load x utility) cases.
    """
    return {
        "poisson": PoissonLoad(kbar),
        "exponential": GeometricLoad.from_mean(kbar),
        "algebraic": AlgebraicLoad.from_mean(z, kbar),
    }


__all__ = [
    "KBAR_PAPER",
    "AlgebraicLoad",
    "ContinuumLoad",
    "ExponentialLoad",
    "GeometricLoad",
    "LoadDistribution",
    "MaxOfSLoad",
    "ParetoLoad",
    "PoissonLoad",
    "SizeBiasedLoad",
    "standard_loads",
]
